//! The data-dir root: one directory per table, each holding a WAL and
//! (usually) a snapshot, plus the recovery / compaction / verification
//! orchestration over them.
//!
//! ```text
//! <data-dir>/
//!   tables/
//!     <table-id>/
//!       wal.log            WAL segment 0 (system of record; may be
//!                          compacted away once a snapshot covers it)
//!       wal.<seq>.log      rotated WAL segments (header-chained)
//!       snapshot.snap      latest snapshot base (recovery accelerator —
//!                          and recovery *requirement* once cold segments
//!                          are compacted)
//! ```

use crate::io::{real_io, IoHandle};
use crate::segment;
use crate::snapshot::{self, ChainInfo, TableSnapshot};
use crate::wal::{
    self, FsyncPolicy, QuarantineEntry, RecordInfo, TableMeta, TornTail, Wal, WalPosition, WAL_FILE,
};
use crate::StoreError;
use std::fs;
use std::path::{Path, PathBuf};
use tcrowd_core::FitParams;
use tcrowd_tabular::{Answer, AnswerLog};

/// A data directory hosting many tables' durable state.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    policy: FsyncPolicy,
    io: IoHandle,
    segment_max: u64,
}

/// One table's reconstructed state after a crash (or a clean restart —
/// recovery cannot tell and does not need to).
#[derive(Debug)]
pub struct Recovered {
    /// The table id (directory name).
    pub id: String,
    /// Shape, schema and service configuration from the Create record (or
    /// the snapshot, when the snapshot path was taken).
    pub meta: TableMeta,
    /// The recovered answer log — exactly the longest checksummed prefix of
    /// the WAL, bit-identical to what was acknowledged.
    pub log: AnswerLog,
    /// The persisted warm-start seed, when a snapshot carried one.
    pub fit: Option<FitParams>,
    /// The quarantined-worker set in force at the recovered position: the
    /// latest WAL Quarantine record, falling back to the snapshot's set when
    /// the replayed tail carried none.
    pub quarantine: Vec<QuarantineEntry>,
    /// Epoch of the snapshot chain that accelerated recovery (`None` = full
    /// replay).
    pub snapshot_epoch: Option<u64>,
    /// The snapshot chain's bookkeeping, when one was used — what a writer
    /// needs to *extend* the chain (tip epoch, link count, next free
    /// sequence) instead of starting a fresh full snapshot.
    pub chain: Option<ChainInfo>,
    /// Answers decoded from the WAL tail beyond the snapshot (equals
    /// `log.len()` on a full replay).
    pub replayed_tail: u64,
    /// The torn tail that was truncated, if any.
    pub torn: Option<TornTail>,
    /// Whether a deletion tombstone was found — the table is dead and
    /// `wal` is `None`.
    pub deleted: bool,
    /// The reopened WAL, positioned for further appends (absent for dead
    /// tables).
    pub wal: Option<Wal>,
}

/// What `compact` did to one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// WAL bytes before compaction (after torn-tail truncation).
    pub wal_bytes_before: u64,
    /// WAL bytes after rewriting (Create + a few large Appends).
    pub wal_bytes_after: u64,
    /// WAL records before compaction.
    pub records_before: usize,
    /// WAL records after compaction (the Create plus one Append per
    /// `REWRITE_CHUNK` answers; empty tables keep just the Create).
    pub records_after: usize,
    /// Answers carried through (compaction never drops answers).
    pub answers: u64,
    /// Whether a warm-start fit was preserved into the fresh snapshot.
    pub fit_preserved: bool,
    /// Live WAL segment files before the rewrite.
    pub segments_before: u64,
    /// Live WAL segment files after the rewrite (always 1: the rewritten
    /// log is a single fresh `wal.log`).
    pub segments_after: u64,
}

/// Snapshot-chain/WAL consistency as seen by `verify`.
#[derive(Debug, Clone)]
pub struct SnapshotCheck {
    /// The chain's combined epoch (base + applied deltas).
    pub epoch: u64,
    /// The chain tip's claimed WAL resume offset.
    pub wal_offset: u64,
    /// Delta links applied on top of the base.
    pub links: u64,
    /// Whether the combined snapshot log is exactly the WAL prefix at
    /// `epoch` and every chain element's `wal_offset` is a real record
    /// boundary at its epoch.
    pub consistent: bool,
    /// Whether the chain carries a warm-start fit.
    pub has_fit: bool,
}

/// The full integrity report of one table's on-disk state.
#[derive(Debug)]
pub struct VerifyReport {
    /// The table id.
    pub id: String,
    /// Physical bytes across every live WAL segment.
    pub wal_bytes: u64,
    /// Live WAL segment files in the chain.
    pub segments: u64,
    /// Whether segment 0 (the Create record) was compacted away — the
    /// snapshot chain is then load-bearing, not just an accelerator.
    pub head_compacted: bool,
    /// Valid WAL records in the surviving chain.
    pub records: usize,
    /// Answers the WAL accounts for, in absolute terms: answers vouched
    /// for by a compacted-away head plus those decoded from the chain.
    pub answers: u64,
    /// Whether a deletion tombstone is present.
    pub deleted: bool,
    /// Torn tail, if the file extends past the valid prefix.
    pub torn: Option<TornTail>,
    /// Quarantine records in the valid WAL prefix.
    pub quarantine_records: usize,
    /// Workers in the effective quarantined set (latest WAL record, or the
    /// snapshot's set when the snapshot is ahead of the WAL).
    pub quarantined: usize,
    /// Snapshot consistency (absent when no snapshot exists).
    pub snapshot: Option<SnapshotCheck>,
    /// Hard failures (empty = the table recovers cleanly). A torn tail is
    /// *not* an error — it is the condition recovery is designed for.
    pub errors: Vec<String>,
}

impl Store {
    /// Open (creating if needed) a data directory.
    pub fn open(root: impl Into<PathBuf>, policy: FsyncPolicy) -> std::io::Result<Store> {
        Store::open_with_io(root, policy, real_io())
    }

    /// [`Store::open`] with an explicit [`IoHandle`]: every durable write
    /// this store (and the WALs/snapshots it hands out) performs goes
    /// through `io`, so a [`crate::FaultyIo`] here fault-injects the whole
    /// table lifecycle.
    pub fn open_with_io(
        root: impl Into<PathBuf>,
        policy: FsyncPolicy,
        io: IoHandle,
    ) -> std::io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(root.join("tables"))?;
        Ok(Store { root, policy, io, segment_max: segment::SEGMENT_MAX_DEFAULT })
    }

    /// Override the WAL segment rotation threshold for every table this
    /// store creates or recovers (tests and benches use small values to
    /// exercise rotation; `u64::MAX` disables it).
    pub fn with_segment_max(mut self, max: u64) -> Store {
        self.segment_max = max.max(1);
        self
    }

    /// The WAL segment rotation threshold (bytes).
    pub fn segment_max(&self) -> u64 {
        self.segment_max
    }

    /// The I/O handle this store threads through its WALs and snapshots.
    pub fn io_handle(&self) -> IoHandle {
        self.io.clone()
    }

    /// The data directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The fsync policy new and reopened WALs use.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The directory of one table.
    pub fn table_dir(&self, id: &str) -> PathBuf {
        self.root.join("tables").join(id)
    }

    /// Every table id with a directory on disk, sorted.
    pub fn table_ids(&self) -> std::io::Result<Vec<String>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(self.root.join("tables"))? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                if let Ok(name) = entry.file_name().into_string() {
                    ids.push(name);
                }
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Claim a table id and durably write its Create record. Returns the
    /// open WAL for ingestion.
    pub fn create_table(&self, id: &str, meta: &TableMeta) -> Result<Wal, StoreError> {
        let mut wal = Wal::create_with_io(&self.table_dir(id), meta, self.policy, self.io.clone())?;
        wal.set_segment_max(self.segment_max);
        Ok(wal)
    }

    /// Delete this table's cold WAL segments — every non-active segment
    /// wholly below `covered`, a logical offset the durable snapshot-chain
    /// base vouches for (see [`segment::compact_cold_segments`]). Safe
    /// while the table is live and its WAL open: only immutable,
    /// never-again-read files are unlinked. Returns how many were removed.
    pub fn compact_cold_segments(&self, id: &str, covered: u64) -> std::io::Result<u64> {
        segment::compact_cold_segments(&self.table_dir(id), covered)
    }

    /// Remove a (tombstoned) table's directory.
    pub fn remove_table_dir(&self, id: &str) -> std::io::Result<()> {
        match fs::remove_dir_all(self.table_dir(id)) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    /// Recover one table: longest-checksummed-prefix WAL replay (snapshot
    /// assisted when possible), torn-tail truncation, and a WAL reopened for
    /// appending.
    pub fn recover_table(&self, id: &str) -> Result<Recovered, StoreError> {
        let dir = self.table_dir(id);
        let wal_path = dir.join(WAL_FILE);
        let mut scan = segment::scan_segments(&dir)?;
        if scan.segments.is_empty() {
            if let Some(reason) = scan.orphan_reason.take() {
                // Segment-named files exist but none chains — the head of
                // whatever survived is unreadable. This is rot, not a clean
                // "no WAL": deleting or seeding over it could destroy a
                // recoverable tail, so surface it.
                return Err(StoreError::corrupt(
                    &wal_path,
                    0,
                    format!("WAL segment chain is unreadable: {reason}"),
                ));
            }
            if snapshot::read_snapshot(&dir).unwrap_or(None).is_some() {
                // The WAL vanished but a snapshot survived — e.g. a crash
                // mid `remove_dir_all` that unlinked wal.log (tombstone and
                // all) before snapshot.snap. Seed an empty file so the
                // rebuild branch below reconstructs the WAL from the
                // snapshot: resurrecting a half-deleted table is recoverable
                // (delete it again); refusing to boot the whole service is
                // not.
                fs::write(&wal_path, b"")?;
                scan = segment::scan_segments(&dir)?;
            } else {
                return Err(StoreError::corrupt(
                    &wal_path,
                    0,
                    "table directory exists but has no WAL (crash during creation?)".to_string(),
                ));
            }
        }
        let head_compacted = scan.head_compacted();
        // Logical end/base of the on-disk chain: every offset comparison
        // below is against these, never a single file's length.
        let log_end = scan.end_offset();
        let chain_base = scan.base_offset();
        // A corrupt snapshot *base* is a recovery accelerator failure, not a
        // data failure: note it and fall back to the full replay. Broken
        // chain links never error — the chain reader truncates there and
        // the WAL tail replay covers the difference. Once cold segments were
        // compacted, though, the full-replay fallback is gone **by design**
        // and a missing/corrupt snapshot is fatal.
        let mut snap = snapshot::read_snapshot_chain(&dir).unwrap_or(None);
        if head_compacted && snap.is_none() {
            return Err(StoreError::corrupt(
                &wal_path,
                chain_base,
                format!(
                    "WAL head is compacted away (chain starts at logical offset {chain_base}) \
                     but no snapshot is readable — cold-segment compaction only ever runs \
                     against a durable snapshot base, so this is snapshot loss/rot"
                ),
            ));
        }

        // The fast path trusts `snapshot.wal_offset` to be a record boundary,
        // which holds for every snapshot this store wrote. If the very first
        // tail frame fails its checksum, we cannot tell a genuine torn first
        // record from a misaligned offset (stale snapshot restored next to a
        // newer WAL) — and truncating on a misaligned offset would destroy
        // valid acknowledged records. Per `replay_tail`'s contract, that case
        // falls back to a full replay, which distinguishes the two for free
        // (except on a head-compacted chain, where no full replay exists and
        // the ambiguity is fatal).
        let mut tail_replay = None;
        if let Some((s, _)) = &snap {
            if s.wal_offset <= log_end && s.wal_offset >= chain_base {
                let probe = wal::replay_tail(&wal_path, s.wal_offset)?;
                if probe.records.is_empty() && probe.torn.is_some() {
                    if head_compacted {
                        return Err(StoreError::corrupt(
                            &wal_path,
                            s.wal_offset,
                            "snapshot offset is not a valid record boundary and the WAL head \
                             is compacted away — no full replay can arbitrate"
                                .to_string(),
                        ));
                    }
                    snap = None;
                } else {
                    tail_replay = Some(probe);
                }
            }
        }

        if let Some((s, _)) = &snap {
            if s.wal_offset < chain_base {
                // Compaction only ever deletes segments below the chain
                // base, and base offsets never regress — a snapshot pointing
                // below the surviving chain means the snapshot files were
                // swapped/rotted. Rebuilding from it would silently drop the
                // acknowledged tail still on disk; refuse instead.
                return Err(StoreError::corrupt(
                    &wal_path,
                    s.wal_offset,
                    format!(
                        "snapshot offset {} is below the compacted chain head {chain_base}",
                        s.wal_offset
                    ),
                ));
            }
        }

        let (
            meta,
            log,
            fit,
            quarantine,
            snapshot_epoch,
            chain,
            replayed_tail,
            valid_len,
            torn,
            deleted,
        );
        match snap {
            Some((s, info)) if s.wal_offset <= log_end => {
                // Fast path: resume decoding at the snapshot's offset; the
                // snapshot's log (shape-validated at decode) absorbs the
                // tail. A Quarantine record in the tail supersedes the
                // snapshot's set (records are full replacements).
                let tail = tail_replay.take().expect("tail probed above");
                snapshot_epoch = Some(s.epoch);
                chain = Some(info);
                replayed_tail = tail.answers.len() as u64;
                valid_len = tail.valid_len;
                torn = tail.torn;
                deleted = tail.deleted;
                meta = s.meta;
                fit = s.fit;
                quarantine = tail.quarantine.unwrap_or(s.quarantine);
                let mut all = s.log;
                push_validated(&mut all, &meta, &wal_path, tail.answers)?;
                log = all;
            }
            Some((s, _)) => {
                // The WAL is *shorter* than the snapshot's offset: un-synced
                // WAL bytes died with the crash after the snapshot had been
                // fsynced (possible under `FsyncPolicy::Never`). The snapshot
                // is the more durable record — rebuild the WAL from it so the
                // "WAL alone determines the table" invariant holds again.
                let report = TornTail {
                    at: log_end,
                    dropped_bytes: 0,
                    reason: format!(
                        "wal ({log_end} logical bytes) ends before the snapshot offset {}; \
                         rebuilt from the snapshot",
                        s.wal_offset
                    ),
                };
                // Same crash-safe order as compaction: drop the stale
                // snapshot chain (whose wal_offsets describe the OLD layout)
                // before the rewrite, then persist a fresh full base
                // matching the new layout. Leaving the stale chain in place
                // would make the next recovery take this branch again —
                // rebuilding from epoch `s.epoch` and destroying any answers
                // acknowledged in between.
                snapshot::remove_snapshot(&dir)?;
                let pos = rewrite_wal(&dir, &s.meta, s.log.all(), &s.quarantine, &self.io)?;
                snapshot::write_snapshot_with_io(
                    &dir,
                    &TableSnapshot {
                        epoch: s.epoch,
                        wal_offset: pos.offset,
                        meta: s.meta.clone(),
                        log: s.log.clone(),
                        fit: s.fit.clone(),
                        quarantine: s.quarantine.clone(),
                    },
                    &self.io,
                )?;
                snapshot_epoch = Some(s.epoch);
                chain = Some(ChainInfo {
                    base_epoch: s.epoch,
                    base_answers: s.log.len() as u64,
                    link_marks: vec![(s.epoch, pos.offset)],
                    ..ChainInfo::default()
                });
                replayed_tail = 0;
                valid_len = pos.offset;
                torn = Some(report);
                deleted = false;
                meta = s.meta;
                fit = s.fit;
                quarantine = s.quarantine;
                log = s.log;
            }
            None => {
                let full = wal::replay(&wal_path)?;
                meta = match full.meta {
                    Some(m) => m,
                    None => {
                        return Err(StoreError::corrupt(
                            &wal_path,
                            full.base_offset,
                            match full.torn {
                                Some(t) => format!("no valid create record: {}", t.reason),
                                None => "empty WAL".to_string(),
                            },
                        ))
                    }
                };
                snapshot_epoch = None;
                chain = None;
                replayed_tail = full.answers.len() as u64;
                valid_len = full.valid_len;
                torn = full.torn;
                deleted = full.deleted;
                fit = None;
                quarantine = full.quarantine.unwrap_or_default();
                let mut built = AnswerLog::new(meta.rows, meta.schema.num_columns());
                push_validated(&mut built, &meta, &wal_path, full.answers)?;
                log = built;
            }
        }

        // Drop the torn bytes (truncating the containing segment, deleting
        // later/orphaned segments) so future appends extend the valid
        // prefix. Idempotent no-op on a clean chain.
        wal::truncate_to_valid(&dir, valid_len)?;
        let wal = if deleted {
            None
        } else {
            let mut w = Wal::open_for_append_with_io(
                &wal_path,
                WalPosition { offset: valid_len, answers: log.len() as u64 },
                self.policy,
                self.io.clone(),
            )?;
            w.set_segment_max(self.segment_max);
            Some(w)
        };
        Ok(Recovered {
            id: id.to_string(),
            meta,
            log,
            fit: if deleted { None } else { fit },
            quarantine: if deleted { Vec::new() } else { quarantine },
            snapshot_epoch,
            chain: if deleted { None } else { chain },
            replayed_tail,
            torn,
            deleted,
            wal,
        })
    }

    /// Recover every live table in the store. Tombstoned tables (deletion
    /// committed, directory removal lost to the crash) and **aborted
    /// creations** (a directory whose Create record never became durable —
    /// the creation was never acknowledged, so there is nothing to lose)
    /// are cleaned up and skipped. Anything else that fails aborts with the
    /// failing table's error — a durability layer must not silently serve a
    /// subset.
    pub fn recover_all(&self) -> Result<Vec<Recovered>, StoreError> {
        let mut out = Vec::new();
        for id in self.table_ids()? {
            if self.is_aborted_creation(&id)? {
                self.remove_table_dir(&id)?;
                continue;
            }
            let rec = self.recover_table(&id)?;
            if rec.deleted {
                self.remove_table_dir(&id)?;
                continue;
            }
            out.push(rec);
        }
        Ok(out)
    }

    /// True when `id`'s directory is the residue of a crashed `POST /tables`:
    /// no usable snapshot *and* a WAL that ends mid-Create-frame (see
    /// [`wal::CreateProbe`]). Such a creation was never acknowledged
    /// ([`Wal::create`] fsyncs before returning), so garbage-collecting the
    /// directory cannot lose data. A table with a valid snapshot is
    /// recoverable even with a rotted WAL head and is never treated as
    /// aborted; a *complete-but-undecodable* Create frame is rot, not an
    /// abort — it surfaces as a recovery error instead of a silent delete.
    fn is_aborted_creation(&self, id: &str) -> Result<bool, StoreError> {
        let dir = self.table_dir(id);
        if snapshot::read_snapshot(&dir).unwrap_or(None).is_some() {
            return Ok(false);
        }
        // A rotated segment can only exist after at least one successful
        // rotation, which happens strictly after the Create was durable and
        // acknowledged — whatever state `wal.log` is in (compacted away,
        // rotted), this directory is not creation residue.
        if !segment::rotated_segment_files(&dir)?.is_empty() {
            return Ok(false);
        }
        Ok(wal::probe_create(&dir.join(WAL_FILE))? == wal::CreateProbe::AbortedCreation)
    }

    /// Rewrite one table's WAL as `Create + a few large Appends` (defragmenting every
    /// per-batch frame) and write a fresh snapshot at the full epoch. Crash
    /// safe at every step: the snapshot is removed *before* the WAL rename
    /// so no stale offset can ever point into the new layout.
    pub fn compact_table(&self, id: &str) -> Result<CompactReport, StoreError> {
        let dir = self.table_dir(id);
        let wal_path = dir.join(WAL_FILE);
        // Audit figures first: what the chain looked like before the
        // rewrite. (Compaction touches every live record anyway, so this
        // costs nothing extra.)
        let before = wal::replay(&wal_path)?;
        let segments_before = segment::count_segments(&dir);
        let wal_bytes_before = before.valid_len - before.base_offset;
        let records_before = before.records.len();
        // Recovery is the arbiter of `(log, fit, quarantine)`: it already
        // implements snapshot-vs-WAL preference, head-compacted chains and
        // torn tails. Re-deriving those rules here would be a second
        // codepath to keep correct.
        let Recovered { meta, log, fit, quarantine, wal, deleted, .. } = self.recover_table(id)?;
        drop(wal);
        if deleted {
            return Err(StoreError::corrupt(
                &wal_path,
                0,
                "cannot compact a deleted table".to_string(),
            ));
        }
        snapshot::remove_snapshot(&dir)?;
        let pos = rewrite_wal(&dir, &meta, log.all(), &quarantine, &self.io)?;
        snapshot::write_snapshot_with_io(
            &dir,
            &TableSnapshot {
                epoch: log.len() as u64,
                wal_offset: pos.offset,
                meta: meta.clone(),
                log: log.clone(),
                fit: fit.clone(),
                quarantine: quarantine.clone(),
            },
            &self.io,
        )?;
        Ok(CompactReport {
            wal_bytes_before,
            wal_bytes_after: pos.offset,
            records_before,
            records_after: 1
                + log.len().div_ceil(REWRITE_CHUNK)
                + usize::from(!quarantine.is_empty()),
            answers: log.len() as u64,
            fit_preserved: fit.is_some(),
            segments_before,
            segments_after: 1,
        })
    }

    /// Full integrity scan of one table: WAL framing, snapshot/WAL
    /// consistency, epoch monotonicity.
    pub fn verify_table(&self, id: &str) -> Result<VerifyReport, StoreError> {
        let dir = self.table_dir(id);
        let wal_path = dir.join(WAL_FILE);
        let mut errors = Vec::new();
        let scan = segment::scan_segments(&dir)?;
        let full = wal::replay(&wal_path)?;
        let head_compacted = scan.head_compacted();
        let segments = scan.segments.len() as u64;
        let wal_bytes = scan.total_bytes();
        // The number of answers a full replay accounts for, in *absolute*
        // terms: answers vouched for by the compacted-away head plus those
        // decoded from the surviving chain.
        let replayed_answers = full.base_answers + full.answers.len() as u64;
        if let Some(reason) = &scan.orphan_reason {
            // An orphan may be a rotation/rewrite crash leftover (harmless)
            // or a segment stranded by a lost/rotted predecessor (acked data
            // unreachable) — verify cannot tell, so it flags both.
            errors.push(format!(
                "segment file(s) do not continue the chain and will be deleted by recovery: \
                 {reason}"
            ));
        }
        if full.meta.is_none() && !head_compacted {
            errors.push("no valid create record at the head of the WAL".to_string());
        }
        // Epoch monotonicity across records (a violated invariant would mean
        // the decoder itself is broken — checked anyway: this is the audit
        // tool). The sentinel starts at the chain base so a head-compacted
        // chain's first record compares against where the chain begins.
        let mut last =
            RecordInfo { kind: 0, end_offset: full.base_offset, answers_after: full.base_answers };
        for r in &full.records {
            if r.end_offset <= last.end_offset
                && !(last.kind == 0 && r.end_offset > full.base_offset)
            {
                errors.push(format!("non-monotone record offsets at {}", r.end_offset));
            }
            if r.answers_after < last.answers_after {
                errors.push(format!("answer count regressed at offset {}", r.end_offset));
            }
            last = *r;
        }
        let snapshot = match snapshot::read_snapshot_chain(&dir) {
            Err(e) => {
                errors.push(format!("snapshot unreadable: {e}"));
                None
            }
            Ok(None) => None,
            Ok(Some((s, info))) => {
                let mut consistent = true;
                if let Some(why) = &info.broken {
                    errors.push(format!(
                        "snapshot chain truncated after {} link(s): {why} — recovery will \
                         replay the WAL tail past the valid prefix",
                        info.links
                    ));
                    consistent = false;
                }
                if s.epoch > replayed_answers {
                    // Legal only after an fsync=never crash; recovery rebuilds
                    // the WAL from the snapshot. Flag it so operators see it.
                    errors.push(format!(
                        "snapshot epoch {} is ahead of the WAL ({replayed_answers} answers) — \
                         recovery will rebuild the WAL from the snapshot",
                        s.epoch
                    ));
                    consistent = false;
                } else if s.epoch < full.base_answers {
                    // Compaction only ever deletes segments the snapshot
                    // *base* vouches for, so the chain can never end up ahead
                    // of its own snapshot — this is file swap/rot.
                    errors.push(format!(
                        "snapshot epoch {} is below the compacted chain head ({} answers \
                         precede the surviving WAL)",
                        s.epoch, full.base_answers
                    ));
                    consistent = false;
                } else {
                    // Only the overlap is comparable: the snapshot carries the
                    // whole log, the chain only answers past `base_answers`.
                    if s.log.all()[full.base_answers as usize..]
                        != full.answers[..(s.epoch - full.base_answers) as usize]
                    {
                        errors.push(format!(
                            "snapshot chain log is not the WAL prefix at epoch {}",
                            s.epoch
                        ));
                        consistent = false;
                    }
                    // The quarantine set recovery would adopt (tail record,
                    // else the snapshot's set) must agree with what a full
                    // replay sees — a disagreement means the snapshot and
                    // WAL tell different stories about who is excluded. On a
                    // head-compacted chain with no surviving quarantine
                    // record the snapshot *is* the only source, so there is
                    // nothing to cross-check.
                    if let Ok(tail) = wal::replay_tail(&wal_path, s.wal_offset) {
                        let recovered = tail.quarantine.unwrap_or_else(|| s.quarantine.clone());
                        let replayed_set = match (&full.quarantine, head_compacted) {
                            (None, true) => None,
                            (q, _) => Some(q.clone().unwrap_or_default()),
                        };
                        if replayed_set.is_some_and(|expect| recovered != expect) {
                            errors.push(format!(
                                "snapshot quarantine set ({} workers) disagrees with the \
                                 WAL's latest quarantine record",
                                s.quarantine.len()
                            ));
                            consistent = false;
                        }
                    }
                    // Every chain element — the base and each applied delta —
                    // must point at a real record boundary for its epoch,
                    // otherwise a recovery landing on that element would fall
                    // back to a full replay. The chain base itself is a valid
                    // boundary (a snapshot taken exactly at the compaction
                    // point has no surviving record ending there).
                    for &(epoch, offset) in &info.link_marks {
                        if offset < full.base_offset {
                            errors.push(format!(
                                "snapshot chain wal_offset {offset} lies below the compacted \
                                 chain head at {}",
                                full.base_offset
                            ));
                            consistent = false;
                            continue;
                        }
                        let boundary = (offset == full.base_offset && epoch == full.base_answers)
                            || full
                                .records
                                .iter()
                                .any(|r| r.end_offset == offset && r.answers_after == epoch);
                        if !boundary {
                            errors.push(format!(
                                "snapshot chain wal_offset {offset} is not a record boundary \
                                 at epoch {epoch}"
                            ));
                            consistent = false;
                        }
                    }
                }
                Some(SnapshotCheck {
                    epoch: s.epoch,
                    wal_offset: s.wal_offset,
                    links: info.links,
                    consistent,
                    has_fit: s.fit.is_some(),
                })
            }
        };
        if head_compacted && snapshot.is_none() {
            errors.push(format!(
                "the WAL head is compacted away (chain starts at logical offset {}) but no \
                 snapshot chain is readable — the table cannot recover",
                full.base_offset
            ));
        }
        let quarantine_records =
            full.records.iter().filter(|r| wal::record_kind_name(r.kind) == "quarantine").count();
        let quarantined = match (&full.quarantine, &snapshot) {
            (Some(q), _) => q.len(),
            // Snapshot ahead of the WAL — or the head (with any quarantine
            // record it held) compacted away: the snapshot's set is what
            // recovery adopts.
            (None, Some(c)) if head_compacted || c.epoch > replayed_answers => {
                snapshot::read_snapshot(&dir)
                    .ok()
                    .flatten()
                    .map(|s| s.quarantine.len())
                    .unwrap_or(0)
            }
            (None, _) => 0,
        };
        Ok(VerifyReport {
            id: id.to_string(),
            wal_bytes,
            segments,
            head_compacted,
            records: full.records.len(),
            answers: replayed_answers,
            deleted: full.deleted,
            torn: full.torn,
            quarantine_records,
            quarantined,
            snapshot,
            errors,
        })
    }
}

/// How many answers one rewritten Append frame holds (~17 MiB encoded).
/// Chunking keeps every frame far below the replay sanity bound
/// (`MAX_RECORD` in the wal module): framing a whole multi-GiB log as one
/// record would make the rewritten WAL read back as corrupt.
const REWRITE_CHUNK: usize = 1 << 20;

/// Replace `dir`'s WAL with a freshly-written `Create + chunked Appends
/// (+ Quarantine)` sequence holding `answers` and the current quarantined
/// set, atomically (tmp + rename + dir sync). Public so the service's
/// degraded-WAL repair path can rebuild a poisoned log from the in-memory
/// answer set (which, by WAL-before-ack, is exactly the acknowledged
/// prefix).
pub fn rewrite_wal(
    dir: &Path,
    meta: &TableMeta,
    answers: &[Answer],
    quarantine: &[QuarantineEntry],
    io: &IoHandle,
) -> Result<WalPosition, StoreError> {
    let tmp_dir = dir.join("wal.rewrite.tmp");
    fs::remove_dir_all(&tmp_dir).ok();
    let mut wal = Wal::create_with_io(&tmp_dir, meta, FsyncPolicy::Always, io.clone())?;
    // The rewritten log is a single segment by definition — a rotation
    // inside the tmp dir would leave files the rename below cannot move.
    wal.set_segment_max(u64::MAX);
    for chunk in answers.chunks(REWRITE_CHUNK) {
        wal.append_answers(chunk)?;
    }
    if !quarantine.is_empty() {
        wal.append_quarantine(quarantine)?;
    }
    wal.sync()?;
    let pos = wal.position();
    drop(wal);
    io.rename(&tmp_dir.join(WAL_FILE), &dir.join(WAL_FILE))?;
    fs::remove_dir_all(&tmp_dir).ok();
    // The fresh log replaces the *whole* chain; stale rotated segments
    // describe the old layout and must go. Rename-first ordering keeps this
    // crash safe: a crash here leaves them as base-offset-discontinuity
    // orphans, which the next recovery deletes.
    for stale in segment::rotated_segment_files(dir)? {
        fs::remove_file(&stale)?;
    }
    wal::sync_dir(dir);
    Ok(pos)
}

/// Append recovered answers into `log`, validating the shape invariant
/// every answer passed at ingest time.
fn push_validated(
    log: &mut AnswerLog,
    meta: &TableMeta,
    wal_path: &Path,
    answers: Vec<Answer>,
) -> Result<(), StoreError> {
    let cols = meta.schema.num_columns();
    for (i, a) in answers.into_iter().enumerate() {
        if a.cell.row as usize >= meta.rows || a.cell.col as usize >= cols {
            return Err(StoreError::corrupt(
                wal_path,
                0,
                format!(
                    "recovered answer {i} addresses cell ({}, {}) outside the {}x{cols} table",
                    a.cell.row, a.cell.col, meta.rows
                ),
            ));
        }
        log.push(a);
    }
    Ok(())
}
