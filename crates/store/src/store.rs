//! The data-dir root: one directory per table, each holding a WAL and
//! (usually) a snapshot, plus the recovery / compaction / verification
//! orchestration over them.
//!
//! ```text
//! <data-dir>/
//!   tables/
//!     <table-id>/
//!       wal.log         append-only record log (system of record)
//!       snapshot.snap   latest snapshot (recovery accelerator)
//! ```

use crate::io::{real_io, IoHandle};
use crate::snapshot::{self, ChainInfo, TableSnapshot};
use crate::wal::{
    self, FsyncPolicy, QuarantineEntry, RecordInfo, TableMeta, TornTail, Wal, WalPosition, WAL_FILE,
};
use crate::StoreError;
use std::fs;
use std::path::{Path, PathBuf};
use tcrowd_core::FitParams;
use tcrowd_tabular::{Answer, AnswerLog};

/// A data directory hosting many tables' durable state.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    policy: FsyncPolicy,
    io: IoHandle,
}

/// One table's reconstructed state after a crash (or a clean restart —
/// recovery cannot tell and does not need to).
#[derive(Debug)]
pub struct Recovered {
    /// The table id (directory name).
    pub id: String,
    /// Shape, schema and service configuration from the Create record (or
    /// the snapshot, when the snapshot path was taken).
    pub meta: TableMeta,
    /// The recovered answer log — exactly the longest checksummed prefix of
    /// the WAL, bit-identical to what was acknowledged.
    pub log: AnswerLog,
    /// The persisted warm-start seed, when a snapshot carried one.
    pub fit: Option<FitParams>,
    /// The quarantined-worker set in force at the recovered position: the
    /// latest WAL Quarantine record, falling back to the snapshot's set when
    /// the replayed tail carried none.
    pub quarantine: Vec<QuarantineEntry>,
    /// Epoch of the snapshot chain that accelerated recovery (`None` = full
    /// replay).
    pub snapshot_epoch: Option<u64>,
    /// The snapshot chain's bookkeeping, when one was used — what a writer
    /// needs to *extend* the chain (tip epoch, link count, next free
    /// sequence) instead of starting a fresh full snapshot.
    pub chain: Option<ChainInfo>,
    /// Answers decoded from the WAL tail beyond the snapshot (equals
    /// `log.len()` on a full replay).
    pub replayed_tail: u64,
    /// The torn tail that was truncated, if any.
    pub torn: Option<TornTail>,
    /// Whether a deletion tombstone was found — the table is dead and
    /// `wal` is `None`.
    pub deleted: bool,
    /// The reopened WAL, positioned for further appends (absent for dead
    /// tables).
    pub wal: Option<Wal>,
}

/// What `compact` did to one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// WAL bytes before compaction (after torn-tail truncation).
    pub wal_bytes_before: u64,
    /// WAL bytes after rewriting (Create + a few large Appends).
    pub wal_bytes_after: u64,
    /// WAL records before compaction.
    pub records_before: usize,
    /// WAL records after compaction (the Create plus one Append per
    /// `REWRITE_CHUNK` answers; empty tables keep just the Create).
    pub records_after: usize,
    /// Answers carried through (compaction never drops answers).
    pub answers: u64,
    /// Whether a warm-start fit was preserved into the fresh snapshot.
    pub fit_preserved: bool,
}

/// Snapshot-chain/WAL consistency as seen by `verify`.
#[derive(Debug, Clone)]
pub struct SnapshotCheck {
    /// The chain's combined epoch (base + applied deltas).
    pub epoch: u64,
    /// The chain tip's claimed WAL resume offset.
    pub wal_offset: u64,
    /// Delta links applied on top of the base.
    pub links: u64,
    /// Whether the combined snapshot log is exactly the WAL prefix at
    /// `epoch` and every chain element's `wal_offset` is a real record
    /// boundary at its epoch.
    pub consistent: bool,
    /// Whether the chain carries a warm-start fit.
    pub has_fit: bool,
}

/// The full integrity report of one table's on-disk state.
#[derive(Debug)]
pub struct VerifyReport {
    /// The table id.
    pub id: String,
    /// WAL file size in bytes.
    pub wal_bytes: u64,
    /// Valid WAL records.
    pub records: usize,
    /// Answers in the valid prefix.
    pub answers: u64,
    /// Whether a deletion tombstone is present.
    pub deleted: bool,
    /// Torn tail, if the file extends past the valid prefix.
    pub torn: Option<TornTail>,
    /// Quarantine records in the valid WAL prefix.
    pub quarantine_records: usize,
    /// Workers in the effective quarantined set (latest WAL record, or the
    /// snapshot's set when the snapshot is ahead of the WAL).
    pub quarantined: usize,
    /// Snapshot consistency (absent when no snapshot exists).
    pub snapshot: Option<SnapshotCheck>,
    /// Hard failures (empty = the table recovers cleanly). A torn tail is
    /// *not* an error — it is the condition recovery is designed for.
    pub errors: Vec<String>,
}

impl Store {
    /// Open (creating if needed) a data directory.
    pub fn open(root: impl Into<PathBuf>, policy: FsyncPolicy) -> std::io::Result<Store> {
        Store::open_with_io(root, policy, real_io())
    }

    /// [`Store::open`] with an explicit [`IoHandle`]: every durable write
    /// this store (and the WALs/snapshots it hands out) performs goes
    /// through `io`, so a [`crate::FaultyIo`] here fault-injects the whole
    /// table lifecycle.
    pub fn open_with_io(
        root: impl Into<PathBuf>,
        policy: FsyncPolicy,
        io: IoHandle,
    ) -> std::io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(root.join("tables"))?;
        Ok(Store { root, policy, io })
    }

    /// The I/O handle this store threads through its WALs and snapshots.
    pub fn io_handle(&self) -> IoHandle {
        self.io.clone()
    }

    /// The data directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The fsync policy new and reopened WALs use.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The directory of one table.
    pub fn table_dir(&self, id: &str) -> PathBuf {
        self.root.join("tables").join(id)
    }

    /// Every table id with a directory on disk, sorted.
    pub fn table_ids(&self) -> std::io::Result<Vec<String>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(self.root.join("tables"))? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                if let Ok(name) = entry.file_name().into_string() {
                    ids.push(name);
                }
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Claim a table id and durably write its Create record. Returns the
    /// open WAL for ingestion.
    pub fn create_table(&self, id: &str, meta: &TableMeta) -> Result<Wal, StoreError> {
        Wal::create_with_io(&self.table_dir(id), meta, self.policy, self.io.clone())
    }

    /// Remove a (tombstoned) table's directory.
    pub fn remove_table_dir(&self, id: &str) -> std::io::Result<()> {
        match fs::remove_dir_all(self.table_dir(id)) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    /// Recover one table: longest-checksummed-prefix WAL replay (snapshot
    /// assisted when possible), torn-tail truncation, and a WAL reopened for
    /// appending.
    pub fn recover_table(&self, id: &str) -> Result<Recovered, StoreError> {
        let dir = self.table_dir(id);
        let wal_path = dir.join(WAL_FILE);
        if !wal_path.exists() {
            if snapshot::read_snapshot(&dir).unwrap_or(None).is_some() {
                // The WAL vanished but a snapshot survived — e.g. a crash
                // mid `remove_dir_all` that unlinked wal.log (tombstone and
                // all) before snapshot.snap. Seed an empty file so the
                // rebuild branch below reconstructs the WAL from the
                // snapshot: resurrecting a half-deleted table is recoverable
                // (delete it again); refusing to boot the whole service is
                // not.
                fs::write(&wal_path, b"")?;
            } else {
                return Err(StoreError::corrupt(
                    &wal_path,
                    0,
                    "table directory exists but has no WAL (crash during creation?)".to_string(),
                ));
            }
        }
        let file_len = fs::metadata(&wal_path)?.len();
        // A corrupt snapshot *base* is a recovery accelerator failure, not a
        // data failure: note it and fall back to the full replay. Broken
        // chain links never error — the chain reader truncates there and
        // the WAL tail replay covers the difference.
        let mut snap = snapshot::read_snapshot_chain(&dir).unwrap_or(None);

        // The fast path trusts `snapshot.wal_offset` to be a record boundary,
        // which holds for every snapshot this store wrote. If the very first
        // tail frame fails its checksum, we cannot tell a genuine torn first
        // record from a misaligned offset (stale snapshot restored next to a
        // newer WAL) — and truncating on a misaligned offset would destroy
        // valid acknowledged records. Per `replay_tail`'s contract, that case
        // falls back to a full replay, which distinguishes the two for free.
        let mut tail_replay = None;
        if let Some((s, _)) = &snap {
            if s.wal_offset <= file_len {
                let probe = wal::replay_tail(&wal_path, s.wal_offset)?;
                if probe.records.is_empty() && probe.torn.is_some() {
                    snap = None;
                } else {
                    tail_replay = Some(probe);
                }
            }
        }

        let (
            meta,
            log,
            fit,
            quarantine,
            snapshot_epoch,
            chain,
            replayed_tail,
            valid_len,
            torn,
            deleted,
        );
        match snap {
            Some((s, info)) if s.wal_offset <= file_len => {
                // Fast path: resume decoding at the snapshot's offset; the
                // snapshot's log (shape-validated at decode) absorbs the
                // tail. A Quarantine record in the tail supersedes the
                // snapshot's set (records are full replacements).
                let tail = tail_replay.take().expect("tail probed above");
                snapshot_epoch = Some(s.epoch);
                chain = Some(info);
                replayed_tail = tail.answers.len() as u64;
                valid_len = tail.valid_len;
                torn = tail.torn;
                deleted = tail.deleted;
                meta = s.meta;
                fit = s.fit;
                quarantine = tail.quarantine.unwrap_or(s.quarantine);
                let mut all = s.log;
                push_validated(&mut all, &meta, &wal_path, tail.answers)?;
                log = all;
            }
            Some((s, _)) => {
                // The WAL is *shorter* than the snapshot's offset: un-synced
                // WAL bytes died with the crash after the snapshot had been
                // fsynced (possible under `FsyncPolicy::Never`). The snapshot
                // is the more durable record — rebuild the WAL from it so the
                // "WAL alone determines the table" invariant holds again.
                let report = TornTail {
                    at: file_len,
                    dropped_bytes: 0,
                    reason: format!(
                        "wal ({file_len} bytes) ends before the snapshot offset {}; \
                         rebuilt from the snapshot",
                        s.wal_offset
                    ),
                };
                // Same crash-safe order as compaction: drop the stale
                // snapshot chain (whose wal_offsets describe the OLD layout)
                // before the rewrite, then persist a fresh full base
                // matching the new layout. Leaving the stale chain in place
                // would make the next recovery take this branch again —
                // rebuilding from epoch `s.epoch` and destroying any answers
                // acknowledged in between.
                snapshot::remove_snapshot(&dir)?;
                let pos = rewrite_wal(&dir, &s.meta, s.log.all(), &s.quarantine, &self.io)?;
                snapshot::write_snapshot_with_io(
                    &dir,
                    &TableSnapshot {
                        epoch: s.epoch,
                        wal_offset: pos.offset,
                        meta: s.meta.clone(),
                        log: s.log.clone(),
                        fit: s.fit.clone(),
                        quarantine: s.quarantine.clone(),
                    },
                    &self.io,
                )?;
                snapshot_epoch = Some(s.epoch);
                chain = Some(ChainInfo {
                    base_epoch: s.epoch,
                    base_answers: s.log.len() as u64,
                    link_marks: vec![(s.epoch, pos.offset)],
                    ..ChainInfo::default()
                });
                replayed_tail = 0;
                valid_len = pos.offset;
                torn = Some(report);
                deleted = false;
                meta = s.meta;
                fit = s.fit;
                quarantine = s.quarantine;
                log = s.log;
            }
            None => {
                let full = wal::replay(&wal_path)?;
                meta = match full.meta {
                    Some(m) => m,
                    None => {
                        return Err(StoreError::corrupt(
                            &wal_path,
                            0,
                            match full.torn {
                                Some(t) => format!("no valid create record: {}", t.reason),
                                None => "empty WAL".to_string(),
                            },
                        ))
                    }
                };
                snapshot_epoch = None;
                chain = None;
                replayed_tail = full.answers.len() as u64;
                valid_len = full.valid_len;
                torn = full.torn;
                deleted = full.deleted;
                fit = None;
                quarantine = full.quarantine.unwrap_or_default();
                let mut built = AnswerLog::new(meta.rows, meta.schema.num_columns());
                push_validated(&mut built, &meta, &wal_path, full.answers)?;
                log = built;
            }
        }

        // Drop the torn bytes so future appends extend the valid prefix.
        let file_len = fs::metadata(&wal_path)?.len();
        if valid_len < file_len {
            let f = fs::OpenOptions::new().write(true).open(&wal_path)?;
            f.set_len(valid_len)?;
            f.sync_data()?;
        }
        let wal = if deleted {
            None
        } else {
            Some(Wal::open_for_append_with_io(
                &wal_path,
                WalPosition { offset: valid_len, answers: log.len() as u64 },
                self.policy,
                self.io.clone(),
            )?)
        };
        Ok(Recovered {
            id: id.to_string(),
            meta,
            log,
            fit: if deleted { None } else { fit },
            quarantine: if deleted { Vec::new() } else { quarantine },
            snapshot_epoch,
            chain: if deleted { None } else { chain },
            replayed_tail,
            torn,
            deleted,
            wal,
        })
    }

    /// Recover every live table in the store. Tombstoned tables (deletion
    /// committed, directory removal lost to the crash) and **aborted
    /// creations** (a directory whose Create record never became durable —
    /// the creation was never acknowledged, so there is nothing to lose)
    /// are cleaned up and skipped. Anything else that fails aborts with the
    /// failing table's error — a durability layer must not silently serve a
    /// subset.
    pub fn recover_all(&self) -> Result<Vec<Recovered>, StoreError> {
        let mut out = Vec::new();
        for id in self.table_ids()? {
            if self.is_aborted_creation(&id)? {
                self.remove_table_dir(&id)?;
                continue;
            }
            let rec = self.recover_table(&id)?;
            if rec.deleted {
                self.remove_table_dir(&id)?;
                continue;
            }
            out.push(rec);
        }
        Ok(out)
    }

    /// True when `id`'s directory is the residue of a crashed `POST /tables`:
    /// no usable snapshot *and* a WAL that ends mid-Create-frame (see
    /// [`wal::CreateProbe`]). Such a creation was never acknowledged
    /// ([`Wal::create`] fsyncs before returning), so garbage-collecting the
    /// directory cannot lose data. A table with a valid snapshot is
    /// recoverable even with a rotted WAL head and is never treated as
    /// aborted; a *complete-but-undecodable* Create frame is rot, not an
    /// abort — it surfaces as a recovery error instead of a silent delete.
    fn is_aborted_creation(&self, id: &str) -> Result<bool, StoreError> {
        let dir = self.table_dir(id);
        if snapshot::read_snapshot(&dir).unwrap_or(None).is_some() {
            return Ok(false);
        }
        Ok(wal::probe_create(&dir.join(WAL_FILE))? == wal::CreateProbe::AbortedCreation)
    }

    /// Rewrite one table's WAL as `Create + a few large Appends` (defragmenting every
    /// per-batch frame) and write a fresh snapshot at the full epoch. Crash
    /// safe at every step: the snapshot is removed *before* the WAL rename
    /// so no stale offset can ever point into the new layout.
    pub fn compact_table(&self, id: &str) -> Result<CompactReport, StoreError> {
        let dir = self.table_dir(id);
        let wal_path = dir.join(WAL_FILE);
        // One full replay is both the source of truth and the audit figures
        // — compaction always touches every record anyway, so the snapshot
        // fast path would save nothing here.
        let full = wal::replay(&wal_path)?;
        let meta = full.meta.ok_or_else(|| {
            StoreError::corrupt(&wal_path, 0, "cannot compact: no valid create record".to_string())
        })?;
        if full.deleted {
            return Err(StoreError::corrupt(
                &wal_path,
                0,
                "cannot compact a deleted table".to_string(),
            ));
        }
        let snap = snapshot::read_snapshot(&dir).unwrap_or(None);
        // Prefer the longer source, exactly as recovery would (a snapshot
        // ahead of the WAL is the fsync=never loss case). The quarantine set
        // follows the same choice: the WAL's latest record when the WAL is
        // the source, the snapshot's set otherwise.
        let (log, fit, quarantine) = match snap {
            Some(s) if s.epoch > full.answers.len() as u64 => (s.log, s.fit, s.quarantine),
            snap => {
                let mut log = AnswerLog::new(meta.rows, meta.schema.num_columns());
                push_validated(&mut log, &meta, &wal_path, full.answers)?;
                (log, snap.and_then(|s| s.fit), full.quarantine.clone().unwrap_or_default())
            }
        };

        snapshot::remove_snapshot(&dir)?;
        let pos = rewrite_wal(&dir, &meta, log.all(), &quarantine, &self.io)?;
        snapshot::write_snapshot_with_io(
            &dir,
            &TableSnapshot {
                epoch: log.len() as u64,
                wal_offset: pos.offset,
                meta: meta.clone(),
                log: log.clone(),
                fit: fit.clone(),
                quarantine: quarantine.clone(),
            },
            &self.io,
        )?;
        Ok(CompactReport {
            wal_bytes_before: full.valid_len,
            wal_bytes_after: pos.offset,
            records_before: full.records.len(),
            records_after: 1
                + log.len().div_ceil(REWRITE_CHUNK)
                + usize::from(!quarantine.is_empty()),
            answers: log.len() as u64,
            fit_preserved: fit.is_some(),
        })
    }

    /// Full integrity scan of one table: WAL framing, snapshot/WAL
    /// consistency, epoch monotonicity.
    pub fn verify_table(&self, id: &str) -> Result<VerifyReport, StoreError> {
        let dir = self.table_dir(id);
        let wal_path = dir.join(WAL_FILE);
        let mut errors = Vec::new();
        let full = wal::replay(&wal_path)?;
        let wal_bytes = fs::metadata(&wal_path)?.len();
        if full.meta.is_none() {
            errors.push("no valid create record at the head of the WAL".to_string());
        }
        // Epoch monotonicity across records (a violated invariant would mean
        // the decoder itself is broken — checked anyway: this is the audit
        // tool).
        let mut last = RecordInfo { kind: 0, end_offset: 0, answers_after: 0 };
        for r in &full.records {
            if r.end_offset <= last.end_offset && !(last.kind == 0 && r.end_offset > 0) {
                errors.push(format!("non-monotone record offsets at {}", r.end_offset));
            }
            if r.answers_after < last.answers_after {
                errors.push(format!("answer count regressed at offset {}", r.end_offset));
            }
            last = *r;
        }
        let snapshot = match snapshot::read_snapshot_chain(&dir) {
            Err(e) => {
                errors.push(format!("snapshot unreadable: {e}"));
                None
            }
            Ok(None) => None,
            Ok(Some((s, info))) => {
                let mut consistent = true;
                if let Some(why) = &info.broken {
                    errors.push(format!(
                        "snapshot chain truncated after {} link(s): {why} — recovery will \
                         replay the WAL tail past the valid prefix",
                        info.links
                    ));
                    consistent = false;
                }
                if s.epoch > full.answers.len() as u64 {
                    // Legal only after an fsync=never crash; recovery rebuilds
                    // the WAL from the snapshot. Flag it so operators see it.
                    errors.push(format!(
                        "snapshot epoch {} is ahead of the WAL ({} answers) — recovery will \
                         rebuild the WAL from the snapshot",
                        s.epoch,
                        full.answers.len()
                    ));
                    consistent = false;
                } else {
                    if s.log.all() != &full.answers[..s.epoch as usize] {
                        errors.push(format!(
                            "snapshot chain log is not the WAL prefix at epoch {}",
                            s.epoch
                        ));
                        consistent = false;
                    }
                    // The quarantine set recovery would adopt (tail record,
                    // else the snapshot's set) must agree with what a full
                    // replay sees — a disagreement means the snapshot and
                    // WAL tell different stories about who is excluded.
                    if s.wal_offset <= wal_bytes {
                        if let Ok(tail) = wal::replay_tail(&wal_path, s.wal_offset) {
                            let recovered = tail.quarantine.unwrap_or_else(|| s.quarantine.clone());
                            if recovered != full.quarantine.clone().unwrap_or_default() {
                                errors.push(format!(
                                    "snapshot quarantine set ({} workers) disagrees with the \
                                     WAL's latest quarantine record",
                                    s.quarantine.len()
                                ));
                                consistent = false;
                            }
                        }
                    }
                    // Every chain element — the base and each applied delta —
                    // must point at a real record boundary for its epoch,
                    // otherwise a recovery landing on that element would fall
                    // back to a full replay.
                    for &(epoch, offset) in &info.link_marks {
                        let boundary = full
                            .records
                            .iter()
                            .any(|r| r.end_offset == offset && r.answers_after == epoch);
                        if !boundary {
                            errors.push(format!(
                                "snapshot chain wal_offset {offset} is not a record boundary \
                                 at epoch {epoch}"
                            ));
                            consistent = false;
                        }
                    }
                }
                Some(SnapshotCheck {
                    epoch: s.epoch,
                    wal_offset: s.wal_offset,
                    links: info.links,
                    consistent,
                    has_fit: s.fit.is_some(),
                })
            }
        };
        let quarantine_records =
            full.records.iter().filter(|r| wal::record_kind_name(r.kind) == "quarantine").count();
        let quarantined = match (&full.quarantine, &snapshot) {
            // Snapshot ahead of the WAL: its set is what recovery adopts.
            (None, Some(c)) if c.epoch > full.answers.len() as u64 => snapshot::read_snapshot(&dir)
                .ok()
                .flatten()
                .map(|s| s.quarantine.len())
                .unwrap_or(0),
            (q, _) => q.as_ref().map(|q| q.len()).unwrap_or(0),
        };
        Ok(VerifyReport {
            id: id.to_string(),
            wal_bytes,
            records: full.records.len(),
            answers: full.answers.len() as u64,
            deleted: full.deleted,
            torn: full.torn,
            quarantine_records,
            quarantined,
            snapshot,
            errors,
        })
    }
}

/// How many answers one rewritten Append frame holds (~17 MiB encoded).
/// Chunking keeps every frame far below the replay sanity bound
/// (`MAX_RECORD` in the wal module): framing a whole multi-GiB log as one
/// record would make the rewritten WAL read back as corrupt.
const REWRITE_CHUNK: usize = 1 << 20;

/// Replace `dir`'s WAL with a freshly-written `Create + chunked Appends
/// (+ Quarantine)` sequence holding `answers` and the current quarantined
/// set, atomically (tmp + rename + dir sync). Public so the service's
/// degraded-WAL repair path can rebuild a poisoned log from the in-memory
/// answer set (which, by WAL-before-ack, is exactly the acknowledged
/// prefix).
pub fn rewrite_wal(
    dir: &Path,
    meta: &TableMeta,
    answers: &[Answer],
    quarantine: &[QuarantineEntry],
    io: &IoHandle,
) -> Result<WalPosition, StoreError> {
    let tmp_dir = dir.join("wal.rewrite.tmp");
    fs::remove_dir_all(&tmp_dir).ok();
    let mut wal = Wal::create_with_io(&tmp_dir, meta, FsyncPolicy::Always, io.clone())?;
    for chunk in answers.chunks(REWRITE_CHUNK) {
        wal.append_answers(chunk)?;
    }
    if !quarantine.is_empty() {
        wal.append_quarantine(quarantine)?;
    }
    wal.sync()?;
    let pos = wal.position();
    drop(wal);
    io.rename(&tmp_dir.join(WAL_FILE), &dir.join(WAL_FILE))?;
    fs::remove_dir_all(&tmp_dir).ok();
    wal::sync_dir(dir);
    Ok(pos)
}

/// Append recovered answers into `log`, validating the shape invariant
/// every answer passed at ingest time.
fn push_validated(
    log: &mut AnswerLog,
    meta: &TableMeta,
    wal_path: &Path,
    answers: Vec<Answer>,
) -> Result<(), StoreError> {
    let cols = meta.schema.num_columns();
    for (i, a) in answers.into_iter().enumerate() {
        if a.cell.row as usize >= meta.rows || a.cell.col as usize >= cols {
            return Err(StoreError::corrupt(
                wal_path,
                0,
                format!(
                    "recovered answer {i} addresses cell ({}, {}) outside the {}x{cols} table",
                    a.cell.row, a.cell.col, meta.rows
                ),
            ));
        }
        log.push(a);
    }
    Ok(())
}
