//! WAL **segment rotation**: file naming, segment-header records, and the
//! on-disk segment chain.
//!
//! A table's WAL is no longer one unbounded file but a chain of segments:
//!
//! ```text
//! <table-dir>/
//!   wal.log            segment 0 (starts with the Create record)
//!   wal.00000001.log   segment 1 (starts with a Segment header record)
//!   wal.00000002.log   segment 2 ...
//! ```
//!
//! Offsets everywhere else in the crate ([`crate::WalPosition`], snapshot
//! `wal_offset`s, `RecordInfo::end_offset`) are **logical**: cumulative
//! bytes across the whole chain, exactly as if the segments were one file.
//! Segment 0 begins at logical offset 0; a rotated segment `k` begins at
//! the logical offset where segment `k-1` ended, and its first frame is a
//! Segment header record (`kind 5`) carrying `{seq, base_offset,
//! answers_before}` — self-describing and chain-validating: a segment whose
//! header does not agree with where the previous segment ended is treated
//! as torn, exactly like a bad checksum.
//!
//! Rotation happens at record boundaries only (a frame never spans
//! segments), so every rotated-away segment is complete: torn bytes can
//! only exist in the *last* segment. Cold segments wholly below a durable
//! snapshot-chain base offset carry no information recovery needs and are
//! deleted by [`compact_cold_segments`] — after which segment 0 itself may
//! be gone and recovery **requires** the snapshot (the chain head records
//! its own `base_offset`/`answers_before`, so logical offsets keep
//! working).

use crate::crc::crc32;
use std::fs::{self, File};
use std::io::Read;
use std::path::{Path, PathBuf};
use tcrowd_tabular::io::binary::{self, Cursor};

/// Default size trigger (bytes) for rotating the active segment. Small
/// enough that a busy table's recovery tail stays short once snapshots
/// cover the cold prefix; large enough that rotation cost (one fsync +
/// one rename) is noise.
pub const SEGMENT_MAX_DEFAULT: u64 = 8 * 1024 * 1024;

/// Frame header size (shared with `wal.rs`): `u32` length + `u32` CRC.
const FRAME_HEADER: u64 = 8;

/// Record kind byte of a segment header (see `wal.rs` for kinds 1–4).
pub(crate) const KIND_SEGMENT: u8 = 5;

/// The decoded body of a Segment header record: where this segment sits in
/// the logical byte/answer streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Segment sequence number (must match the file name).
    pub seq: u64,
    /// Logical offset of this segment's physical byte 0.
    pub base_offset: u64,
    /// Total answers committed before this segment's first byte.
    pub answers_before: u64,
}

pub(crate) fn encode_header_body(buf: &mut Vec<u8>, h: &SegmentHeader) {
    binary::put_u64(buf, h.seq);
    binary::put_u64(buf, h.base_offset);
    binary::put_u64(buf, h.answers_before);
}

pub(crate) fn decode_header_body(c: &mut Cursor<'_>) -> Result<SegmentHeader, binary::CodecError> {
    Ok(SegmentHeader { seq: c.u64()?, base_offset: c.u64()?, answers_before: c.u64()? })
}

/// The file name of segment `seq` (segment 0 keeps the legacy `wal.log`
/// name, so single-segment tables are byte-identical to the old format).
pub fn segment_file_name(seq: u64) -> String {
    if seq == 0 {
        crate::wal::WAL_FILE.to_string()
    } else {
        format!("wal.{seq:08}.log")
    }
}

/// Parse a segment sequence number out of a file name; `None` for anything
/// that is not a WAL segment (snapshots, deltas, `.tmp` residue, …).
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    if name == crate::wal::WAL_FILE {
        return Some(0);
    }
    let digits = name.strip_prefix("wal.")?.strip_suffix(".log")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let seq: u64 = digits.parse().ok()?;
    // `wal.00000000.log` would alias segment 0's canonical name.
    if seq == 0 {
        None
    } else {
        Some(seq)
    }
}

/// One validated segment in the on-disk chain.
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// Sequence number (0 = the `wal.log` head segment).
    pub seq: u64,
    /// The segment file.
    pub path: PathBuf,
    /// Physical file length in bytes.
    pub len: u64,
    /// Logical offset of physical byte 0.
    pub base: u64,
    /// Answers committed before this segment.
    pub answers_before: u64,
}

/// The result of scanning a table directory for WAL segments.
#[derive(Debug, Default)]
pub struct SegmentScan {
    /// The validated, contiguous chain, in sequence order. May start at a
    /// `seq > 0` segment when the head was compacted away.
    pub segments: Vec<SegmentInfo>,
    /// Segment-named files that do not continue the chain (bad/missing
    /// header, sequence gap, base-offset discontinuity) — recovery deletes
    /// them; they can only be rotation/rewrite residue or rot past a tear.
    pub orphans: Vec<PathBuf>,
    /// Why the first orphan was rejected (for error messages).
    pub orphan_reason: Option<String>,
}

impl SegmentScan {
    /// Logical offset of the chain's first byte (0 unless head-compacted).
    pub fn base_offset(&self) -> u64 {
        self.segments.first().map(|s| s.base).unwrap_or(0)
    }

    /// Answers committed before the chain's first byte.
    pub fn base_answers(&self) -> u64 {
        self.segments.first().map(|s| s.answers_before).unwrap_or(0)
    }

    /// Logical offset just past the chain's last physical byte.
    pub fn end_offset(&self) -> u64 {
        self.segments.last().map(|s| s.base + s.len).unwrap_or(0)
    }

    /// Whether segment 0 (and with it the Create record) is gone.
    pub fn head_compacted(&self) -> bool {
        self.segments.first().map(|s| s.seq != 0).unwrap_or(false)
    }

    /// Total physical bytes across the chain.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.len).sum()
    }
}

/// Read and validate the Segment header frame at the head of `path`.
fn read_segment_header(path: &Path) -> Result<SegmentHeader, String> {
    let mut file = File::open(path).map_err(|e| format!("unreadable: {e}"))?;
    let mut head = [0u8; FRAME_HEADER as usize];
    file.read_exact(&mut head).map_err(|e| format!("truncated frame header: {e}"))?;
    let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    if len > 64 {
        return Err(format!("implausible segment header length {len}"));
    }
    let mut payload = vec![0u8; len as usize];
    file.read_exact(&mut payload).map_err(|e| format!("truncated header payload: {e}"))?;
    if crc32(&payload) != crc {
        return Err("segment header checksum mismatch".to_string());
    }
    let mut c = Cursor::new(&payload);
    match c.u8() {
        Ok(KIND_SEGMENT) => {}
        Ok(k) => return Err(format!("first record has kind {k}, not a segment header")),
        Err(e) => return Err(format!("empty header payload: {e}")),
    }
    let h = decode_header_body(&mut c).map_err(|e| format!("undecodable segment header: {e}"))?;
    if !c.is_empty() {
        return Err("trailing bytes after segment header".to_string());
    }
    Ok(h)
}

/// Scan `dir` for WAL segment files and validate them into a contiguous
/// chain. Validation is purely structural (names, headers, base-offset
/// continuity); record-level CRC checking is replay's job. Files that fail
/// to continue the chain — and everything after them — land in `orphans`.
pub fn scan_segments(dir: &Path) -> std::io::Result<SegmentScan> {
    let mut named: Vec<(u64, PathBuf)> = Vec::new();
    let entries = match fs::read_dir(dir) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(SegmentScan::default()),
        other => other?,
    };
    for entry in entries {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_file_name) {
            named.push((seq, entry.path()));
        }
    }
    named.sort_by_key(|(seq, _)| *seq);
    let mut scan = SegmentScan::default();
    let orphaned = |scan: &mut SegmentScan, rest: &[(u64, PathBuf)], reason: String| {
        if scan.orphan_reason.is_none() {
            scan.orphan_reason = Some(reason);
        }
        scan.orphans.extend(rest.iter().map(|(_, p)| p.clone()));
    };
    for (i, (seq, path)) in named.iter().enumerate() {
        let len = fs::metadata(path)?.len();
        let info = if *seq == 0 {
            SegmentInfo { seq: 0, path: path.clone(), len, base: 0, answers_before: 0 }
        } else {
            let header = match read_segment_header(path) {
                Ok(h) => h,
                Err(why) => {
                    orphaned(&mut scan, &named[i..], format!("{}: {why}", path.display()));
                    break;
                }
            };
            if header.seq != *seq {
                orphaned(
                    &mut scan,
                    &named[i..],
                    format!(
                        "{}: header claims seq {}, file name says {seq}",
                        path.display(),
                        header.seq
                    ),
                );
                break;
            }
            if let Some(prev) = scan.segments.last() {
                let end = prev.base + prev.len;
                if header.base_offset != end {
                    orphaned(
                        &mut scan,
                        &named[i..],
                        format!(
                            "{}: header base offset {} does not continue the chain \
                             (previous segment ends at {end})",
                            path.display(),
                            header.base_offset
                        ),
                    );
                    break;
                }
                if header.answers_before < prev.answers_before {
                    orphaned(
                        &mut scan,
                        &named[i..],
                        format!("{}: answer count regressed across segments", path.display()),
                    );
                    break;
                }
            }
            SegmentInfo {
                seq: *seq,
                path: path.clone(),
                len,
                base: header.base_offset,
                answers_before: header.answers_before,
            }
        };
        scan.segments.push(info);
    }
    Ok(scan)
}

/// Remove rotation residue: `wal.<seq>.log.tmp` files a crash left behind
/// mid-rotation (never renamed, so never part of any chain).
pub(crate) fn remove_stale_tmp(dir: &Path) -> std::io::Result<()> {
    let entries = match fs::read_dir(dir) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        other => other?,
    };
    for entry in entries {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if name.starts_with("wal.") && name.ends_with(".log.tmp") {
                fs::remove_file(entry.path())?;
            }
        }
    }
    Ok(())
}

/// Every rotated (`seq >= 1`) segment file in `dir`, by name only — used by
/// `rewrite_wal` to clear stale segments after it renames a fresh
/// single-segment log into place.
pub(crate) fn rotated_segment_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        other => other?,
    };
    for entry in entries {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_file_name) {
            if seq > 0 {
                out.push(entry.path());
            }
        }
    }
    Ok(out)
}

/// Delete cold segments: every **non-active** segment wholly below
/// `covered` — a logical offset the durable snapshot-chain *base* vouches
/// for. Only a contiguous prefix is removed (the chain must stay
/// continuous), and the last segment is never touched. Returns how many
/// files were deleted.
///
/// Safety argument: recovery restores everything at or below the snapshot
/// base from the snapshot itself and replays the WAL only from the chain
/// tip's offset (falling back no further than the base), so bytes below
/// the base offset are never read again. Deleting them trades the
/// "snapshot corrupt → full replay" fallback for bounded recovery — after
/// compaction, a corrupt snapshot *base* is a loud recovery error, which
/// is why the threshold is the base offset, not the (softer) chain tip.
pub fn compact_cold_segments(dir: &Path, covered: u64) -> std::io::Result<u64> {
    let scan = scan_segments(dir)?;
    if scan.segments.len() <= 1 {
        return Ok(0);
    }
    let mut removed = 0u64;
    for seg in &scan.segments[..scan.segments.len() - 1] {
        if seg.base + seg.len <= covered {
            fs::remove_file(&seg.path)?;
            removed += 1;
        } else {
            break;
        }
    }
    if removed > 0 {
        crate::wal::sync_dir(dir);
    }
    Ok(removed)
}

/// Count the live segment files of `dir` (for the observability gauge).
pub fn count_segments(dir: &Path) -> u64 {
    scan_segments(dir).map(|s| s.segments.len() as u64).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_and_reject_impostors() {
        assert_eq!(segment_file_name(0), "wal.log");
        assert_eq!(segment_file_name(1), "wal.00000001.log");
        assert_eq!(segment_file_name(42), "wal.00000042.log");
        assert_eq!(parse_segment_file_name("wal.log"), Some(0));
        assert_eq!(parse_segment_file_name("wal.00000042.log"), Some(42));
        for bad in [
            "wal.00000000.log", // aliases wal.log
            "wal.1.log",
            "wal.00000001.log.tmp",
            "wal.0000000x.log",
            "snapshot.snap",
            "wal.rewrite.tmp",
        ] {
            assert_eq!(parse_segment_file_name(bad), None, "{bad}");
        }
    }
}
