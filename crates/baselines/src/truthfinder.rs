//! TruthFinder (paper ref \[35\], Yin–Han–Yu) — iterative trust propagation
//! between sources and facts, adapted to categorical crowdsourcing.
//!
//! Not part of Table 7 (the paper cites it as related work), but included for
//! completeness of the truth-discovery roster: worker trustworthiness `t(u)`
//! and fact confidence `s(f)` reinforce each other through
//!
//! ```text
//! τ(u)  = −ln(1 − t(u))                       (trust score)
//! σ(f)  = Σ_{u claims f} τ(u)                 (raw fact score)
//! σ*(f) = σ(f) − ρ · Σ_{f' ≠ f} σ(f')         (mutual-exclusion adjustment)
//! s(f)  = 1 / (1 + e^{−γ σ*(f)})              (fact confidence)
//! t(u)  = mean of s(f) over u's claims
//! ```
//!
//! Continuous cells fall back to the per-cell median.

use crate::method::{naive_estimates, TruthMethod};
use std::collections::HashMap;
use tcrowd_stat::clamp_prob;
use tcrowd_tabular::{AnswerLog, AnswerMatrix, CellId, Schema, Value};

/// TruthFinder estimator.
#[derive(Debug, Clone, Copy)]
pub struct TruthFinder {
    /// Dampening factor γ of the confidence sigmoid.
    pub gamma: f64,
    /// Mutual-exclusion weight ρ (labels of one cell exclude each other).
    pub rho: f64,
    /// Initial worker trustworthiness.
    pub initial_trust: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence threshold on the trust vector (cosine-style max change).
    pub tol: f64,
}

impl Default for TruthFinder {
    fn default() -> Self {
        TruthFinder { gamma: 0.3, rho: 0.5, initial_trust: 0.9, max_iters: 50, tol: 1e-6 }
    }
}

impl TruthMethod for TruthFinder {
    fn name(&self) -> &'static str {
        "TruthFinder"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        let matrix = AnswerMatrix::build(answers);
        let mut est = naive_estimates(schema, &matrix);
        if matrix.is_empty() {
            return est;
        }
        // Facts: (cell, label) pairs of categorical cells. The cell-major
        // payload means facts of one cell are discovered adjacently, so
        // `cell_facts` groups are contiguous runs of the fact list; workers
        // use the matrix's dense sorted index.
        let n_workers = matrix.num_workers();
        let mut fact_index: HashMap<(CellId, u32), usize> = HashMap::new();
        let mut fact_cells: Vec<(CellId, u32)> = Vec::new();
        let mut claims: Vec<Vec<usize>> = vec![Vec::new(); n_workers];
        let mut supporters: Vec<Vec<usize>> = Vec::new();
        for k in 0..matrix.len() {
            if !matrix.is_categorical(k) {
                continue;
            }
            let cell = CellId::new(matrix.answer_rows()[k], matrix.answer_cols()[k]);
            let l = matrix.answer_labels()[k];
            let f = *fact_index.entry((cell, l)).or_insert_with(|| {
                fact_cells.push((cell, l));
                supporters.push(Vec::new());
                fact_cells.len() - 1
            });
            let u = matrix.answer_workers()[k] as usize;
            supporters[f].push(u);
            claims[u].push(f);
        }
        if fact_cells.is_empty() {
            return est; // all-continuous table
        }
        // Facts grouped per cell for the mutual-exclusion sum: contiguous
        // runs of the (cell-major) fact list.
        let mut cell_fact_runs: Vec<(CellId, std::ops::Range<usize>)> = Vec::new();
        let mut start = 0;
        for f in 1..=fact_cells.len() {
            if f == fact_cells.len() || fact_cells[f].0 != fact_cells[start].0 {
                cell_fact_runs.push((fact_cells[start].0, start..f));
                start = f;
            }
        }

        let mut trust = vec![clamp_prob(self.initial_trust); n_workers];
        let mut tau = vec![0.0f64; n_workers];
        let mut confidence = vec![0.5f64; fact_cells.len()];
        for _ in 0..self.max_iters {
            // Fact scores from trust.
            for u in 0..n_workers {
                tau[u] = -(1.0 - clamp_prob(trust[u])).ln();
            }
            let sigma: Vec<f64> =
                supporters.iter().map(|ws| ws.iter().map(|&u| tau[u]).sum()).collect();
            for (_, facts) in &cell_fact_runs {
                let total: f64 = sigma[facts.clone()].iter().sum();
                for f in facts.clone() {
                    let adjusted = sigma[f] - self.rho * (total - sigma[f]);
                    confidence[f] = 1.0 / (1.0 + (-self.gamma * adjusted).exp());
                }
            }
            // Trust from fact confidences.
            let mut max_change = 0.0f64;
            for u in 0..n_workers {
                if claims[u].is_empty() {
                    continue;
                }
                let mean =
                    claims[u].iter().map(|&f| confidence[f]).sum::<f64>() / claims[u].len() as f64;
                let new = clamp_prob(mean);
                max_change = max_change.max((new - trust[u]).abs());
                trust[u] = new;
            }
            if max_change < self.tol {
                break;
            }
        }

        // Pick the most-confident fact per categorical cell.
        for (cell, facts) in &cell_fact_runs {
            let best = facts
                .clone()
                .max_by(|&a, &b| confidence[a].partial_cmp(&confidence[b]).expect("NaN"))
                .expect("non-empty fact set");
            est[cell.row as usize][cell.col as usize] = Value::Categorical(fact_cells[best].1);
        }
        // Continuous cells: the naive median fallback already in `est`.
        let _ = schema;
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mv::MajorityVoting;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerQualityConfig};

    #[test]
    fn truthfinder_competitive_with_mv_under_spammers() {
        let mut tf_total = 0.0;
        let mut mv_total = 0.0;
        for seed in 0..3 {
            let d = generate_dataset(
                &GeneratorConfig {
                    rows: 80,
                    columns: 3,
                    categorical_ratio: 1.0,
                    num_workers: 16,
                    answers_per_task: 5,
                    quality: WorkerQualityConfig {
                        median_phi: 0.2,
                        sigma_ln_phi: 1.0,
                        spammer_fraction: 0.25,
                        spammer_factor: 40.0,
                    },
                    ..Default::default()
                },
                seed,
            );
            let tf = TruthFinder::default().estimate(&d.schema, &d.answers);
            let mv = MajorityVoting.estimate(&d.schema, &d.answers);
            tf_total += tcrowd_tabular::evaluate(&d.schema, &d.truth, &tf).error_rate.unwrap();
            mv_total += tcrowd_tabular::evaluate(&d.schema, &d.truth, &mv).error_rate.unwrap();
        }
        assert!(
            tf_total <= mv_total + 0.03,
            "TruthFinder {} vs MV {}",
            tf_total / 3.0,
            mv_total / 3.0
        );
    }

    #[test]
    fn unanimous_fact_wins() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 10,
                columns: 2,
                categorical_ratio: 1.0,
                num_workers: 6,
                answers_per_task: 4,
                quality: WorkerQualityConfig {
                    median_phi: 0.01,
                    sigma_ln_phi: 0.01,
                    spammer_fraction: 0.0,
                    spammer_factor: 1.0,
                },
                ..Default::default()
            },
            7,
        );
        let tf = TruthFinder::default().estimate(&d.schema, &d.answers);
        let rep = tcrowd_tabular::evaluate(&d.schema, &d.truth, &tf);
        assert!(rep.error_rate.unwrap() < 0.05);
    }

    #[test]
    fn all_continuous_table_falls_back_to_median() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 8,
                columns: 2,
                categorical_ratio: 0.0,
                num_workers: 6,
                answers_per_task: 3,
                ..Default::default()
            },
            2,
        );
        let tf = TruthFinder::default().estimate(&d.schema, &d.answers);
        let naive = crate::method::naive_estimates(&d.schema, &d.answers.to_matrix());
        assert_eq!(tf, naive);
    }
}
