//! Majority Voting — the basic categorical baseline (paper §2).
//!
//! Every worker counts equally; the estimated label is the answer mode.
//! Continuous cells fall back to the per-cell median so the method always
//! returns a full table (Table 7 scores MV on error rate only).

use crate::method::{naive_estimates, TruthMethod};
use tcrowd_tabular::{AnswerLog, AnswerMatrix, Schema, Value};

/// Majority voting over categorical answers.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVoting;

impl TruthMethod for MajorityVoting {
    fn name(&self) -> &'static str {
        "Majority Voting"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        // One columnar freeze; every cell is then a contiguous slice scan.
        naive_estimates(schema, &AnswerMatrix::build(answers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{
        generate_dataset, Answer, CellId, Column, ColumnType, GeneratorConfig, WorkerId,
    };

    #[test]
    fn majority_wins() {
        let schema = Schema::new(
            "t",
            "k",
            vec![Column::new("c", ColumnType::categorical_with_cardinality(3))],
        );
        let mut log = AnswerLog::new(1, 1);
        for (w, l) in [(0u32, 2u32), (1, 2), (2, 0)] {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, 0),
                value: Value::Categorical(l),
            });
        }
        let est = MajorityVoting.estimate(&schema, &log);
        assert_eq!(est[0][0], Value::Categorical(2));
    }

    #[test]
    fn tie_breaks_to_smaller_label() {
        let schema = Schema::new(
            "t",
            "k",
            vec![Column::new("c", ColumnType::categorical_with_cardinality(3))],
        );
        let mut log = AnswerLog::new(1, 1);
        for (w, l) in [(0u32, 2u32), (1, 1)] {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, 0),
                value: Value::Categorical(l),
            });
        }
        let est = MajorityVoting.estimate(&schema, &log);
        assert_eq!(est[0][0], Value::Categorical(1));
    }

    #[test]
    fn reasonable_accuracy_on_synthetic_data() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 60,
                columns: 4,
                categorical_ratio: 1.0,
                num_workers: 20,
                answers_per_task: 5,
                ..Default::default()
            },
            11,
        );
        let est = MajorityVoting.estimate(&d.schema, &d.answers);
        let rep = tcrowd_tabular::evaluate(&d.schema, &d.truth, &est);
        assert!(rep.error_rate.unwrap() < 0.3);
    }
}
