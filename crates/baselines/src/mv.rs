//! Majority Voting — the basic categorical baseline (paper §2).
//!
//! Every worker counts equally; the estimated label is the answer mode.
//! Continuous cells fall back to the per-cell median so the method always
//! returns a full table (Table 7 scores MV on error rate only).

use crate::method::{cell_median, cell_mode, column_fallback, TruthMethod};
use tcrowd_tabular::{AnswerLog, CellId, ColumnType, Schema, Value};

/// Majority voting over categorical answers.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVoting;

impl TruthMethod for MajorityVoting {
    fn name(&self) -> &'static str {
        "Majority Voting"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        (0..answers.rows() as u32)
            .map(|i| {
                (0..answers.cols() as u32)
                    .map(|j| {
                        let cell = CellId::new(i, j);
                        match schema.column_type(j as usize) {
                            ColumnType::Categorical { .. } => cell_mode(answers, cell)
                                .map(Value::Categorical)
                                .unwrap_or_else(|| {
                                    column_fallback(schema, answers, j as usize)
                                }),
                            ColumnType::Continuous { .. } => cell_median(answers, cell)
                                .map(Value::Continuous)
                                .unwrap_or_else(|| {
                                    column_fallback(schema, answers, j as usize)
                                }),
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{generate_dataset, Answer, Column, GeneratorConfig, WorkerId};

    #[test]
    fn majority_wins() {
        let schema = Schema::new(
            "t",
            "k",
            vec![Column::new("c", ColumnType::categorical_with_cardinality(3))],
        );
        let mut log = AnswerLog::new(1, 1);
        for (w, l) in [(0u32, 2u32), (1, 2), (2, 0)] {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, 0),
                value: Value::Categorical(l),
            });
        }
        let est = MajorityVoting.estimate(&schema, &log);
        assert_eq!(est[0][0], Value::Categorical(2));
    }

    #[test]
    fn tie_breaks_to_smaller_label() {
        let schema = Schema::new(
            "t",
            "k",
            vec![Column::new("c", ColumnType::categorical_with_cardinality(3))],
        );
        let mut log = AnswerLog::new(1, 1);
        for (w, l) in [(0u32, 2u32), (1, 1)] {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, 0),
                value: Value::Categorical(l),
            });
        }
        let est = MajorityVoting.estimate(&schema, &log);
        assert_eq!(est[0][0], Value::Categorical(1));
    }

    #[test]
    fn reasonable_accuracy_on_synthetic_data() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 60,
                columns: 4,
                categorical_ratio: 1.0,
                num_workers: 20,
                answers_per_task: 5,
                ..Default::default()
            },
            11,
        );
        let est = MajorityVoting.estimate(&d.schema, &d.answers);
        let rep = tcrowd_tabular::evaluate(&d.schema, &d.truth, &est);
        assert!(rep.error_rate.unwrap() < 0.3);
    }
}
