//! CATD (paper ref \[17\]) — confidence-aware truth discovery for long-tail
//! data.
//!
//! Most workers answer few tasks, so point estimates of their reliability are
//! unstable. CATD weighs each worker by the upper bound of the confidence
//! interval of their error rate: `w_u = χ²(α/2, n_u) / Σ d²_u`, where `n_u`
//! is the worker's answer count and `Σ d²` their squared normalised distance
//! to the current truths. Truths are then the weighted vote / weighted mean.

use crate::method::{column_zscores, naive_estimates, TruthMethod};
use tcrowd_stat::special::chi_square_quantile;
use tcrowd_tabular::{AnswerLog, AnswerMatrix, ColumnType, Schema, Value};

/// CATD estimator.
#[derive(Debug, Clone, Copy)]
pub struct Catd {
    /// Significance level of the confidence interval (paper's default 0.05).
    pub alpha: f64,
    /// Alternating iterations.
    pub max_iters: usize,
    /// Loss smoothing (a perfect worker's Σd² would otherwise be 0).
    pub smoothing: f64,
}

impl Default for Catd {
    fn default() -> Self {
        Catd { alpha: 0.05, max_iters: 10, smoothing: 0.05 }
    }
}

impl TruthMethod for Catd {
    fn name(&self) -> &'static str {
        "CATD"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        let matrix = AnswerMatrix::build(answers);
        let mut est = naive_estimates(schema, &matrix);
        if matrix.is_empty() {
            return est;
        }
        let zscales = column_zscores(schema, &matrix);
        // Dense per-worker state over the matrix's sorted worker index.
        let n_workers = matrix.num_workers();
        let mut weights = vec![1.0f64; n_workers];
        let mut loss_ss = vec![0.0f64; n_workers];
        let mut loss_n = vec![0.0f64; n_workers];

        for _ in 0..self.max_iters {
            loss_ss.iter_mut().for_each(|v| *v = 0.0);
            loss_n.iter_mut().for_each(|v| *v = 0.0);
            for k in 0..matrix.len() {
                let i = matrix.answer_rows()[k] as usize;
                let j = matrix.answer_cols()[k] as usize;
                let d2 = if matrix.is_categorical(k) {
                    let t = est[i][j].expect_categorical();
                    (matrix.answer_labels()[k] != t) as i32 as f64
                } else {
                    let t = est[i][j].expect_continuous();
                    let (_, sd) = zscales[j].expect("scaler");
                    let d = (matrix.answer_values()[k] - t) / sd;
                    d * d
                };
                let u = matrix.answer_workers()[k] as usize;
                loss_ss[u] += d2;
                loss_n[u] += 1.0;
            }
            for u in 0..n_workers {
                if loss_n[u] == 0.0 {
                    weights[u] = 1.0;
                    continue;
                }
                // Upper confidence bound on precision: χ²(α/2, n) / Σd².
                weights[u] = chi_square_quantile(self.alpha / 2.0, loss_n[u])
                    / (loss_ss[u] + self.smoothing);
            }
            // Normalise weights to mean 1 (scale-free aggregation).
            let mean_w: f64 = weights.iter().sum::<f64>() / weights.len() as f64;
            if mean_w > 0.0 {
                for wt in weights.iter_mut() {
                    *wt /= mean_w;
                }
            }

            for i in 0..matrix.rows() as u32 {
                for j in 0..matrix.cols() as u32 {
                    let range = matrix.cell_range(tcrowd_tabular::CellId::new(i, j));
                    if range.is_empty() {
                        continue;
                    }
                    match schema.column_type(j as usize) {
                        ColumnType::Categorical { labels } => {
                            let mut scores = vec![0.0f64; labels.len()];
                            for k in range {
                                scores[matrix.answer_labels()[k] as usize] +=
                                    weights[matrix.answer_workers()[k] as usize];
                            }
                            let best = scores
                                .iter()
                                .enumerate()
                                .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
                                .map(|(z, _)| z as u32)
                                .unwrap_or(0);
                            est[i as usize][j as usize] = Value::Categorical(best);
                        }
                        ColumnType::Continuous { .. } => {
                            let mut num = 0.0;
                            let mut den = 0.0;
                            for k in range {
                                let w = weights[matrix.answer_workers()[k] as usize];
                                num += w * matrix.answer_values()[k];
                                den += w;
                            }
                            if den > 0.0 {
                                est[i as usize][j as usize] = Value::Continuous(num / den);
                            }
                        }
                    }
                }
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::median::MedianBaseline;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerQualityConfig};

    #[test]
    fn catd_beats_median_on_long_tail_data() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 100,
                columns: 4,
                categorical_ratio: 0.5,
                num_workers: 16,
                answers_per_task: 5,
                quality: WorkerQualityConfig {
                    median_phi: 0.15,
                    sigma_ln_phi: 1.2,
                    spammer_fraction: 0.25,
                    spammer_factor: 40.0,
                },
                ..Default::default()
            },
            13,
        );
        let catd = Catd::default().estimate(&d.schema, &d.answers);
        let med = MedianBaseline.estimate(&d.schema, &d.answers);
        let c = tcrowd_tabular::evaluate(&d.schema, &d.truth, &catd);
        let me = tcrowd_tabular::evaluate(&d.schema, &d.truth, &med);
        assert!(c.mnad.unwrap() < me.mnad.unwrap());
    }

    #[test]
    fn low_answer_count_workers_get_conservative_weight() {
        // The χ² upper-confidence weight of a small-n worker must be lower
        // than that of a large-n worker with the same per-answer loss.
        let small = chi_square_quantile(0.025, 5.0) / (5.0 * 0.2 + 0.05);
        let large = chi_square_quantile(0.025, 100.0) / (100.0 * 0.2 + 0.05);
        assert!(small < large, "{small} vs {large}");
    }

    #[test]
    fn output_matches_schema() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 15,
                columns: 4,
                num_workers: 8,
                answers_per_task: 3,
                ..Default::default()
            },
            2,
        );
        let est = Catd::default().estimate(&d.schema, &d.answers);
        for (i, row) in est.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert!(d.schema.column_type(j).accepts(v), "({i},{j})");
            }
        }
    }
}
