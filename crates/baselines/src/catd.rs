//! CATD (paper ref \[17\]) — confidence-aware truth discovery for long-tail
//! data.
//!
//! Most workers answer few tasks, so point estimates of their reliability are
//! unstable. CATD weighs each worker by the upper bound of the confidence
//! interval of their error rate: `w_u = χ²(α/2, n_u) / Σ d²_u`, where `n_u`
//! is the worker's answer count and `Σ d²` their squared normalised distance
//! to the current truths. Truths are then the weighted vote / weighted mean.

use crate::method::{column_zscore, naive_estimates, TruthMethod};
use std::collections::HashMap;
use tcrowd_stat::special::chi_square_quantile;
use tcrowd_tabular::{AnswerLog, ColumnType, Schema, Value, WorkerId};

/// CATD estimator.
#[derive(Debug, Clone, Copy)]
pub struct Catd {
    /// Significance level of the confidence interval (paper's default 0.05).
    pub alpha: f64,
    /// Alternating iterations.
    pub max_iters: usize,
    /// Loss smoothing (a perfect worker's Σd² would otherwise be 0).
    pub smoothing: f64,
}

impl Default for Catd {
    fn default() -> Self {
        Catd { alpha: 0.05, max_iters: 10, smoothing: 0.05 }
    }
}

impl TruthMethod for Catd {
    fn name(&self) -> &'static str {
        "CATD"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        let mut est = naive_estimates(schema, answers);
        if answers.is_empty() {
            return est;
        }
        let m = schema.num_columns();
        let zscales: Vec<Option<(f64, f64)>> = (0..m)
            .map(|j| match schema.column_type(j) {
                ColumnType::Continuous { .. } => Some(column_zscore(answers, j)),
                _ => None,
            })
            .collect();
        let mut weights: HashMap<WorkerId, f64> = answers.workers().map(|w| (w, 1.0)).collect();

        for _ in 0..self.max_iters {
            let mut losses: HashMap<WorkerId, (f64, f64)> = HashMap::new(); // (Σd², n)
            for a in answers.all() {
                let j = a.cell.col as usize;
                let i = a.cell.row as usize;
                let d2 = match (&a.value, &est[i][j]) {
                    (Value::Categorical(x), Value::Categorical(t)) => (x != t) as i32 as f64,
                    (Value::Continuous(x), Value::Continuous(t)) => {
                        let (_, sd) = zscales[j].expect("scaler");
                        let d = (x - t) / sd;
                        d * d
                    }
                    _ => unreachable!("type mismatch"),
                };
                let e = losses.entry(a.worker).or_default();
                e.0 += d2;
                e.1 += 1.0;
            }
            for (w, wt) in weights.iter_mut() {
                let (ss, n) = losses.get(w).copied().unwrap_or((0.0, 0.0));
                if n == 0.0 {
                    *wt = 1.0;
                    continue;
                }
                // Upper confidence bound on precision: χ²(α/2, n) / Σd².
                *wt = chi_square_quantile(self.alpha / 2.0, n) / (ss + self.smoothing);
            }
            // Normalise weights to mean 1 (scale-free aggregation).
            let mean_w: f64 = weights.values().sum::<f64>() / weights.len() as f64;
            if mean_w > 0.0 {
                for wt in weights.values_mut() {
                    *wt /= mean_w;
                }
            }

            for i in 0..answers.rows() as u32 {
                for j in 0..answers.cols() as u32 {
                    let cell = tcrowd_tabular::CellId::new(i, j);
                    if answers.count_for_cell(cell) == 0 {
                        continue;
                    }
                    match schema.column_type(j as usize) {
                        ColumnType::Categorical { labels } => {
                            let mut scores = vec![0.0f64; labels.len()];
                            for a in answers.for_cell(cell) {
                                scores[a.value.expect_categorical() as usize] +=
                                    weights[&a.worker];
                            }
                            let best = scores
                                .iter()
                                .enumerate()
                                .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
                                .map(|(z, _)| z as u32)
                                .unwrap_or(0);
                            est[i as usize][j as usize] = Value::Categorical(best);
                        }
                        ColumnType::Continuous { .. } => {
                            let mut num = 0.0;
                            let mut den = 0.0;
                            for a in answers.for_cell(cell) {
                                let w = weights[&a.worker];
                                num += w * a.value.expect_continuous();
                                den += w;
                            }
                            if den > 0.0 {
                                est[i as usize][j as usize] = Value::Continuous(num / den);
                            }
                        }
                    }
                }
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::median::MedianBaseline;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerQualityConfig};

    #[test]
    fn catd_beats_median_on_long_tail_data() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 100,
                columns: 4,
                categorical_ratio: 0.5,
                num_workers: 16,
                answers_per_task: 5,
                quality: WorkerQualityConfig {
                    median_phi: 0.15,
                    sigma_ln_phi: 1.2,
                    spammer_fraction: 0.25,
                    spammer_factor: 40.0,
                },
                ..Default::default()
            },
            13,
        );
        let catd = Catd::default().estimate(&d.schema, &d.answers);
        let med = MedianBaseline.estimate(&d.schema, &d.answers);
        let c = tcrowd_tabular::evaluate(&d.schema, &d.truth, &catd);
        let me = tcrowd_tabular::evaluate(&d.schema, &d.truth, &med);
        assert!(c.mnad.unwrap() < me.mnad.unwrap());
    }

    #[test]
    fn low_answer_count_workers_get_conservative_weight() {
        // The χ² upper-confidence weight of a small-n worker must be lower
        // than that of a large-n worker with the same per-answer loss.
        let small = chi_square_quantile(0.025, 5.0) / (5.0 * 0.2 + 0.05);
        let large = chi_square_quantile(0.025, 100.0) / (100.0 * 0.2 + 0.05);
        assert!(small < large, "{small} vs {large}");
    }

    #[test]
    fn output_matches_schema() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 15,
                columns: 4,
                num_workers: 8,
                answers_per_task: 3,
                ..Default::default()
            },
            2,
        );
        let est = Catd::default().estimate(&d.schema, &d.answers);
        for (i, row) in est.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert!(d.schema.column_type(j).accepts(v), "({i},{j})");
            }
        }
    }
}
