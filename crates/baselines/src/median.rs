//! Median — the basic continuous baseline (paper §2).
//!
//! The estimated value is the per-cell answer median (robust to spammers but
//! blind to worker quality). Categorical cells fall back to the mode.

use crate::method::naive_estimates;
use crate::method::TruthMethod;
use tcrowd_tabular::{AnswerLog, Schema, Value};

/// Median of workers' answers per continuous cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct MedianBaseline;

impl TruthMethod for MedianBaseline {
    fn name(&self) -> &'static str {
        "Median"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        // Median for continuous, mode for categorical — exactly the naive
        // aggregate shared by several bootstrap paths.
        naive_estimates(schema, &answers.to_matrix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{Answer, CellId, Column, ColumnType, WorkerId};

    #[test]
    fn median_resists_one_outlier() {
        let schema = Schema::new(
            "t",
            "k",
            vec![Column::new("x", ColumnType::Continuous { min: 0.0, max: 100.0 })],
        );
        let mut log = AnswerLog::new(1, 1);
        for (w, v) in [(0u32, 10.0f64), (1, 11.0), (2, 95.0)] {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, 0),
                value: Value::Continuous(v),
            });
        }
        let est = MedianBaseline.estimate(&schema, &log);
        assert_eq!(est[0][0], Value::Continuous(11.0));
    }

    #[test]
    fn even_count_averages_central_pair() {
        let schema = Schema::new(
            "t",
            "k",
            vec![Column::new("x", ColumnType::Continuous { min: 0.0, max: 100.0 })],
        );
        let mut log = AnswerLog::new(1, 1);
        for (w, v) in [(0u32, 10.0f64), (1, 20.0)] {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, 0),
                value: Value::Continuous(v),
            });
        }
        let est = MedianBaseline.estimate(&schema, &log);
        assert_eq!(est[0][0], Value::Continuous(15.0));
    }
}
