//! ZenCrowd (paper ref \[10\]) — single-reliability EM for categorical data.
//!
//! Each worker has one reliability `r_u` = probability of answering
//! correctly, shared across all categorical columns (a two-parameter
//! simplification of D&S). Wrong answers are uniform over the remaining
//! labels.

use crate::method::{naive_estimates, TruthMethod};
use std::collections::HashMap;
use tcrowd_stat::clamp_prob;
use tcrowd_tabular::{AnswerLog, CellId, ColumnType, Schema, Value, WorkerId};

/// ZenCrowd estimator.
#[derive(Debug, Clone, Copy)]
pub struct ZenCrowd {
    /// EM iterations.
    pub max_iters: usize,
    /// Pseudo-count smoothing on reliability estimates.
    pub smoothing: f64,
}

impl Default for ZenCrowd {
    fn default() -> Self {
        ZenCrowd { max_iters: 30, smoothing: 1.0 }
    }
}

impl TruthMethod for ZenCrowd {
    fn name(&self) -> &'static str {
        "ZenCrowd"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        let mut est = naive_estimates(schema, answers);
        let cat_cols: Vec<usize> = schema.categorical_columns();
        if cat_cols.is_empty() {
            return est;
        }
        let card: HashMap<usize, usize> = cat_cols
            .iter()
            .map(|&j| {
                let l = match schema.column_type(j) {
                    ColumnType::Categorical { labels } => labels.len(),
                    _ => unreachable!(),
                };
                (j, l)
            })
            .collect();

        // Posteriors per categorical cell.
        let mut posterior: HashMap<(u32, u32), Vec<f64>> = HashMap::new();
        for &j in &cat_cols {
            let l = card[&j];
            for i in 0..answers.rows() as u32 {
                let cell = CellId::new(i, j as u32);
                if answers.count_for_cell(cell) == 0 {
                    continue;
                }
                let mut p = vec![0.0; l];
                for a in answers.for_cell(cell) {
                    p[a.value.expect_categorical() as usize] += 1.0;
                }
                let total: f64 = p.iter().sum();
                p.iter_mut().for_each(|v| *v /= total);
                posterior.insert((i, j as u32), p);
            }
        }

        let mut reliability: HashMap<WorkerId, f64> =
            answers.workers().map(|w| (w, 0.7)).collect();

        for _ in 0..self.max_iters {
            // M-step: reliability = expected fraction of correct answers.
            let mut hits: HashMap<WorkerId, f64> = HashMap::new();
            let mut totals: HashMap<WorkerId, f64> = HashMap::new();
            for a in answers.all() {
                let j = a.cell.col as usize;
                if !card.contains_key(&j) {
                    continue;
                }
                if let Some(p) = posterior.get(&(a.cell.row, a.cell.col)) {
                    let pc = p[a.value.expect_categorical() as usize];
                    *hits.entry(a.worker).or_default() += pc;
                    *totals.entry(a.worker).or_default() += 1.0;
                }
            }
            for (w, r) in reliability.iter_mut() {
                let h = hits.get(w).copied().unwrap_or(0.0);
                let t = totals.get(w).copied().unwrap_or(0.0);
                // Smoothed toward 0.5 (coin-flip prior).
                *r = clamp_prob((h + self.smoothing * 0.5) / (t + self.smoothing));
            }

            // E-step: refresh posteriors in log space.
            for (&(i, j), p) in posterior.iter_mut() {
                let l = card[&(j as usize)];
                let mut ln_p = vec![0.0f64; l];
                for a in answers.for_cell(CellId::new(i, j)) {
                    let r = reliability[&a.worker];
                    let wrong = clamp_prob((1.0 - r) / (l.max(2) - 1) as f64);
                    let lab = a.value.expect_categorical() as usize;
                    for (z, lp) in ln_p.iter_mut().enumerate() {
                        *lp += if z == lab { r.ln() } else { wrong.ln() };
                    }
                }
                let max = ln_p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut np: Vec<f64> = ln_p.iter().map(|lp| (lp - max).exp()).collect();
                let total: f64 = np.iter().sum();
                np.iter_mut().for_each(|v| *v /= total);
                *p = np;
            }
        }

        for (&(i, j), p) in &posterior {
            let best = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
                .map(|(z, _)| z as u32)
                .unwrap_or(0);
            est[i as usize][j as usize] = Value::Categorical(best);
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mv::MajorityVoting;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerQualityConfig};

    #[test]
    fn zencrowd_beats_mv_with_spammers() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 100,
                columns: 4,
                categorical_ratio: 1.0,
                num_workers: 18,
                answers_per_task: 5,
                quality: WorkerQualityConfig {
                    median_phi: 0.2,
                    sigma_ln_phi: 1.0,
                    spammer_fraction: 0.3,
                    spammer_factor: 50.0,
                },
                ..Default::default()
            },
            8,
        );
        let zc = ZenCrowd::default().estimate(&d.schema, &d.answers);
        let mv = MajorityVoting.estimate(&d.schema, &d.answers);
        let zc_e = tcrowd_tabular::evaluate(&d.schema, &d.truth, &zc).error_rate.unwrap();
        let mv_e = tcrowd_tabular::evaluate(&d.schema, &d.truth, &mv).error_rate.unwrap();
        assert!(zc_e <= mv_e, "ZenCrowd {zc_e} vs MV {mv_e}");
    }

    #[test]
    fn continuous_only_table_passes_through() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 10,
                columns: 2,
                categorical_ratio: 0.0,
                num_workers: 6,
                answers_per_task: 3,
                ..Default::default()
            },
            2,
        );
        let est = ZenCrowd::default().estimate(&d.schema, &d.answers);
        // Equal to the naive median estimates.
        let naive = crate::method::naive_estimates(&d.schema, &d.answers);
        assert_eq!(est, naive);
    }
}
