//! ZenCrowd (paper ref \[10\]) — single-reliability EM for categorical data.
//!
//! Each worker has one reliability `r_u` = probability of answering
//! correctly, shared across all categorical columns (a two-parameter
//! simplification of D&S). Wrong answers are uniform over the remaining
//! labels.

use crate::method::{naive_estimates, TruthMethod};
use tcrowd_stat::clamp_prob;
use tcrowd_tabular::{AnswerLog, AnswerMatrix, CellId, ColumnType, Schema, Value};

/// ZenCrowd estimator.
#[derive(Debug, Clone, Copy)]
pub struct ZenCrowd {
    /// EM iterations.
    pub max_iters: usize,
    /// Pseudo-count smoothing on reliability estimates.
    pub smoothing: f64,
}

impl Default for ZenCrowd {
    fn default() -> Self {
        ZenCrowd { max_iters: 30, smoothing: 1.0 }
    }
}

impl TruthMethod for ZenCrowd {
    fn name(&self) -> &'static str {
        "ZenCrowd"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        let matrix = AnswerMatrix::build(answers);
        let mut est = naive_estimates(schema, &matrix);
        let cat_cols: Vec<usize> = schema.categorical_columns();
        if cat_cols.is_empty() {
            return est;
        }
        // Cardinality per column (0 = not categorical), dense.
        let mut card = vec![0usize; matrix.cols()];
        for &j in &cat_cols {
            card[j] = match schema.column_type(j) {
                ColumnType::Categorical { labels } => labels.len(),
                _ => unreachable!(),
            };
        }

        // Posteriors per categorical cell, dense over row-major slots.
        let slots = matrix.rows() * matrix.cols();
        let mut posterior: Vec<Vec<f64>> = vec![Vec::new(); slots];
        for &j in &cat_cols {
            let l = card[j];
            for i in 0..matrix.rows() as u32 {
                let cell = CellId::new(i, j as u32);
                let range = matrix.cell_range(cell);
                if range.is_empty() {
                    continue;
                }
                let mut p = vec![0.0; l];
                for k in range {
                    p[matrix.answer_labels()[k] as usize] += 1.0;
                }
                let total: f64 = p.iter().sum();
                p.iter_mut().for_each(|v| *v /= total);
                posterior[i as usize * matrix.cols() + j] = p;
            }
        }

        // Dense per-worker reliability over the sorted worker index.
        let n_workers = matrix.num_workers();
        let mut reliability = vec![0.7f64; n_workers];
        let mut hits = vec![0.0f64; n_workers];
        let mut totals = vec![0.0f64; n_workers];

        for _ in 0..self.max_iters {
            // M-step: reliability = expected fraction of correct answers.
            hits.iter_mut().for_each(|v| *v = 0.0);
            totals.iter_mut().for_each(|v| *v = 0.0);
            for k in 0..matrix.len() {
                if !matrix.is_categorical(k) {
                    continue;
                }
                let slot = matrix.answer_rows()[k] as usize * matrix.cols()
                    + matrix.answer_cols()[k] as usize;
                let p = &posterior[slot];
                if p.is_empty() {
                    continue;
                }
                let u = matrix.answer_workers()[k] as usize;
                hits[u] += p[matrix.answer_labels()[k] as usize];
                totals[u] += 1.0;
            }
            for u in 0..n_workers {
                // Smoothed toward 0.5 (coin-flip prior).
                reliability[u] =
                    clamp_prob((hits[u] + self.smoothing * 0.5) / (totals[u] + self.smoothing));
            }

            // E-step: refresh posteriors in log space, cell slice by slice.
            for &j in &cat_cols {
                let l = card[j];
                for i in 0..matrix.rows() as u32 {
                    let range = matrix.cell_range(CellId::new(i, j as u32));
                    if range.is_empty() {
                        continue;
                    }
                    let mut ln_p = vec![0.0f64; l];
                    for k in range {
                        let r = reliability[matrix.answer_workers()[k] as usize];
                        let wrong = clamp_prob((1.0 - r) / (l.max(2) - 1) as f64);
                        let lab = matrix.answer_labels()[k] as usize;
                        for (z, lp) in ln_p.iter_mut().enumerate() {
                            *lp += if z == lab { r.ln() } else { wrong.ln() };
                        }
                    }
                    let max = ln_p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let mut np: Vec<f64> = ln_p.iter().map(|lp| (lp - max).exp()).collect();
                    let total: f64 = np.iter().sum();
                    np.iter_mut().for_each(|v| *v /= total);
                    posterior[i as usize * matrix.cols() + j] = np;
                }
            }
        }

        for &j in &cat_cols {
            for i in 0..matrix.rows() {
                let p = &posterior[i * matrix.cols() + j];
                if p.is_empty() {
                    continue;
                }
                let best = p
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
                    .map(|(z, _)| z as u32)
                    .unwrap_or(0);
                est[i][j] = Value::Categorical(best);
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mv::MajorityVoting;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerQualityConfig};

    #[test]
    fn zencrowd_beats_mv_with_spammers() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 100,
                columns: 4,
                categorical_ratio: 1.0,
                num_workers: 18,
                answers_per_task: 5,
                quality: WorkerQualityConfig {
                    median_phi: 0.2,
                    sigma_ln_phi: 1.0,
                    spammer_fraction: 0.3,
                    spammer_factor: 50.0,
                },
                ..Default::default()
            },
            8,
        );
        let zc = ZenCrowd::default().estimate(&d.schema, &d.answers);
        let mv = MajorityVoting.estimate(&d.schema, &d.answers);
        let zc_e = tcrowd_tabular::evaluate(&d.schema, &d.truth, &zc).error_rate.unwrap();
        let mv_e = tcrowd_tabular::evaluate(&d.schema, &d.truth, &mv).error_rate.unwrap();
        assert!(zc_e <= mv_e, "ZenCrowd {zc_e} vs MV {mv_e}");
    }

    #[test]
    fn continuous_only_table_passes_through() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 10,
                columns: 2,
                categorical_ratio: 0.0,
                num_workers: 6,
                answers_per_task: 3,
                ..Default::default()
            },
            2,
        );
        let est = ZenCrowd::default().estimate(&d.schema, &d.answers);
        // Equal to the naive median estimates.
        let naive = crate::method::naive_estimates(&d.schema, &d.answers.to_matrix());
        assert_eq!(est, naive);
    }
}
