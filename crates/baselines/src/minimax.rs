//! Minimax-Entropy truth inference (paper ref \[40\]: Zhou, Basu, Mao,
//! Platt — *Learning from the wisdom of crowds by minimax entropy*, NIPS
//! 2012) for categorical columns.
//!
//! The minimax-entropy principle models the probability that worker `u`
//! answers label `l` on task `i` whose true label is `k` as a log-linear
//! combination of a *worker* confusion parameter and a *task* confusion
//! parameter:
//!
//! ```text
//! P_{u,i}(a = l | t = k)  ∝  exp( σ_u[k][l] + τ_i[k][l] )
//! ```
//!
//! The labels are inferred by maximising entropy over the answer
//! distributions subject to matching the observed per-worker and per-task
//! confusion moments, whose dual is exactly the above form. We solve the
//! regularised dual by coordinate ascent: an E-step computes label
//! posteriors under the current `σ, τ`, and an M-step takes gradient steps
//! on `σ, τ` toward matching the expected and observed confusion counts
//! (with an L2 penalty, the paper's Gaussian-prior regularisation).
//!
//! Like the other categorical-only baselines, continuous columns fall back
//! to the per-cell median so the method still produces a full table.

use crate::method::{naive_estimates, TruthMethod};
use tcrowd_stat::EPS;
use tcrowd_tabular::{AnswerLog, AnswerMatrix, CellId, ColumnType, Schema, Value};

/// Minimax-Entropy estimator (categorical columns).
#[derive(Debug, Clone, Copy)]
pub struct MinimaxEntropy {
    /// Outer EM-style iterations.
    pub max_iters: usize,
    /// Gradient steps per M-step.
    pub grad_steps: usize,
    /// Gradient step size.
    pub learning_rate: f64,
    /// L2 regularisation on the worker parameters `σ`.
    pub l2_sigma: f64,
    /// L2 regularisation on the task parameters `τ`. Much stronger than the
    /// worker side: a task sees only a handful of answers, so an
    /// under-regularised `τ_i` simply memorises them (the α/β weighting of
    /// the NIPS paper's regularised dual).
    pub l2_tau: f64,
    /// Columns with more labels than this fall back to the naive estimate:
    /// the confusion duals are `|L|²` per worker *and* per task, which is
    /// both infeasible and statistically hopeless for huge label spaces.
    pub max_cardinality: usize,
}

impl Default for MinimaxEntropy {
    fn default() -> Self {
        MinimaxEntropy {
            max_iters: 15,
            grad_steps: 8,
            learning_rate: 0.3,
            l2_sigma: 0.05,
            l2_tau: 2.0,
            max_cardinality: 24,
        }
    }
}

/// Per-column solver state; one independent model per categorical column
/// (columns have different label sets, so moments do not mix). All tables
/// are dense: workers by the matrix's sorted index, tasks by row.
struct ColumnState {
    l: usize,
    /// Task posteriors, dense by row (empty vec = unanswered row).
    posterior: Vec<Vec<f64>>,
    /// `σ_u`, dense by worker, flattened `k * l + a`.
    sigma: Vec<Vec<f64>>,
    /// `τ_i`, dense by row, flattened `k * l + a`.
    tau: Vec<Vec<f64>>,
}

impl ColumnState {
    fn answer_logit(&self, u: usize, i: usize, k: usize, a: usize) -> f64 {
        let idx = k * self.l + a;
        self.sigma[u][idx] + self.tau[i][idx]
    }

    /// `P_{u,i}(a | k)` for all `a` (softmax row of the log-linear model).
    fn answer_dist(&self, u: usize, i: usize, k: usize) -> Vec<f64> {
        let logits: Vec<f64> = (0..self.l).map(|a| self.answer_logit(u, i, k, a)).collect();
        softmax(&logits)
    }
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let m = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - m).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

#[allow(clippy::needless_range_loop)] // k/a index several parallel l×l tables
impl MinimaxEntropy {
    fn solve_column(&self, matrix: &AnswerMatrix, j: usize, l: usize) -> Vec<Vec<f64>> {
        let n_rows = matrix.rows();
        // The column's answers grouped by row: one contiguous CSR slice per
        // cell, visited in ascending row order (deterministic). Workers are
        // compacted to a column-local index so the `l×l` dual tables only
        // cover workers who answered this column.
        let mut remap = vec![u32::MAX; matrix.num_workers()];
        let mut n_workers = 0usize;
        let by_row: Vec<Vec<(usize, usize)>> = (0..n_rows)
            .map(|i| {
                matrix
                    .cell_range(CellId::new(i as u32, j as u32))
                    .map(|k| {
                        let g = matrix.answer_workers()[k] as usize;
                        if remap[g] == u32::MAX {
                            remap[g] = n_workers as u32;
                            n_workers += 1;
                        }
                        (remap[g] as usize, matrix.answer_labels()[k] as usize)
                    })
                    .collect()
            })
            .collect();
        if by_row.iter().all(|v: &Vec<(usize, usize)>| v.is_empty()) {
            return vec![Vec::new(); n_rows];
        }

        // Initialise posteriors from vote shares; parameters at zero (the
        // uniform model).
        let mut state = ColumnState {
            l,
            posterior: by_row
                .iter()
                .map(|votes| {
                    if votes.is_empty() {
                        return Vec::new();
                    }
                    let mut p = vec![1.0; l]; // add-one smoothing
                    for &(_, a) in votes {
                        p[a] += 1.0;
                    }
                    let t: f64 = p.iter().sum();
                    p.iter_mut().for_each(|v| *v /= t);
                    p
                })
                .collect(),
            sigma: vec![vec![0.0; l * l]; n_workers],
            tau: vec![vec![0.0; l * l]; n_rows],
        };

        let mut grad_sigma = vec![vec![0.0f64; l * l]; n_workers];
        let mut grad_tau = vec![vec![0.0f64; l * l]; n_rows];
        for _ in 0..self.max_iters {
            // ---- M-step: gradient ascent on the regularised dual.
            for _ in 0..self.grad_steps {
                for g in grad_sigma.iter_mut().chain(grad_tau.iter_mut()) {
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                for (i, votes) in by_row.iter().enumerate() {
                    if votes.is_empty() {
                        continue;
                    }
                    let post = &state.posterior[i];
                    for &(u, a_obs) in votes {
                        for k in 0..l {
                            let pk = post[k];
                            if pk <= EPS {
                                continue;
                            }
                            let dist = state.answer_dist(u, i, k);
                            for a in 0..l {
                                // ∂/∂θ[k][a] = P(t=k)·(1{a=a_obs} − P(a|k)).
                                let g = pk * ((a == a_obs) as i32 as f64 - dist[a]);
                                grad_sigma[u][k * l + a] += g;
                                grad_tau[i][k * l + a] += g;
                            }
                        }
                    }
                }
                for (s, g) in state.sigma.iter_mut().zip(&grad_sigma) {
                    for (sv, gv) in s.iter_mut().zip(g) {
                        *sv += self.learning_rate * (gv - self.l2_sigma * *sv);
                    }
                }
                for (t, g) in state.tau.iter_mut().zip(&grad_tau) {
                    for (tv, gv) in t.iter_mut().zip(g) {
                        *tv += self.learning_rate * (gv - self.l2_tau * *tv);
                    }
                }
            }

            // ---- E-step: label posteriors under the log-linear model.
            for (i, votes) in by_row.iter().enumerate() {
                if votes.is_empty() {
                    continue;
                }
                let mut log_p = vec![0.0; l]; // uniform prior
                for &(u, a_obs) in votes {
                    for k in 0..l {
                        let dist = state.answer_dist(u, i, k);
                        log_p[k] += dist[a_obs].max(EPS).ln();
                    }
                }
                state.posterior[i] = softmax(&log_p);
            }
        }
        state.posterior
    }
}

impl TruthMethod for MinimaxEntropy {
    fn name(&self) -> &'static str {
        "Minimax-Entropy"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        let matrix = AnswerMatrix::build(answers);
        let mut est = naive_estimates(schema, &matrix);
        for j in schema.categorical_columns() {
            let l = match schema.column_type(j) {
                ColumnType::Categorical { labels } => labels.len(),
                _ => unreachable!(),
            };
            if l < 2 || l > self.max_cardinality {
                continue;
            }
            let posterior = self.solve_column(&matrix, j, l);
            for (i, p) in posterior.iter().enumerate() {
                if p.is_empty() {
                    continue;
                }
                let best = p
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN posterior"))
                    .map(|(k, _)| k as u32)
                    .unwrap_or(0);
                est[i][j] = Value::Categorical(best);
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{evaluate, generate_dataset, Answer, GeneratorConfig, WorkerId};

    #[test]
    fn recovers_unanimous_labels() {
        let schema = Schema::new(
            "t",
            "k",
            vec![tcrowd_tabular::Column::new("c", ColumnType::categorical_with_cardinality(3))],
        );
        let mut log = AnswerLog::new(2, 1);
        for w in 0..4u32 {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, 0),
                value: Value::Categorical(2),
            });
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(1, 0),
                value: Value::Categorical(0),
            });
        }
        let est = MinimaxEntropy::default().estimate(&schema, &log);
        assert_eq!(est[0][0], Value::Categorical(2));
        assert_eq!(est[1][0], Value::Categorical(0));
    }

    #[test]
    fn outvotes_a_consistent_spammer() {
        // Three good workers against two random-ish ones: the model should
        // learn confusion parameters that discount the spammers.
        let schema = Schema::new(
            "t",
            "k",
            vec![tcrowd_tabular::Column::new("c", ColumnType::categorical_with_cardinality(2))],
        );
        let rows = 12u32;
        let mut log = AnswerLog::new(rows as usize, 1);
        for i in 0..rows {
            let truth = i % 2;
            for w in 0..3u32 {
                // Good workers: correct except worker 0 on row 0.
                let v = if w == 0 && i == 0 { 1 - truth } else { truth };
                log.push(Answer {
                    worker: WorkerId(w),
                    cell: CellId::new(i, 0),
                    value: Value::Categorical(v),
                });
            }
            // Two anti-correlated workers (always wrong).
            for w in 3..5u32 {
                log.push(Answer {
                    worker: WorkerId(w),
                    cell: CellId::new(i, 0),
                    value: Value::Categorical(1 - truth),
                });
            }
        }
        let est = MinimaxEntropy::default().estimate(&schema, &log);
        let correct =
            (0..rows).filter(|&i| est[i as usize][0] == Value::Categorical(i % 2)).count();
        assert!(correct >= 10, "only {correct}/{rows} recovered");
    }

    #[test]
    fn beats_or_matches_majority_voting_on_dense_answers() {
        // Minimax entropy learns an l×l confusion structure per worker and
        // needs many answers per worker to pay for it (the NIPS paper's
        // regime); with ~50 answers per (worker, column) it must match MV.
        use crate::mv::MajorityVoting;
        let mut mm_err = 0.0;
        let mut mv_err = 0.0;
        for seed in 0..3 {
            let d = generate_dataset(
                &GeneratorConfig {
                    rows: 60,
                    columns: 3,
                    categorical_ratio: 1.0,
                    num_workers: 7,
                    answers_per_task: 6,
                    ..Default::default()
                },
                seed,
            );
            let mm = evaluate(
                &d.schema,
                &d.truth,
                &MinimaxEntropy::default().estimate(&d.schema, &d.answers),
            );
            let mv = evaluate(&d.schema, &d.truth, &MajorityVoting.estimate(&d.schema, &d.answers));
            mm_err += mm.error_rate.unwrap();
            mv_err += mv.error_rate.unwrap();
        }
        assert!(mm_err <= mv_err + 0.02 * 3.0, "minimax {} vs MV {}", mm_err / 3.0, mv_err / 3.0);
    }

    #[test]
    fn continuous_columns_fall_back_to_median() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 10,
                columns: 2,
                categorical_ratio: 0.0,
                num_workers: 8,
                answers_per_task: 3,
                ..Default::default()
            },
            9,
        );
        let est = MinimaxEntropy::default().estimate(&d.schema, &d.answers);
        let med = crate::median::MedianBaseline.estimate(&d.schema, &d.answers);
        assert_eq!(est, med);
    }

    #[test]
    fn oversized_label_spaces_fall_back_to_votes() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 10,
                columns: 2,
                categorical_ratio: 1.0,
                num_workers: 8,
                answers_per_task: 3,
                cardinality_range: (4, 6),
                ..Default::default()
            },
            3,
        );
        let capped = MinimaxEntropy { max_cardinality: 3, ..Default::default() };
        let est = capped.estimate(&d.schema, &d.answers);
        let naive = crate::mv::MajorityVoting.estimate(&d.schema, &d.answers);
        assert_eq!(est, naive, "capped columns must fall back to the naive estimate");
    }

    #[test]
    fn empty_log_is_handled() {
        let schema = Schema::new(
            "t",
            "k",
            vec![tcrowd_tabular::Column::new("c", ColumnType::categorical_with_cardinality(2))],
        );
        let log = AnswerLog::new(3, 1);
        let est = MinimaxEntropy::default().estimate(&schema, &log);
        assert_eq!(est.len(), 3);
    }
}
