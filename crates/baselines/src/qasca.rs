//! QASCA-style assignment (paper ref \[39\]: Zheng, Wang, Li, Cheng, Feng —
//! *QASCA: a quality-aware task assignment system for crowdsourcing
//! applications*, SIGMOD 2015).
//!
//! QASCA assigns the incoming worker the tasks that maximise the expected
//! improvement of the deployment's *quality metric* — for the Accuracy
//! metric, the expected increase of the posterior mode's mass:
//!
//! ```text
//! ΔAcc(c) = E_a[ max_z P(T_c = z | a) ] − max_z P(T_c = z)
//! ```
//!
//! where the expectation runs over the worker's predicted answer
//! distribution. This differs from T-Crowd's information gain (entropy
//! delta, Eq. 6) in the functional: QASCA optimises the *point-estimate hit
//! rate*, T-Crowd the full-distribution uncertainty. QASCA is defined for
//! single/multi-choice tasks; for continuous cells we use the natural
//! analogue — the expected reduction of the posterior standard deviation
//! relative to the column spread — and note the adaptation in DESIGN.md
//! (the original system has no continuous tasks).
//!
//! Requires a T-Crowd inference result in the context (QASCA likewise keeps
//! per-worker quality online).

use tcrowd_core::{AssignmentContext, AssignmentPolicy, TruthDist};
use tcrowd_stat::clamp_var;
use tcrowd_tabular::{CellId, Value, WorkerId};

/// QASCA-style expected-accuracy-improvement policy.
#[derive(Debug, Default)]
pub struct QascaPolicy;

/// Expected accuracy improvement of one more answer on a categorical cell
/// with posterior `p`, answered with quality `q`.
fn categorical_delta_accuracy(p: &[f64], obs_var: f64, q: f64, truth: &TruthDist) -> f64 {
    let l = p.len() as u32;
    if l <= 1 {
        return 0.0;
    }
    let acc0 = p.iter().cloned().fold(0.0, f64::max);
    let mut expected = 0.0;
    for a in 0..l {
        // Predictive answer probability P(a) = Σ_z P(z)·P(a|z).
        let p_a: f64 = p
            .iter()
            .enumerate()
            .map(|(z, pz)| {
                let correct = z as u32 == a;
                pz * if correct { q } else { (1.0 - q) / (l - 1) as f64 }
            })
            .sum();
        if p_a <= 0.0 {
            continue;
        }
        let post = truth.updated_with_answer(&Value::Categorical(a), obs_var, q);
        let acc1 = match post {
            TruthDist::Categorical(pp) => pp.iter().cloned().fold(0.0, f64::max),
            TruthDist::Continuous(_) => unreachable!("type mismatch"),
        };
        expected += p_a * acc1;
    }
    expected - acc0
}

impl AssignmentPolicy for QascaPolicy {
    fn name(&self) -> &'static str {
        "qasca"
    }

    fn select(&mut self, worker: WorkerId, k: usize, ctx: &AssignmentContext<'_>) -> Vec<CellId> {
        let inference =
            ctx.inference.expect("QascaPolicy requires an inference result in the context");
        let candidates = ctx.candidates(worker);
        let scores: Vec<f64> = candidates
            .iter()
            .map(|&c| {
                let v = clamp_var(inference.effective_variance(worker, c));
                let q = inference.cell_quality(worker, c);
                match inference.truth_z(c) {
                    t @ TruthDist::Categorical(p) => categorical_delta_accuracy(p, v, q, t),
                    TruthDist::Continuous(n) => {
                        // Posterior std shrinks deterministically; z-space
                        // puts the drop on the column-spread scale, which is
                        // commensurate with an accuracy delta in [0, 1].
                        let var1 = 1.0 / (1.0 / n.var + 1.0 / v);
                        n.var.sqrt() - var1.sqrt()
                    }
                }
            })
            .collect();
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .expect("NaN QASCA score")
                .then(candidates[a].cmp(&candidates[b]))
        });
        order.into_iter().take(k).map(|i| candidates[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_core::TCrowd;
    use tcrowd_stat::Normal;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig};

    #[test]
    fn delta_accuracy_is_nonnegative_and_bounded() {
        for p in [vec![0.25; 4], vec![0.6, 0.2, 0.1, 0.1], vec![0.5, 0.5]] {
            let t = TruthDist::Categorical(p.clone());
            for q in [0.4, 0.7, 0.95] {
                let d = categorical_delta_accuracy(&p, 1.0, q, &t);
                let acc0 = p.iter().cloned().fold(0.0, f64::max);
                assert!(d >= -1e-9, "ΔAcc must be non-negative, got {d}");
                assert!(d <= 1.0 - acc0 + 1e-9, "ΔAcc cannot exceed 1 − acc");
            }
        }
    }

    #[test]
    fn uninformative_worker_improves_nothing() {
        let p = vec![0.5, 0.3, 0.2];
        let t = TruthDist::Categorical(p.clone());
        let d = categorical_delta_accuracy(&p, 1.0, 1.0 / 3.0, &t);
        assert!(d.abs() < 1e-9, "q = 1/|L| is uninformative, ΔAcc = {d}");
    }

    #[test]
    fn settled_cell_scores_lower_than_uncertain_cell() {
        let uncertain = vec![0.4, 0.3, 0.3];
        let settled = vec![0.98, 0.01, 0.01];
        let tu = TruthDist::Categorical(uncertain.clone());
        let ts = TruthDist::Categorical(settled.clone());
        let du = categorical_delta_accuracy(&uncertain, 1.0, 0.85, &tu);
        let ds = categorical_delta_accuracy(&settled, 1.0, 0.85, &ts);
        assert!(du > ds, "{du} !> {ds}");
    }

    #[test]
    fn continuous_score_prefers_wide_posteriors() {
        let wide = Normal::new(0.0, 4.0);
        let tight = Normal::new(0.0, 0.01);
        let v = 1.0;
        let dw = wide.var.sqrt() - (1.0f64 / (1.0 / wide.var + 1.0 / v)).sqrt();
        let dt = tight.var.sqrt() - (1.0f64 / (1.0 / tight.var + 1.0 / v)).sqrt();
        assert!(dw > dt);
    }

    #[test]
    fn policy_selects_k_distinct_cells_end_to_end() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 20,
                columns: 4,
                num_workers: 12,
                answers_per_task: 3,
                ..Default::default()
            },
            5,
        );
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let m = d.answers.to_matrix();
        let ctx = AssignmentContext {
            schema: &d.schema,
            answers: &d.answers,
            freeze: m.freeze_view(),
            inference: Some(&r),
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        let mut policy = QascaPolicy;
        let picks = policy.select(WorkerId(40_000), 6, &ctx);
        assert_eq!(picks.len(), 6);
        let mut dedup = picks.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 6);
    }
}
