//! D&S — the Dawid–Skene confusion-matrix EM (paper refs \[9, 15\]; the "EM"
//! row of Table 7).
//!
//! Each worker gets a full `|L_j| × |L_j|` confusion matrix **per categorical
//! column** — columns are fitted independently, which is precisely the
//! no-knowledge-transfer weakness T-Crowd's unified quality addresses.

#![allow(clippy::needless_range_loop)] // index loops here walk several parallel arrays
use crate::method::{naive_estimates, TruthMethod};
use tcrowd_tabular::{AnswerLog, AnswerMatrix, CellId, ColumnType, Schema, Value};

/// Dawid–Skene estimator (per-column confusion matrices).
#[derive(Debug, Clone, Copy)]
pub struct DawidSkene {
    /// EM iterations (D&S converges quickly; 30 is generous).
    pub max_iters: usize,
    /// Additive smoothing for confusion-matrix rows (avoids degenerate
    /// certainty from sparse worker×label counts).
    pub smoothing: f64,
}

impl Default for DawidSkene {
    fn default() -> Self {
        DawidSkene { max_iters: 30, smoothing: 0.1 }
    }
}

impl DawidSkene {
    /// Run D&S on one categorical column, returning per-row posteriors.
    fn fit_column(&self, matrix: &AnswerMatrix, col: u32, cardinality: usize) -> Vec<Vec<f64>> {
        let n = matrix.rows();
        let l = cardinality;
        // Collect (row, worker, label) triples of this column: the by-cell
        // CSR view makes this one contiguous slice per row. Workers are
        // compacted to a column-local index so the confusion tables only
        // cover workers who actually answered this column.
        let mut remap = vec![u32::MAX; matrix.num_workers()];
        let mut n_workers = 0usize;
        let mut triples: Vec<(usize, usize, usize)> = Vec::new();
        for i in 0..n as u32 {
            for k in matrix.cell_range(CellId::new(i, col)) {
                let g = matrix.answer_workers()[k] as usize;
                if remap[g] == u32::MAX {
                    remap[g] = n_workers as u32;
                    n_workers += 1;
                }
                triples.push((i as usize, remap[g] as usize, matrix.answer_labels()[k] as usize));
            }
        }

        // Initialise posteriors from per-cell vote shares.
        let mut posterior = vec![vec![1.0 / l as f64; l]; n];
        for row in posterior.iter_mut() {
            row.iter_mut().for_each(|p| *p = 0.0);
        }
        let mut counts = vec![0usize; n];
        for &(i, _, a) in &triples {
            posterior[i][a] += 1.0;
            counts[i] += 1;
        }
        for (i, row) in posterior.iter_mut().enumerate() {
            if counts[i] == 0 {
                row.iter_mut().for_each(|p| *p = 1.0 / l as f64);
            } else {
                row.iter_mut().for_each(|p| *p /= counts[i] as f64);
            }
        }

        let mut confusion = vec![vec![vec![0.0f64; l]; l]; n_workers];
        let mut prior = vec![1.0 / l as f64; l];
        for _ in 0..self.max_iters {
            // M-step: confusion matrices and class priors.
            for m in confusion.iter_mut() {
                for row in m.iter_mut() {
                    row.iter_mut().for_each(|c| *c = self.smoothing);
                }
            }
            for &(i, u, a) in &triples {
                for z in 0..l {
                    confusion[u][z][a] += posterior[i][z];
                }
            }
            for m in confusion.iter_mut() {
                for row in m.iter_mut() {
                    let total: f64 = row.iter().sum();
                    row.iter_mut().for_each(|c| *c /= total);
                }
            }
            let mut class_mass = vec![self.smoothing; l];
            for row in &posterior {
                for (z, p) in row.iter().enumerate() {
                    class_mass[z] += p;
                }
            }
            let total: f64 = class_mass.iter().sum();
            for (z, p) in prior.iter_mut().enumerate() {
                *p = class_mass[z] / total;
            }

            // E-step: posteriors from the new parameters (log space).
            let mut ln_post = vec![vec![0.0f64; l]; n];
            for (i, row) in ln_post.iter_mut().enumerate() {
                for (z, lp) in row.iter_mut().enumerate() {
                    *lp = prior[z].ln();
                    let _ = i;
                }
            }
            for &(i, u, a) in &triples {
                for z in 0..l {
                    ln_post[i][z] += confusion[u][z][a].ln();
                }
            }
            for (i, row) in ln_post.iter().enumerate() {
                let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut p: Vec<f64> = row.iter().map(|lp| (lp - max).exp()).collect();
                let total: f64 = p.iter().sum();
                p.iter_mut().for_each(|v| *v /= total);
                posterior[i] = p;
            }
        }
        posterior
    }
}

impl TruthMethod for DawidSkene {
    fn name(&self) -> &'static str {
        "D&S"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        let matrix = AnswerMatrix::build(answers);
        let mut est = naive_estimates(schema, &matrix);
        for j in 0..schema.num_columns() {
            if let ColumnType::Categorical { labels } = schema.column_type(j) {
                let post = self.fit_column(&matrix, j as u32, labels.len());
                for (i, row) in post.iter().enumerate() {
                    if matrix.count_for_cell(CellId::new(i as u32, j as u32)) == 0 {
                        continue; // keep the fallback
                    }
                    let best = row
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
                        .map(|(z, _)| z as u32)
                        .unwrap_or(0);
                    est[i][j] = Value::Categorical(best);
                }
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mv::MajorityVoting;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerQualityConfig};

    #[test]
    fn ds_beats_mv_with_heterogeneous_workers() {
        // Strong quality spread (including spammers) is where confusion
        // matrices pay off against plain voting. Averaged over seeds: on a
        // single draw the two can tie within noise.
        let mut ds_total = 0.0;
        let mut mv_total = 0.0;
        for seed in 0..4 {
            let d = generate_dataset(
                &GeneratorConfig {
                    rows: 100,
                    columns: 3,
                    categorical_ratio: 1.0,
                    num_workers: 20,
                    answers_per_task: 5,
                    cardinality_range: (4, 6),
                    quality: WorkerQualityConfig {
                        median_phi: 0.25,
                        sigma_ln_phi: 1.2,
                        spammer_fraction: 0.25,
                        spammer_factor: 40.0,
                    },
                    ..Default::default()
                },
                seed,
            );
            let ds = DawidSkene::default().estimate(&d.schema, &d.answers);
            let mv = MajorityVoting.estimate(&d.schema, &d.answers);
            ds_total += tcrowd_tabular::evaluate(&d.schema, &d.truth, &ds).error_rate.unwrap();
            mv_total += tcrowd_tabular::evaluate(&d.schema, &d.truth, &mv).error_rate.unwrap();
        }
        assert!(
            ds_total <= mv_total + 0.01,
            "D&S mean {} vs MV mean {}",
            ds_total / 4.0,
            mv_total / 4.0
        );
    }

    #[test]
    fn unanimous_answers_are_respected() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 10,
                columns: 2,
                categorical_ratio: 1.0,
                num_workers: 6,
                answers_per_task: 3,
                quality: WorkerQualityConfig {
                    median_phi: 0.005,
                    sigma_ln_phi: 0.01,
                    spammer_fraction: 0.0,
                    spammer_factor: 1.0,
                },
                ..Default::default()
            },
            6,
        );
        // Near-perfect workers → near-perfect recovery.
        let est = DawidSkene::default().estimate(&d.schema, &d.answers);
        let rep = tcrowd_tabular::evaluate(&d.schema, &d.truth, &est);
        assert!(rep.error_rate.unwrap() < 0.05);
    }

    #[test]
    fn handles_empty_log() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 4,
                columns: 2,
                num_workers: 5,
                answers_per_task: 2,
                ..Default::default()
            },
            1,
        );
        let empty = AnswerLog::new(4, 2);
        let est = DawidSkene::default().estimate(&d.schema, &empty);
        assert_eq!(est.len(), 4);
    }
}
