//! CRH (paper refs \[18, 19\]) — conflict resolution on heterogeneous data.
//!
//! Iteratively alternates between truth updates and source-weight updates:
//! `w_u = −ln(loss_u / Σ_s loss_s)` where a worker's loss is the 0–1 distance
//! on categorical cells plus the squared normalised distance on continuous
//! cells (the framework's recommended distance pair). Truths are the
//! weighted vote / weighted mean.

use crate::method::{column_zscore, naive_estimates, TruthMethod};
use std::collections::HashMap;
use tcrowd_tabular::{AnswerLog, ColumnType, Schema, Value, WorkerId};

/// CRH estimator.
#[derive(Debug, Clone, Copy)]
pub struct Crh {
    /// Alternating iterations (CRH converges fast; 15 is generous).
    pub max_iters: usize,
    /// Additive smoothing on losses (keeps `ln` finite for perfect workers).
    pub smoothing: f64,
}

impl Default for Crh {
    fn default() -> Self {
        Crh { max_iters: 15, smoothing: 0.01 }
    }
}

impl TruthMethod for Crh {
    fn name(&self) -> &'static str {
        "CRH"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        let mut est = naive_estimates(schema, answers);
        if answers.is_empty() {
            return est;
        }
        let m = schema.num_columns();
        let zscales: Vec<Option<(f64, f64)>> = (0..m)
            .map(|j| match schema.column_type(j) {
                ColumnType::Continuous { .. } => Some(column_zscore(answers, j)),
                _ => None,
            })
            .collect();
        let mut weights: HashMap<WorkerId, f64> = answers.workers().map(|w| (w, 1.0)).collect();

        for _ in 0..self.max_iters {
            // Source losses against the current truths.
            let mut losses: HashMap<WorkerId, f64> = HashMap::new();
            for a in answers.all() {
                let j = a.cell.col as usize;
                let i = a.cell.row as usize;
                let loss = match (&a.value, &est[i][j]) {
                    (Value::Categorical(x), Value::Categorical(t)) => (x != t) as i32 as f64,
                    (Value::Continuous(x), Value::Continuous(t)) => {
                        let (_, sd) = zscales[j].expect("scaler");
                        let d = (x - t) / sd;
                        d * d
                    }
                    _ => unreachable!("type mismatch"),
                };
                *losses.entry(a.worker).or_default() += loss;
            }
            let total: f64 = losses.values().sum::<f64>() + self.smoothing;
            for (w, wt) in weights.iter_mut() {
                let l = losses.get(w).copied().unwrap_or(0.0) + self.smoothing;
                // w = −ln(loss share); floor at a tiny positive weight so a
                // worker never gets negative influence.
                *wt = (-(l / total).ln()).max(1e-3);
            }

            // Truth updates: weighted vote / weighted mean.
            for i in 0..answers.rows() as u32 {
                for j in 0..answers.cols() as u32 {
                    let cell = tcrowd_tabular::CellId::new(i, j);
                    if answers.count_for_cell(cell) == 0 {
                        continue;
                    }
                    match schema.column_type(j as usize) {
                        ColumnType::Categorical { labels } => {
                            let mut scores = vec![0.0f64; labels.len()];
                            for a in answers.for_cell(cell) {
                                scores[a.value.expect_categorical() as usize] +=
                                    weights[&a.worker];
                            }
                            let best = scores
                                .iter()
                                .enumerate()
                                .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
                                .map(|(z, _)| z as u32)
                                .unwrap_or(0);
                            est[i as usize][j as usize] = Value::Categorical(best);
                        }
                        ColumnType::Continuous { .. } => {
                            let mut num = 0.0;
                            let mut den = 0.0;
                            for a in answers.for_cell(cell) {
                                let w = weights[&a.worker];
                                num += w * a.value.expect_continuous();
                                den += w;
                            }
                            if den > 0.0 {
                                est[i as usize][j as usize] = Value::Continuous(num / den);
                            }
                        }
                    }
                }
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mv::MajorityVoting;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerQualityConfig};

    fn spammy(seed: u64) -> tcrowd_tabular::Dataset {
        generate_dataset(
            &GeneratorConfig {
                rows: 100,
                columns: 4,
                categorical_ratio: 0.5,
                num_workers: 16,
                answers_per_task: 5,
                quality: WorkerQualityConfig {
                    median_phi: 0.15,
                    sigma_ln_phi: 1.0,
                    spammer_fraction: 0.25,
                    spammer_factor: 40.0,
                },
                ..Default::default()
            },
            seed,
        )
    }

    #[test]
    fn crh_beats_unweighted_aggregates() {
        let d = spammy(4);
        let crh = Crh::default().estimate(&d.schema, &d.answers);
        let mv = MajorityVoting.estimate(&d.schema, &d.answers);
        let c = tcrowd_tabular::evaluate(&d.schema, &d.truth, &crh);
        let v = tcrowd_tabular::evaluate(&d.schema, &d.truth, &mv);
        assert!(c.error_rate.unwrap() <= v.error_rate.unwrap() + 0.01);

        // On the continuous side, compare against the *unweighted mean* —
        // the same estimator family without source weights. (The median is a
        // different robustness mechanism and can beat CRH's weighted mean
        // under extreme spammers, which the paper itself notes as CRH's
        // instability.)
        let mut unweighted = d.truth.clone();
        for i in 0..d.rows() as u32 {
            for j in d.schema.continuous_columns() {
                let vals: Vec<f64> = d
                    .answers
                    .for_cell(tcrowd_tabular::CellId::new(i, j as u32))
                    .map(|a| a.value.expect_continuous())
                    .collect();
                unweighted[i as usize][j] =
                    Value::Continuous(tcrowd_stat::describe::mean(&vals));
            }
        }
        let u = tcrowd_tabular::evaluate(&d.schema, &d.truth, &unweighted);
        assert!(
            c.mnad.unwrap() < u.mnad.unwrap(),
            "CRH {} vs unweighted mean {}",
            c.mnad.unwrap(),
            u.mnad.unwrap()
        );
    }

    #[test]
    fn handles_empty_and_single_answer_logs() {
        let d = spammy(5);
        let empty = AnswerLog::new(d.rows(), d.cols());
        let est = Crh::default().estimate(&d.schema, &empty);
        assert_eq!(est.len(), d.rows());
        // One answer: CRH should return it.
        let mut one = AnswerLog::new(d.rows(), d.cols());
        one.push(*d.answers.all().first().unwrap());
        let est1 = Crh::default().estimate(&d.schema, &one);
        let a = d.answers.all()[0];
        assert_eq!(est1[a.cell.row as usize][a.cell.col as usize], a.value);
    }
}
