//! CRH (paper refs \[18, 19\]) — conflict resolution on heterogeneous data.
//!
//! Iteratively alternates between truth updates and source-weight updates:
//! `w_u = −ln(loss_u / Σ_s loss_s)` where a worker's loss is the 0–1 distance
//! on categorical cells plus the squared normalised distance on continuous
//! cells (the framework's recommended distance pair). Truths are the
//! weighted vote / weighted mean.

use crate::method::{column_zscores, naive_estimates, TruthMethod};
use tcrowd_tabular::{AnswerLog, AnswerMatrix, ColumnType, Schema, Value};

/// CRH estimator.
#[derive(Debug, Clone, Copy)]
pub struct Crh {
    /// Alternating iterations (CRH converges fast; 15 is generous).
    pub max_iters: usize,
    /// Additive smoothing on losses (keeps `ln` finite for perfect workers).
    pub smoothing: f64,
}

impl Default for Crh {
    fn default() -> Self {
        Crh { max_iters: 15, smoothing: 0.01 }
    }
}

impl TruthMethod for Crh {
    fn name(&self) -> &'static str {
        "CRH"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        let matrix = AnswerMatrix::build(answers);
        let mut est = naive_estimates(schema, &matrix);
        if matrix.is_empty() {
            return est;
        }
        let zscales = column_zscores(schema, &matrix);
        // Dense per-worker weights over the matrix's sorted worker index —
        // sums below accumulate in index order, so results are deterministic.
        let mut weights = vec![1.0f64; matrix.num_workers()];
        let mut losses = vec![0.0f64; matrix.num_workers()];

        for _ in 0..self.max_iters {
            // Source losses against the current truths (one payload pass).
            losses.iter_mut().for_each(|l| *l = 0.0);
            for k in 0..matrix.len() {
                let i = matrix.answer_rows()[k] as usize;
                let j = matrix.answer_cols()[k] as usize;
                let loss = if matrix.is_categorical(k) {
                    let t = est[i][j].expect_categorical();
                    (matrix.answer_labels()[k] != t) as i32 as f64
                } else {
                    let t = est[i][j].expect_continuous();
                    let (_, sd) = zscales[j].expect("scaler");
                    let d = (matrix.answer_values()[k] - t) / sd;
                    d * d
                };
                losses[matrix.answer_workers()[k] as usize] += loss;
            }
            let total: f64 = losses.iter().sum::<f64>() + self.smoothing;
            for (wt, &l) in weights.iter_mut().zip(&losses) {
                // w = −ln(loss share); floor at a tiny positive weight so a
                // worker never gets negative influence.
                *wt = (-((l + self.smoothing) / total).ln()).max(1e-3);
            }

            // Truth updates: weighted vote / weighted mean over cell slices.
            for i in 0..matrix.rows() as u32 {
                for j in 0..matrix.cols() as u32 {
                    let range = matrix.cell_range(tcrowd_tabular::CellId::new(i, j));
                    if range.is_empty() {
                        continue;
                    }
                    match schema.column_type(j as usize) {
                        ColumnType::Categorical { labels } => {
                            let mut scores = vec![0.0f64; labels.len()];
                            for k in range {
                                scores[matrix.answer_labels()[k] as usize] +=
                                    weights[matrix.answer_workers()[k] as usize];
                            }
                            let best = scores
                                .iter()
                                .enumerate()
                                .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
                                .map(|(z, _)| z as u32)
                                .unwrap_or(0);
                            est[i as usize][j as usize] = Value::Categorical(best);
                        }
                        ColumnType::Continuous { .. } => {
                            let mut num = 0.0;
                            let mut den = 0.0;
                            for k in range {
                                let w = weights[matrix.answer_workers()[k] as usize];
                                num += w * matrix.answer_values()[k];
                                den += w;
                            }
                            if den > 0.0 {
                                est[i as usize][j as usize] = Value::Continuous(num / den);
                            }
                        }
                    }
                }
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mv::MajorityVoting;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerQualityConfig};

    fn spammy(seed: u64) -> tcrowd_tabular::Dataset {
        generate_dataset(
            &GeneratorConfig {
                rows: 100,
                columns: 4,
                categorical_ratio: 0.5,
                num_workers: 16,
                answers_per_task: 5,
                quality: WorkerQualityConfig {
                    median_phi: 0.15,
                    sigma_ln_phi: 1.0,
                    spammer_fraction: 0.25,
                    spammer_factor: 40.0,
                },
                ..Default::default()
            },
            seed,
        )
    }

    #[test]
    fn crh_beats_unweighted_aggregates() {
        let d = spammy(4);
        let crh = Crh::default().estimate(&d.schema, &d.answers);
        let mv = MajorityVoting.estimate(&d.schema, &d.answers);
        let c = tcrowd_tabular::evaluate(&d.schema, &d.truth, &crh);
        let v = tcrowd_tabular::evaluate(&d.schema, &d.truth, &mv);
        assert!(c.error_rate.unwrap() <= v.error_rate.unwrap() + 0.01);

        // On the continuous side, compare against the *unweighted mean* —
        // the same estimator family without source weights. (The median is a
        // different robustness mechanism and can beat CRH's weighted mean
        // under extreme spammers, which the paper itself notes as CRH's
        // instability.)
        let mut unweighted = d.truth.clone();
        for i in 0..d.rows() as u32 {
            for j in d.schema.continuous_columns() {
                let vals: Vec<f64> = d
                    .answers
                    .for_cell(tcrowd_tabular::CellId::new(i, j as u32))
                    .map(|a| a.value.expect_continuous())
                    .collect();
                unweighted[i as usize][j] = Value::Continuous(tcrowd_stat::describe::mean(&vals));
            }
        }
        let u = tcrowd_tabular::evaluate(&d.schema, &d.truth, &unweighted);
        assert!(
            c.mnad.unwrap() < u.mnad.unwrap(),
            "CRH {} vs unweighted mean {}",
            c.mnad.unwrap(),
            u.mnad.unwrap()
        );
    }

    #[test]
    fn handles_empty_and_single_answer_logs() {
        let d = spammy(5);
        let empty = AnswerLog::new(d.rows(), d.cols());
        let est = Crh::default().estimate(&d.schema, &empty);
        assert_eq!(est.len(), d.rows());
        // One answer: CRH should return it.
        let mut one = AnswerLog::new(d.rows(), d.cols());
        one.push(*d.answers.all().first().unwrap());
        let est1 = Crh::default().estimate(&d.schema, &one);
        let a = d.answers.all()[0];
        assert_eq!(est1[a.cell.row as usize][a.cell.col as usize], a.value);
    }
}
