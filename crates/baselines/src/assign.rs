//! Baseline assignment policies (paper §6.3 and Fig. 5).
//!
//! * [`RandomPolicy`] — uniform random among eligible cells (what CRH and
//!   CATD use in the end-to-end comparison, and CDAS within its
//!   non-terminated pool).
//! * [`LoopingPolicy`] — round-robin over cells (the "Looping" heuristic).
//! * [`EntropyPolicy`] — AskIt!-style: pick the most *uncertain* cells, with
//!   uncertainty measured directly on the answers (vote entropy for
//!   categorical cells, Gaussian differential entropy of the raw answers for
//!   continuous cells). Deliberately reproduces the paper's observation that
//!   raw entropies are datatype-biased: wide continuous domains dwarf
//!   `ln |L|`, so continuous tasks are picked first.
//! * [`CdasPolicy`] — CDAS-style: estimate each task's confidence, freeze
//!   ("terminate") confident tasks, assign randomly among the rest.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tcrowd_core::{AssignmentContext, AssignmentPolicy};
use tcrowd_stat::describe::{mean, std_dev};
use tcrowd_stat::entropy::shannon;
use tcrowd_tabular::{CellId, ColumnType, WorkerId};

/// Uniform random assignment.
#[derive(Debug)]
pub struct RandomPolicy {
    rng: StdRng,
}

impl RandomPolicy {
    /// Create with a seed (experiments must be reproducible).
    pub fn seeded(seed: u64) -> Self {
        RandomPolicy { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Default for RandomPolicy {
    fn default() -> Self {
        Self::seeded(7)
    }
}

impl AssignmentPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(&mut self, worker: WorkerId, k: usize, ctx: &AssignmentContext<'_>) -> Vec<CellId> {
        let mut candidates = ctx.candidates(worker);
        candidates.shuffle(&mut self.rng);
        candidates.truncate(k);
        candidates
    }
}

/// Round-robin assignment: walk the table in row-major order, resuming where
/// the previous call stopped.
#[derive(Debug, Default)]
pub struct LoopingPolicy {
    cursor: usize,
}

impl AssignmentPolicy for LoopingPolicy {
    fn name(&self) -> &'static str {
        "looping"
    }

    fn select(&mut self, worker: WorkerId, k: usize, ctx: &AssignmentContext<'_>) -> Vec<CellId> {
        let total = ctx.answers.rows() * ctx.answers.cols();
        if total == 0 {
            return Vec::new();
        }
        let cols = ctx.answers.cols();
        let mut picked = Vec::with_capacity(k);
        // One full lap at most, skipping ineligible cells.
        for step in 0..total {
            if picked.len() >= k {
                break;
            }
            let slot = (self.cursor + step) % total;
            let cell = CellId::new((slot / cols) as u32, (slot % cols) as u32);
            if ctx.answers.has_answered(worker, cell) {
                continue;
            }
            if let Some(cap) = ctx.max_answers_per_cell {
                if ctx.answers.count_for_cell(cell) >= cap {
                    continue;
                }
            }
            picked.push(cell);
        }
        if let Some(last) = picked.last() {
            self.cursor = (last.row as usize * cols + last.col as usize + 1) % total;
        }
        picked
    }
}

/// AskIt!-style highest-uncertainty assignment, computed from raw answers.
#[derive(Debug, Default)]
pub struct EntropyPolicy;

/// Raw-answer uncertainty of one cell (the AskIt!-style criterion).
///
/// Categorical: Shannon entropy of the empirical vote distribution (maximal
/// `ln |L|` when unanswered). Continuous: differential entropy `½ln(2πe s²)`
/// of the answers *in their original domain units* — unanswered or
/// single-answer cells use the domain width as the spread. Keeping the raw
/// units is what reproduces the paper's datatype bias.
pub fn raw_uncertainty(ctx: &AssignmentContext<'_>, cell: CellId) -> f64 {
    match ctx.schema.column_type(cell.col as usize) {
        ColumnType::Categorical { labels } => {
            let l = labels.len();
            let mut counts = vec![0.0f64; l];
            let mut n = 0.0;
            ctx.answers.for_each_cell_value(cell, &mut |v| {
                counts[v.expect_categorical() as usize] += 1.0;
                n += 1.0;
            });
            if n == 0.0 {
                (l as f64).ln()
            } else {
                counts.iter_mut().for_each(|c| *c /= n);
                shannon(&counts)
            }
        }
        ColumnType::Continuous { min, max } => {
            let vals: Vec<f64> =
                ctx.answers.cell_values(cell).iter().map(|v| v.expect_continuous()).collect();
            let spread = if vals.len() < 2 {
                // No information yet: spread of a uniform over the domain.
                (max - min) / 12f64.sqrt()
            } else {
                std_dev(&vals).max(1e-6)
            };
            // Differential entropy of N(·, spread²).
            0.5 * (2.0 * std::f64::consts::PI * std::f64::consts::E * spread * spread).ln()
        }
    }
}

impl AssignmentPolicy for EntropyPolicy {
    fn name(&self) -> &'static str {
        "entropy (AskIt!)"
    }

    fn select(&mut self, worker: WorkerId, k: usize, ctx: &AssignmentContext<'_>) -> Vec<CellId> {
        let candidates = ctx.candidates(worker);
        let mut scored: Vec<(CellId, f64)> =
            candidates.into_iter().map(|c| (c, raw_uncertainty(ctx, c))).collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN").then(a.0.cmp(&b.0)));
        scored.into_iter().take(k).map(|(c, _)| c).collect()
    }
}

/// CDAS-style confidence-terminated random assignment.
#[derive(Debug)]
pub struct CdasPolicy {
    /// Minimum answers before a task may terminate.
    pub min_answers: usize,
    /// Categorical: terminate when the (smoothed) majority share reaches
    /// this level.
    pub vote_confidence: f64,
    /// Continuous: terminate when the standard error of the mean drops below
    /// this fraction of the column's answer spread.
    pub relative_se: f64,
    rng: StdRng,
}

impl CdasPolicy {
    /// Create with a seed.
    pub fn seeded(seed: u64) -> Self {
        CdasPolicy {
            min_answers: 3,
            vote_confidence: 0.8,
            relative_se: 0.25,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Is this task confidently resolved (terminated)?
    pub fn is_terminated(&self, ctx: &AssignmentContext<'_>, cell: CellId) -> bool {
        let n = ctx.answers.count_for_cell(cell);
        if n < self.min_answers {
            return false;
        }
        match ctx.schema.column_type(cell.col as usize) {
            ColumnType::Categorical { labels } => {
                let mut counts = vec![0.0f64; labels.len()];
                ctx.answers.for_each_cell_value(cell, &mut |v| {
                    counts[v.expect_categorical() as usize] += 1.0;
                });
                let top = counts.iter().cloned().fold(0.0, f64::max);
                // Laplace-smoothed majority share (CDAS's quality-sensitive
                // termination, simplified to anonymous worker accuracy).
                (top + 1.0) / (n as f64 + 2.0) >= self.vote_confidence
            }
            ColumnType::Continuous { .. } => {
                let vals: Vec<f64> =
                    ctx.answers.cell_values(cell).iter().map(|v| v.expect_continuous()).collect();
                let col_vals: Vec<f64> = ctx.answers.continuous_column_values(cell.col);
                let scale = std_dev(&col_vals).max(1e-9);
                let se = std_dev(&vals) / (vals.len() as f64).sqrt();
                let _ = mean(&vals);
                se / scale < self.relative_se
            }
        }
    }
}

impl Default for CdasPolicy {
    fn default() -> Self {
        Self::seeded(23)
    }
}

impl AssignmentPolicy for CdasPolicy {
    fn name(&self) -> &'static str {
        "CDAS"
    }

    fn select(&mut self, worker: WorkerId, k: usize, ctx: &AssignmentContext<'_>) -> Vec<CellId> {
        let mut open: Vec<CellId> =
            ctx.candidates(worker).into_iter().filter(|&c| !self.is_terminated(ctx, c)).collect();
        if open.len() < k {
            // All remaining tasks are "done": CDAS keeps spending budget on
            // random open-or-not candidates rather than stalling.
            let mut rest: Vec<CellId> =
                ctx.candidates(worker).into_iter().filter(|c| !open.contains(c)).collect();
            rest.shuffle(&mut self.rng);
            open.extend(rest);
        }
        open.shuffle(&mut self.rng);
        open.truncate(k);
        open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{generate_dataset, Answer, GeneratorConfig, Value};

    fn ctx_fixture(seed: u64) -> (tcrowd_tabular::Dataset, ()) {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 12,
                columns: 4,
                num_workers: 10,
                answers_per_task: 3,
                ..Default::default()
            },
            seed,
        );
        (d, ())
    }

    fn make_ctx<'a>(
        d: &'a tcrowd_tabular::Dataset,
        m: &'a tcrowd_tabular::AnswerMatrix,
    ) -> AssignmentContext<'a> {
        AssignmentContext {
            schema: &d.schema,
            answers: &d.answers,
            freeze: m.freeze_view(),
            inference: None,
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        }
    }

    #[test]
    fn random_policy_selects_k_unanswered() {
        let (d, _) = ctx_fixture(1);
        let m = d.answers.to_matrix();
        let ctx = make_ctx(&d, &m);
        let mut p = RandomPolicy::seeded(1);
        let w = WorkerId(500);
        let picks = p.select(w, 6, &ctx);
        assert_eq!(picks.len(), 6);
        let mut sorted = picks.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn random_policy_is_seed_deterministic() {
        let (d, _) = ctx_fixture(2);
        let m = d.answers.to_matrix();
        let ctx = make_ctx(&d, &m);
        let a = RandomPolicy::seeded(5).select(WorkerId(0), 5, &ctx);
        let b = RandomPolicy::seeded(5).select(WorkerId(0), 5, &ctx);
        assert_eq!(a, b);
    }

    #[test]
    fn looping_policy_walks_in_order_and_resumes() {
        let (d, _) = ctx_fixture(3);
        let m = d.answers.to_matrix();
        let ctx = make_ctx(&d, &m);
        let mut p = LoopingPolicy::default();
        let w = WorkerId(500);
        let first = p.select(w, 3, &ctx);
        assert_eq!(first, vec![CellId::new(0, 0), CellId::new(0, 1), CellId::new(0, 2)]);
        let second = p.select(w, 2, &ctx);
        assert_eq!(second, vec![CellId::new(0, 3), CellId::new(1, 0)]);
    }

    #[test]
    fn entropy_policy_prefers_continuous_first() {
        // The paper's Fig. 5 discussion: raw entropies are biased toward
        // wide continuous domains.
        let (d, _) = ctx_fixture(4);
        let m = d.answers.to_matrix();
        let ctx = make_ctx(&d, &m);
        let mut p = EntropyPolicy;
        let picks = p.select(WorkerId(500), 5, &ctx);
        let cont: Vec<usize> = d.schema.continuous_columns();
        for c in &picks {
            assert!(
                cont.contains(&(c.col as usize)),
                "entropy policy picked categorical {c:?} before continuous tasks"
            );
        }
    }

    #[test]
    fn entropy_of_unanswered_categorical_is_maximal() {
        let (d, _) = ctx_fixture(5);
        let mut log = tcrowd_tabular::AnswerLog::new(d.rows(), d.cols());
        // Answer one cell unanimously; leave another empty.
        let j = d.schema.categorical_columns()[0] as u32;
        for w in 0..4u32 {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, j),
                value: Value::Categorical(0),
            });
        }
        let m = log.to_matrix();
        let ctx = AssignmentContext {
            schema: &d.schema,
            answers: &log,
            freeze: m.freeze_view(),
            inference: None,
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        let settled = raw_uncertainty(&ctx, CellId::new(0, j));
        let open = raw_uncertainty(&ctx, CellId::new(1, j));
        assert!(open > settled);
        assert_eq!(settled, 0.0, "unanimous vote has zero entropy");
    }

    #[test]
    fn cdas_terminates_unanimous_tasks() {
        let (d, _) = ctx_fixture(6);
        let mut log = tcrowd_tabular::AnswerLog::new(d.rows(), d.cols());
        let j = d.schema.categorical_columns()[0] as u32;
        for w in 0..5u32 {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, j),
                value: Value::Categorical(1),
            });
        }
        let m = log.to_matrix();
        let ctx = AssignmentContext {
            schema: &d.schema,
            answers: &log,
            freeze: m.freeze_view(),
            inference: None,
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        let p = CdasPolicy::seeded(1);
        assert!(p.is_terminated(&ctx, CellId::new(0, j)));
        assert!(!p.is_terminated(&ctx, CellId::new(1, j)), "unanswered is open");
        // A contested cell stays open.
        let mut contested = tcrowd_tabular::AnswerLog::new(d.rows(), d.cols());
        for (w, l) in [(0u32, 0u32), (1, 1), (2, 2), (3, 0), (4, 1)] {
            contested.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, j),
                value: Value::Categorical(l),
            });
        }
        let m2 = contested.to_matrix();
        let ctx2 = AssignmentContext {
            schema: &d.schema,
            answers: &contested,
            freeze: m2.freeze_view(),
            inference: None,
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        assert!(!p.is_terminated(&ctx2, CellId::new(0, j)));
    }

    #[test]
    fn cdas_avoids_terminated_tasks_when_possible() {
        let (d, _) = ctx_fixture(7);
        let m = d.answers.to_matrix();
        let ctx = make_ctx(&d, &m);
        let mut p = CdasPolicy::seeded(2);
        let picks = p.select(WorkerId(900), 4, &ctx);
        assert_eq!(picks.len(), 4);
        for c in &picks {
            // With only 3 noisy answers per task, most cells are open; the
            // chosen ones must certainly be open when any open cell exists.
            if p.is_terminated(&ctx, *c) {
                // Allowed only if every candidate was terminated — not the
                // case in this fixture.
                panic!("CDAS picked a terminated cell while open cells existed");
            }
        }
    }
}
