//! # tcrowd-baselines
//!
//! Every comparator method from the T-Crowd paper's evaluation (§6),
//! implemented from scratch:
//!
//! **Truth inference** (Table 7):
//!
//! | Method | Scope | Module |
//! |---|---|---|
//! | Majority Voting | categorical | [`mv`] |
//! | Median | continuous | [`median`] |
//! | D&S (confusion-matrix EM — the paper's "EM" row) | categorical | [`ds`] |
//! | GLAD (ability × task difficulty) | categorical | [`glad`] |
//! | ZenCrowd (single reliability EM) | categorical | [`zencrowd`] |
//! | GTM (Gaussian truth model) | continuous | [`gtm`] |
//! | CRH (loss-minimising heterogeneous) | both | [`crh`] |
//! | CATD (confidence-aware long-tail) | both | [`catd`] |
//!
//! Single-datatype methods fall back to the obvious aggregate (mode/median)
//! on the other datatype so they always return a full table; the benchmark
//! harness only scores them on their own datatype, exactly as Table 7 leaves
//! the other metric blank.
//!
//! [`truthfinder`] adds TruthFinder (the paper's ref. 35) from the related work for
//! completeness (it is not a Table 7 row).
//!
//! **Task assignment** (Fig. 2 and Fig. 5): random (CRH/CATD-style),
//! round-robin looping, raw-entropy uncertainty (AskIt!), and CDAS
//! confidence-termination, in [`assign`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accusim;
pub mod assign;
pub mod catd;
pub mod crh;
pub mod ds;
pub mod glad;
pub mod gtm;
pub mod median;
pub mod method;
pub mod minimax;
pub mod mv;
pub mod percolumn;
pub mod qasca;
pub mod truthfinder;
pub mod zencrowd;

pub use accusim::Accu;
pub use assign::{CdasPolicy, EntropyPolicy, LoopingPolicy, RandomPolicy};
pub use catd::Catd;
pub use crh::Crh;
pub use ds::DawidSkene;
pub use glad::Glad;
pub use gtm::Gtm;
pub use median::MedianBaseline;
pub use method::{TCrowdMethod, TruthMethod};
pub use minimax::MinimaxEntropy;
pub use mv::MajorityVoting;
pub use percolumn::PerColumnTCrowd;
pub use qasca::QascaPolicy;
pub use truthfinder::TruthFinder;
pub use zencrowd::ZenCrowd;
