//! Per-column T-Crowd — the ablation behind the paper's *central* claim.
//!
//! §1: *"applying a different approach for each column does not transfer the
//! knowledge from one datatype to the other, i.e., the estimation of worker
//! quality can be inaccurate due to data sparsity."*
//!
//! This baseline runs the full T-Crowd EM **independently on every column**:
//! same model, same optimiser, but worker `u` gets a separate quality
//! `φ_u^{(j)}` per column, fitted only from the answers in that column. Any
//! gap between this and the unified model is attributable purely to quality
//! *transfer* across columns — the paper's motivation in its cleanest
//! controlled form (stronger than `TC-onlyCate`/`TC-onlyCont`, which merely
//! drop the other datatype).

use crate::method::TruthMethod;
use tcrowd_core::TCrowd;
use tcrowd_tabular::{Answer, AnswerLog, CellId, Column, Schema, Value};

/// T-Crowd fitted independently per column (no cross-column quality
/// transfer).
#[derive(Debug, Default)]
pub struct PerColumnTCrowd {
    /// The model run on each single-column sub-table.
    pub model: TCrowd,
}

impl TruthMethod for PerColumnTCrowd {
    fn name(&self) -> &'static str {
        "TC-perColumn"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        let rows = answers.rows();
        let cols = answers.cols();
        let mut est: Vec<Vec<Value>> = vec![Vec::with_capacity(cols); rows];
        for j in 0..cols {
            // Single-column projection of the schema and the answer log.
            let sub_schema = Schema::new(
                schema.name.clone(),
                schema.key.clone(),
                vec![Column::new(schema.columns[j].name.clone(), schema.column_type(j).clone())],
            );
            let mut sub_answers = AnswerLog::new(rows, 1);
            for a in answers.all().iter().filter(|a| a.cell.col as usize == j) {
                sub_answers.push(Answer {
                    worker: a.worker,
                    cell: CellId::new(a.cell.row, 0),
                    value: a.value,
                });
            }
            let result = self.model.infer(&sub_schema, &sub_answers);
            for (i, row) in est.iter_mut().enumerate() {
                row.push(result.estimate(CellId::new(i as u32, 0)));
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::TCrowdMethod;
    use tcrowd_tabular::{evaluate, generate_dataset, GeneratorConfig};

    #[test]
    fn produces_full_type_correct_tables() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 20,
                columns: 5,
                categorical_ratio: 0.4,
                num_workers: 12,
                answers_per_task: 3,
                ..Default::default()
            },
            1,
        );
        let est = PerColumnTCrowd::default().estimate(&d.schema, &d.answers);
        assert_eq!(est.len(), 20);
        for row in &est {
            assert_eq!(row.len(), 5);
            for (j, v) in row.iter().enumerate() {
                assert!(d.schema.column_type(j).accepts(v));
            }
        }
    }

    #[test]
    fn unified_model_beats_per_column_on_sparse_answers() {
        // The paper's core claim: with few answers per column, per-column
        // quality estimates are noisy and the unified model wins on average.
        let mut unified_err = 0.0;
        let mut percol_err = 0.0;
        let mut unified_mnad = 0.0;
        let mut percol_mnad = 0.0;
        let reps = 4;
        for seed in 0..reps {
            let d = generate_dataset(
                &GeneratorConfig {
                    rows: 30,
                    columns: 8,
                    categorical_ratio: 0.5,
                    num_workers: 25,
                    answers_per_task: 3, // sparse: ~3 answers per worker-column
                    ..Default::default()
                },
                seed,
            );
            let u = evaluate(
                &d.schema,
                &d.truth,
                &TCrowdMethod::full().estimate(&d.schema, &d.answers),
            );
            let p = evaluate(
                &d.schema,
                &d.truth,
                &PerColumnTCrowd::default().estimate(&d.schema, &d.answers),
            );
            unified_err += u.error_rate.unwrap();
            percol_err += p.error_rate.unwrap();
            unified_mnad += u.mnad.unwrap();
            percol_mnad += p.mnad.unwrap();
        }
        let n = reps as f64;
        assert!(
            unified_err / n <= percol_err / n + 0.01,
            "unified ER {} should beat per-column {}",
            unified_err / n,
            percol_err / n
        );
        assert!(
            unified_mnad / n <= percol_mnad / n + 0.01,
            "unified MNAD {} should beat per-column {}",
            unified_mnad / n,
            percol_mnad / n
        );
    }

    #[test]
    fn equivalent_on_single_column_tables() {
        // With one column there is nothing to transfer: the two models
        // coincide exactly.
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 25,
                columns: 1,
                categorical_ratio: 1.0,
                num_workers: 10,
                answers_per_task: 4,
                ..Default::default()
            },
            5,
        );
        let unified = TCrowdMethod::full().estimate(&d.schema, &d.answers);
        let percol = PerColumnTCrowd::default().estimate(&d.schema, &d.answers);
        assert_eq!(unified, percol);
    }

    #[test]
    fn empty_log_is_handled() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 4,
                columns: 2,
                num_workers: 3,
                answers_per_task: 1,
                ..Default::default()
            },
            8,
        );
        let empty = AnswerLog::new(4, 2);
        let est = PerColumnTCrowd::default().estimate(&d.schema, &empty);
        assert_eq!(est.len(), 4);
    }
}
