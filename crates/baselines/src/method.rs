//! The common truth-inference interface and shared aggregation helpers.
//!
//! Every helper operates on the frozen columnar [`AnswerMatrix`]: a method's
//! `estimate` freezes the log once and every sweep after that walks
//! contiguous CSR slices — no per-call `HashMap` rebuilding, and per-column
//! fallbacks are computed in one payload pass instead of one full scan per
//! unanswered cell.

use tcrowd_core::TCrowd;
use tcrowd_stat::describe::median;
use tcrowd_tabular::{AnswerLog, AnswerMatrix, CellId, ColumnType, Schema, Value};

/// A truth-inference method: estimates every cell of the table from the
/// answer set (paper Definition 3).
pub trait TruthMethod {
    /// Display name (matches the rows of Table 7).
    fn name(&self) -> &'static str;

    /// Estimate the full table. Implementations must return an `N × M`
    /// matrix whose values match the schema's column types.
    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>>;
}

/// Mode of a label multiset: longest run after sorting wins, ties break to
/// the smallest label. `None` when empty.
fn label_mode(mut labels: Vec<u32>) -> Option<u32> {
    let first = *labels.first()?;
    labels.sort_unstable();
    let mut best = (first, 0usize);
    let mut run = (first, 0usize);
    for &l in &labels {
        if l == run.0 {
            run.1 += 1;
        } else {
            run = (l, 1);
        }
        if run.1 > best.1 {
            best = run;
        }
    }
    Some(best.0)
}

/// Mode of the categorical answers on one cell; ties break to the smallest
/// label; `None` when the cell has no answers.
pub(crate) fn cell_mode(matrix: &AnswerMatrix, cell: CellId) -> Option<u32> {
    label_mode(matrix.answer_labels()[matrix.cell_range(cell)].to_vec())
}

/// Median of the continuous answers on one cell; `None` when unanswered.
pub(crate) fn cell_median(matrix: &AnswerMatrix, cell: CellId) -> Option<f64> {
    let range = matrix.cell_range(cell);
    (!range.is_empty()).then(|| median(&matrix.answer_values()[range]))
}

/// Column-level fallbacks for unanswered cells, all columns in one payload
/// pass: global answer mode for categorical columns, global answer median
/// (or the domain midpoint) for continuous ones.
pub(crate) fn column_fallbacks(schema: &Schema, matrix: &AnswerMatrix) -> Vec<Value> {
    let m = matrix.cols();
    let mut cat: Vec<Vec<u32>> = vec![Vec::new(); m];
    let mut cont: Vec<Vec<f64>> = vec![Vec::new(); m];
    for k in 0..matrix.len() {
        let j = matrix.answer_cols()[k] as usize;
        if matrix.is_categorical(k) {
            cat[j].push(matrix.answer_labels()[k]);
        } else {
            cont[j].push(matrix.answer_values()[k]);
        }
    }
    (0..m)
        .map(|j| match schema.column_type(j) {
            ColumnType::Categorical { .. } => {
                Value::Categorical(label_mode(std::mem::take(&mut cat[j])).unwrap_or(0))
            }
            ColumnType::Continuous { min, max } => {
                let vals = &cont[j];
                Value::Continuous(if vals.is_empty() { 0.5 * (min + max) } else { median(vals) })
            }
        })
        .collect()
}

/// Per-column z-score parameters `(mean, std)` for every continuous column,
/// in one payload pass (`None` for categorical columns).
pub(crate) fn column_zscores(schema: &Schema, matrix: &AnswerMatrix) -> Vec<Option<(f64, f64)>> {
    let m = matrix.cols();
    let mut vals: Vec<Vec<f64>> = vec![Vec::new(); m];
    for k in 0..matrix.len() {
        if !matrix.is_categorical(k) {
            vals[matrix.answer_cols()[k] as usize].push(matrix.answer_values()[k]);
        }
    }
    (0..m)
        .map(|j| match schema.column_type(j) {
            ColumnType::Continuous { .. } => Some(tcrowd_stat::describe::zscore_params(&vals[j])),
            ColumnType::Categorical { .. } => None,
        })
        .collect()
}

/// Simple per-cell aggregation: mode for categorical cells, median for
/// continuous cells, with column fallbacks. Several baselines bootstrap
/// their truth estimates from this.
pub(crate) fn naive_estimates(schema: &Schema, matrix: &AnswerMatrix) -> Vec<Vec<Value>> {
    let fallbacks = column_fallbacks(schema, matrix);
    (0..matrix.rows() as u32)
        .map(|i| {
            (0..matrix.cols() as u32)
                .map(|j| {
                    let cell = CellId::new(i, j);
                    match schema.column_type(j as usize) {
                        ColumnType::Categorical { .. } => cell_mode(matrix, cell)
                            .map(Value::Categorical)
                            .unwrap_or_else(|| fallbacks[j as usize]),
                        ColumnType::Continuous { .. } => cell_median(matrix, cell)
                            .map(Value::Continuous)
                            .unwrap_or_else(|| fallbacks[j as usize]),
                    }
                })
                .collect()
        })
        .collect()
}

/// Adapter exposing the T-Crowd model (and its constrained variants) through
/// the common [`TruthMethod`] interface, so the benchmark harness can loop
/// over all Table 7 rows uniformly.
pub struct TCrowdMethod {
    /// The wrapped model.
    pub model: TCrowd,
    name: &'static str,
}

impl TCrowdMethod {
    /// Full T-Crowd.
    pub fn full() -> Self {
        TCrowdMethod { model: TCrowd::default_full(), name: "T-Crowd" }
    }

    /// `TC-onlyCate` (categorical columns only).
    pub fn only_categorical() -> Self {
        TCrowdMethod { model: TCrowd::only_categorical(), name: "TC-onlyCate" }
    }

    /// `TC-onlyCont` (continuous columns only).
    pub fn only_continuous() -> Self {
        TCrowdMethod { model: TCrowd::only_continuous(), name: "TC-onlyCont" }
    }
}

impl TruthMethod for TCrowdMethod {
    fn name(&self) -> &'static str {
        self.name
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        self.model.infer(schema, answers).estimates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{Answer, Column, WorkerId};

    fn tiny() -> (Schema, AnswerLog) {
        let schema = Schema::new(
            "t",
            "k",
            vec![
                Column::new("c", ColumnType::categorical_with_cardinality(3)),
                Column::new("x", ColumnType::Continuous { min: 0.0, max: 10.0 }),
            ],
        );
        let mut log = AnswerLog::new(2, 2);
        for (w, l) in [(0u32, 1u32), (1, 1), (2, 2)] {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, 0),
                value: Value::Categorical(l),
            });
        }
        for (w, x) in [(0u32, 2.0f64), (1, 4.0), (2, 9.0)] {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, 1),
                value: Value::Continuous(x),
            });
        }
        (schema, log)
    }

    #[test]
    fn cell_mode_and_median() {
        let (_, log) = tiny();
        let m = log.to_matrix();
        assert_eq!(cell_mode(&m, CellId::new(0, 0)), Some(1));
        assert_eq!(cell_mode(&m, CellId::new(1, 0)), None);
        assert_eq!(cell_median(&m, CellId::new(0, 1)), Some(4.0));
        assert_eq!(cell_median(&m, CellId::new(1, 1)), None);
    }

    #[test]
    fn cell_mode_tie_breaks_to_smallest_label() {
        let mut log = AnswerLog::new(1, 1);
        for (w, l) in [(0u32, 3u32), (1, 1), (2, 3), (3, 1)] {
            log.push(tcrowd_tabular::Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, 0),
                value: Value::Categorical(l),
            });
        }
        assert_eq!(cell_mode(&log.to_matrix(), CellId::new(0, 0)), Some(1));
    }

    #[test]
    fn naive_estimates_fill_unanswered_cells() {
        let (schema, log) = tiny();
        let est = naive_estimates(&schema, &log.to_matrix());
        assert_eq!(est[0][0], Value::Categorical(1));
        assert_eq!(est[0][1], Value::Continuous(4.0));
        // Row 1 has no answers: falls back to column-level aggregates.
        assert_eq!(est[1][0], Value::Categorical(1));
        assert_eq!(est[1][1], Value::Continuous(4.0));
    }

    #[test]
    fn fallback_uses_domain_middle_when_column_empty() {
        let (schema, _) = tiny();
        let empty = AnswerLog::new(2, 2).to_matrix();
        let f = column_fallbacks(&schema, &empty);
        assert_eq!(f[1], Value::Continuous(5.0));
        assert_eq!(f[0], Value::Categorical(0));
    }

    #[test]
    fn tcrowd_method_names() {
        assert_eq!(TCrowdMethod::full().name(), "T-Crowd");
        assert_eq!(TCrowdMethod::only_categorical().name(), "TC-onlyCate");
        assert_eq!(TCrowdMethod::only_continuous().name(), "TC-onlyCont");
    }
}
