//! The common truth-inference interface and shared aggregation helpers.

use std::collections::HashMap;
use tcrowd_core::TCrowd;
use tcrowd_stat::describe::median;
use tcrowd_tabular::{AnswerLog, CellId, ColumnType, Schema, Value};

/// A truth-inference method: estimates every cell of the table from the
/// answer set (paper Definition 3).
pub trait TruthMethod {
    /// Display name (matches the rows of Table 7).
    fn name(&self) -> &'static str;

    /// Estimate the full table. Implementations must return an `N × M`
    /// matrix whose values match the schema's column types.
    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>>;
}

/// Mode of the categorical answers on one cell; ties break to the smallest
/// label; `None` when the cell has no answers.
pub(crate) fn cell_mode(answers: &AnswerLog, cell: CellId) -> Option<u32> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for a in answers.for_cell(cell) {
        *counts.entry(a.value.expect_categorical()).or_default() += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(label, _)| label)
}

/// Median of the continuous answers on one cell; `None` when unanswered.
pub(crate) fn cell_median(answers: &AnswerLog, cell: CellId) -> Option<f64> {
    let vals: Vec<f64> = answers
        .for_cell(cell)
        .map(|a| a.value.expect_continuous())
        .collect();
    (!vals.is_empty()).then(|| median(&vals))
}

/// Column-level fallback for unanswered cells: global answer mode for
/// categorical columns, global answer median (or the domain midpoint) for
/// continuous ones.
pub(crate) fn column_fallback(schema: &Schema, answers: &AnswerLog, j: usize) -> Value {
    match schema.column_type(j) {
        ColumnType::Categorical { .. } => {
            let mut counts: HashMap<u32, usize> = HashMap::new();
            for a in answers.all().iter().filter(|a| a.cell.col as usize == j) {
                *counts.entry(a.value.expect_categorical()).or_default() += 1;
            }
            Value::Categorical(
                counts
                    .into_iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                    .map(|(l, _)| l)
                    .unwrap_or(0),
            )
        }
        ColumnType::Continuous { min, max } => {
            let vals: Vec<f64> = answers
                .all()
                .iter()
                .filter(|a| a.cell.col as usize == j)
                .map(|a| a.value.expect_continuous())
                .collect();
            Value::Continuous(if vals.is_empty() { 0.5 * (min + max) } else { median(&vals) })
        }
    }
}

/// Per-column z-score parameters `(mean, std)` from the answers (std floored).
pub(crate) fn column_zscore(answers: &AnswerLog, j: usize) -> (f64, f64) {
    let vals: Vec<f64> = answers
        .all()
        .iter()
        .filter(|a| a.cell.col as usize == j)
        .map(|a| a.value.expect_continuous())
        .collect();
    tcrowd_stat::describe::zscore_params(&vals)
}

/// Simple per-cell aggregation: mode for categorical cells, median for
/// continuous cells, with column fallbacks. Several baselines bootstrap
/// their truth estimates from this.
pub(crate) fn naive_estimates(schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
    (0..answers.rows() as u32)
        .map(|i| {
            (0..answers.cols() as u32)
                .map(|j| {
                    let cell = CellId::new(i, j);
                    match schema.column_type(j as usize) {
                        ColumnType::Categorical { .. } => cell_mode(answers, cell)
                            .map(Value::Categorical)
                            .unwrap_or_else(|| column_fallback(schema, answers, j as usize)),
                        ColumnType::Continuous { .. } => cell_median(answers, cell)
                            .map(Value::Continuous)
                            .unwrap_or_else(|| column_fallback(schema, answers, j as usize)),
                    }
                })
                .collect()
        })
        .collect()
}

/// Adapter exposing the T-Crowd model (and its constrained variants) through
/// the common [`TruthMethod`] interface, so the benchmark harness can loop
/// over all Table 7 rows uniformly.
pub struct TCrowdMethod {
    /// The wrapped model.
    pub model: TCrowd,
    name: &'static str,
}

impl TCrowdMethod {
    /// Full T-Crowd.
    pub fn full() -> Self {
        TCrowdMethod { model: TCrowd::default_full(), name: "T-Crowd" }
    }

    /// `TC-onlyCate` (categorical columns only).
    pub fn only_categorical() -> Self {
        TCrowdMethod { model: TCrowd::only_categorical(), name: "TC-onlyCate" }
    }

    /// `TC-onlyCont` (continuous columns only).
    pub fn only_continuous() -> Self {
        TCrowdMethod { model: TCrowd::only_continuous(), name: "TC-onlyCont" }
    }
}

impl TruthMethod for TCrowdMethod {
    fn name(&self) -> &'static str {
        self.name
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        self.model.infer(schema, answers).estimates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{Answer, Column, WorkerId};

    fn tiny() -> (Schema, AnswerLog) {
        let schema = Schema::new(
            "t",
            "k",
            vec![
                Column::new("c", ColumnType::categorical_with_cardinality(3)),
                Column::new("x", ColumnType::Continuous { min: 0.0, max: 10.0 }),
            ],
        );
        let mut log = AnswerLog::new(2, 2);
        for (w, l) in [(0u32, 1u32), (1, 1), (2, 2)] {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, 0),
                value: Value::Categorical(l),
            });
        }
        for (w, x) in [(0u32, 2.0f64), (1, 4.0), (2, 9.0)] {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, 1),
                value: Value::Continuous(x),
            });
        }
        (schema, log)
    }

    #[test]
    fn cell_mode_and_median() {
        let (_, log) = tiny();
        assert_eq!(cell_mode(&log, CellId::new(0, 0)), Some(1));
        assert_eq!(cell_mode(&log, CellId::new(1, 0)), None);
        assert_eq!(cell_median(&log, CellId::new(0, 1)), Some(4.0));
        assert_eq!(cell_median(&log, CellId::new(1, 1)), None);
    }

    #[test]
    fn naive_estimates_fill_unanswered_cells() {
        let (schema, log) = tiny();
        let est = naive_estimates(&schema, &log);
        assert_eq!(est[0][0], Value::Categorical(1));
        assert_eq!(est[0][1], Value::Continuous(4.0));
        // Row 1 has no answers: falls back to column-level aggregates.
        assert_eq!(est[1][0], Value::Categorical(1));
        assert_eq!(est[1][1], Value::Continuous(4.0));
    }

    #[test]
    fn fallback_uses_domain_middle_when_column_empty() {
        let (schema, _) = tiny();
        let empty = AnswerLog::new(2, 2);
        assert_eq!(column_fallback(&schema, &empty, 1), Value::Continuous(5.0));
        assert_eq!(column_fallback(&schema, &empty, 0), Value::Categorical(0));
    }

    #[test]
    fn tcrowd_method_names() {
        assert_eq!(TCrowdMethod::full().name(), "T-Crowd");
        assert_eq!(TCrowdMethod::only_categorical().name(), "TC-onlyCate");
        assert_eq!(TCrowdMethod::only_continuous().name(), "TC-onlyCont");
    }
}
