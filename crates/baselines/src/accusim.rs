//! Accu / AccuSim truth discovery (paper ref \[12\]: Dong, Berti-Équille,
//! Srivastava — *Integrating conflicting data: the role of source
//! dependence*, PVLDB 2009).
//!
//! The Accu model treats each worker as a *source* with accuracy `A_u` and
//! scores each candidate value `v` of a cell by the Bayesian vote
//!
//! ```text
//! σ(v) = Σ_{u: a_u = v} ln( n·A_u / (1 − A_u) )
//! ```
//!
//! where `n` is the number of false values in the domain; the posterior is
//! the softmax of the scores and accuracies are re-estimated as the mean
//! posterior probability of each worker's claims, iterating to a fixed
//! point. **AccuSim** additionally propagates votes between *similar*
//! values — essential for continuous attributes, where two answers are
//! rarely identical but often mutually supporting: `σ*(v) = σ(v) +
//! ρ·Σ_{v'} σ(v')·sim(v, v')` with a Gaussian similarity kernel whose
//! bandwidth is a fraction of the column's answer spread.
//!
//! The candidate set of a cell is the set of distinct values answered for
//! it, as in the original web-source setting.

use crate::method::{column_fallbacks, TruthMethod};
use std::collections::HashMap;
use tcrowd_stat::{clamp_prob, describe::zscore_params, EPS};
use tcrowd_tabular::{AnswerLog, CellId, ColumnType, Schema, Value, WorkerId};

/// Accu / AccuSim estimator.
#[derive(Debug, Clone, Copy)]
pub struct Accu {
    /// Fixed-point iterations.
    pub max_iters: usize,
    /// Enable the similarity extension (AccuSim); without it exact-match
    /// votes only.
    pub similarity: bool,
    /// Similarity propagation strength `ρ`.
    pub rho: f64,
    /// Gaussian kernel bandwidth for continuous similarity, as a fraction
    /// of the column's answer standard deviation.
    pub bandwidth_frac: f64,
    /// Assumed number of false values per domain (`n` in the vote formula)
    /// when the schema does not pin the cardinality (continuous columns).
    pub default_n_false: f64,
}

impl Default for Accu {
    fn default() -> Self {
        Accu {
            max_iters: 20,
            similarity: true,
            rho: 0.8,
            bandwidth_frac: 0.15,
            default_n_false: 10.0,
        }
    }
}

impl Accu {
    /// Exact-match Accu (no similarity propagation).
    pub fn exact() -> Self {
        Accu { similarity: false, ..Default::default() }
    }
}

/// A cell's candidate values and who voted for each.
struct Candidates {
    values: Vec<Value>,
    /// Voter lists parallel to `values`.
    voters: Vec<Vec<WorkerId>>,
    /// Pairwise similarity, row-major (identity when similarity is off).
    sim: Vec<f64>,
}

fn value_key(v: &Value) -> (u32, u64) {
    match v {
        Value::Categorical(l) => (0, *l as u64),
        Value::Continuous(x) => (1, x.to_bits()),
    }
}

fn build_candidates(
    answers: &AnswerLog,
    cell: CellId,
    kernel: Option<f64>, // bandwidth for continuous similarity
) -> Option<Candidates> {
    let mut index: HashMap<(u32, u64), usize> = HashMap::new();
    let mut values: Vec<Value> = Vec::new();
    let mut voters: Vec<Vec<WorkerId>> = Vec::new();
    for a in answers.for_cell(cell) {
        let k = value_key(&a.value);
        let slot = *index.entry(k).or_insert_with(|| {
            values.push(a.value);
            voters.push(Vec::new());
            values.len() - 1
        });
        voters[slot].push(a.worker);
    }
    if values.is_empty() {
        return None;
    }
    let n = values.len();
    let mut sim = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue; // self-similarity handled by the base vote
            }
            sim[i * n + j] = match (kernel, &values[i], &values[j]) {
                (Some(h), Value::Continuous(a), Value::Continuous(b)) => {
                    let d = (a - b) / h.max(EPS);
                    (-0.5 * d * d).exp()
                }
                _ => 0.0, // categorical: distinct labels share nothing
            };
        }
    }
    Some(Candidates { values, voters, sim })
}

impl TruthMethod for Accu {
    fn name(&self) -> &'static str {
        if self.similarity {
            "AccuSim"
        } else {
            "Accu"
        }
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        let rows = answers.rows();
        let cols = answers.cols();

        // Per-column false-value counts and similarity bandwidths.
        let n_false: Vec<f64> = (0..cols)
            .map(|j| match schema.column_type(j) {
                ColumnType::Categorical { labels } => (labels.len().max(2) - 1) as f64,
                ColumnType::Continuous { .. } => self.default_n_false,
            })
            .collect();
        let bandwidth: Vec<Option<f64>> = (0..cols)
            .map(|j| match schema.column_type(j) {
                ColumnType::Continuous { .. } if self.similarity => {
                    let (_, std) = zscore_params(
                        &answers
                            .all()
                            .iter()
                            .filter(|a| a.cell.col as usize == j)
                            .map(|a| a.value.expect_continuous())
                            .collect::<Vec<_>>(),
                    );
                    Some((self.bandwidth_frac * std).max(EPS))
                }
                _ => None,
            })
            .collect();

        // Candidate structures for every answered cell.
        let mut cells: Vec<(CellId, Candidates)> = Vec::new();
        for i in 0..rows as u32 {
            for j in 0..cols as u32 {
                let cell = CellId::new(i, j);
                if let Some(c) = build_candidates(answers, cell, bandwidth[j as usize]) {
                    cells.push((cell, c));
                }
            }
        }

        let mut accuracy: HashMap<WorkerId, f64> = answers.workers().map(|w| (w, 0.8)).collect();
        let mut posteriors: Vec<Vec<f64>> =
            cells.iter().map(|(_, c)| vec![1.0 / c.values.len() as f64; c.values.len()]).collect();

        for _ in 0..self.max_iters {
            // ---- Value scores and posteriors under current accuracies.
            for ((cell, c), post) in cells.iter().zip(posteriors.iter_mut()) {
                let nf = n_false[cell.col as usize];
                let base: Vec<f64> = c
                    .voters
                    .iter()
                    .map(|vs| {
                        vs.iter()
                            .map(|w| {
                                let a = clamp_prob(accuracy[w]);
                                (nf * a / (1.0 - a)).ln()
                            })
                            .sum::<f64>()
                    })
                    .collect();
                let n = c.values.len();
                let scored: Vec<f64> = (0..n)
                    .map(|i| {
                        let prop: f64 = if self.similarity {
                            (0..n).map(|j| base[j] * c.sim[i * n + j]).sum()
                        } else {
                            0.0
                        };
                        base[i] + self.rho * prop
                    })
                    .collect();
                let m = scored.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let exps: Vec<f64> = scored.iter().map(|&s| (s - m).exp()).collect();
                let total: f64 = exps.iter().sum();
                post.iter_mut().zip(exps).for_each(|(p, e)| *p = e / total);
            }

            // ---- Accuracy update: mean posterior of each worker's claims.
            let mut mass: HashMap<WorkerId, f64> = HashMap::new();
            let mut count: HashMap<WorkerId, usize> = HashMap::new();
            for ((_, c), post) in cells.iter().zip(&posteriors) {
                for (slot, vs) in c.voters.iter().enumerate() {
                    for w in vs {
                        *mass.entry(*w).or_default() += post[slot];
                        *count.entry(*w).or_default() += 1;
                    }
                }
            }
            for (w, a) in accuracy.iter_mut() {
                if let (Some(m), Some(&n)) = (mass.get(w), count.get(w)) {
                    // Add-one smoothing keeps accuracies off the boundary.
                    *a = clamp_prob((m + 0.8) / (n as f64 + 1.0));
                }
            }
        }

        // ---- Read out the table.
        let fallbacks = column_fallbacks(schema, &answers.to_matrix());
        let mut est: Vec<Vec<Value>> =
            (0..rows).map(|_| (0..cols).map(|j| fallbacks[j]).collect()).collect();
        for ((cell, c), post) in cells.iter().zip(&posteriors) {
            let best = post
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN posterior"))
                .map(|(i, _)| i)
                .expect("non-empty candidates");
            est[cell.row as usize][cell.col as usize] = c.values[best];
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{evaluate, generate_dataset, Answer, Column, GeneratorConfig};

    fn cat_schema(l: u32) -> Schema {
        Schema::new("t", "k", vec![Column::new("c", ColumnType::categorical_with_cardinality(l))])
    }

    #[test]
    fn unanimous_cell_is_recovered() {
        let schema = cat_schema(4);
        let mut log = AnswerLog::new(1, 1);
        for w in 0..3u32 {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, 0),
                value: Value::Categorical(3),
            });
        }
        let est = Accu::default().estimate(&schema, &log);
        assert_eq!(est[0][0], Value::Categorical(3));
    }

    #[test]
    fn accurate_worker_outweighs_two_spammers() {
        // Worker 0 is right on many cells where the majority agrees, so Accu
        // should learn to trust them on the contested cell.
        let schema = cat_schema(2);
        let rows = 10u32;
        let mut log = AnswerLog::new(rows as usize, 1);
        for i in 0..rows - 1 {
            for w in 0..3u32 {
                log.push(Answer {
                    worker: WorkerId(w),
                    cell: CellId::new(i, 0),
                    value: Value::Categorical(0),
                });
            }
            // Spammers 3 and 4 disagree with everyone.
            for w in 3..5u32 {
                log.push(Answer {
                    worker: WorkerId(w),
                    cell: CellId::new(i, 0),
                    value: Value::Categorical(1),
                });
            }
        }
        // Contested last cell: trusted worker 0 vs the two spammers.
        log.push(Answer {
            worker: WorkerId(0),
            cell: CellId::new(rows - 1, 0),
            value: Value::Categorical(0),
        });
        for w in 3..5u32 {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(rows - 1, 0),
                value: Value::Categorical(1),
            });
        }
        let est = Accu::default().estimate(&schema, &log);
        assert_eq!(
            est[rows as usize - 1][0],
            Value::Categorical(0),
            "the reliable worker should outvote two discredited ones"
        );
    }

    #[test]
    fn similarity_groups_close_continuous_answers() {
        // Three scattered-but-close answers against one far outlier answered
        // twice: exact Accu sees 1-1-1-2 votes and picks the outlier; AccuSim
        // lets the close answers support each other.
        let schema = Schema::new(
            "t",
            "k",
            vec![Column::new("x", ColumnType::Continuous { min: 0.0, max: 100.0 })],
        );
        let mut log = AnswerLog::new(1, 1);
        for (w, x) in [(0u32, 49.0f64), (1, 50.0), (2, 51.0), (3, 90.0), (4, 90.0)] {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(0, 0),
                value: Value::Continuous(x),
            });
        }
        let exact = Accu::exact().estimate(&schema, &log);
        let sim = Accu::default().estimate(&schema, &log);
        assert_eq!(exact[0][0], Value::Continuous(90.0));
        let got = sim[0][0].expect_continuous();
        assert!((49.0..=51.0).contains(&got), "AccuSim should pick a clustered answer, got {got}");
    }

    #[test]
    fn competitive_with_majority_voting_on_synthetic() {
        use crate::mv::MajorityVoting;
        let mut accu_err = 0.0;
        let mut mv_err = 0.0;
        for seed in 0..3 {
            let d = generate_dataset(
                &GeneratorConfig {
                    rows: 40,
                    columns: 4,
                    categorical_ratio: 1.0,
                    num_workers: 20,
                    answers_per_task: 5,
                    ..Default::default()
                },
                seed + 100,
            );
            let a = evaluate(&d.schema, &d.truth, &Accu::default().estimate(&d.schema, &d.answers));
            let mv = evaluate(&d.schema, &d.truth, &MajorityVoting.estimate(&d.schema, &d.answers));
            accu_err += a.error_rate.unwrap();
            mv_err += mv.error_rate.unwrap();
        }
        assert!(accu_err <= mv_err + 0.02 * 3.0, "Accu {} vs MV {}", accu_err / 3.0, mv_err / 3.0);
    }

    #[test]
    fn mixed_table_produces_type_correct_values() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 15,
                columns: 4,
                categorical_ratio: 0.5,
                num_workers: 10,
                answers_per_task: 3,
                ..Default::default()
            },
            7,
        );
        let est = Accu::default().estimate(&d.schema, &d.answers);
        for (i, row) in est.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert!(
                    d.schema.column_type(j).accepts(v),
                    "cell ({i},{j}) produced a type-mismatched value"
                );
            }
        }
    }

    #[test]
    fn empty_log_falls_back() {
        let schema = cat_schema(2);
        let log = AnswerLog::new(2, 1);
        let est = Accu::default().estimate(&schema, &log);
        assert_eq!(est.len(), 2);
    }
}
