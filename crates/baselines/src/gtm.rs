//! GTM (paper ref \[37\]) — the Gaussian Truth Model for continuous data.
//!
//! Per continuous column (independently — no cross-column transfer): truths
//! have a Gaussian prior, each worker has a per-column variance `σ²_u`, and
//! EM alternates between posterior truth estimates and variance updates.
//! Answers are z-scored per column so the unit prior is calibrated.

#![allow(clippy::needless_range_loop)] // index loops here walk several parallel arrays
use crate::method::{column_zscores, naive_estimates, TruthMethod};
use tcrowd_tabular::{AnswerLog, AnswerMatrix, CellId, ColumnType, Schema, Value};

/// GTM estimator (per-column fits).
#[derive(Debug, Clone, Copy)]
pub struct Gtm {
    /// EM iterations.
    pub max_iters: usize,
    /// Pseudo-observation strength pulling worker variances toward
    /// `prior_variance` (prevents the variance-collapse spiral on workers
    /// with few answers).
    pub prior_weight: f64,
    /// Centre of the worker-variance prior (z-scored units).
    pub prior_variance: f64,
}

impl Default for Gtm {
    fn default() -> Self {
        Gtm { max_iters: 30, prior_weight: 2.0, prior_variance: 0.3 }
    }
}

impl Gtm {
    /// Fit one column; returns the posterior mean per row (z-scored).
    fn fit_column(&self, matrix: &AnswerMatrix, col: u32, zs: (f64, f64)) -> Vec<Option<f64>> {
        let n = matrix.rows();
        let (zm, zsd) = zs;
        // (row, worker dense idx, z-scored value) via the column's CSR
        // slices; triples arrive row-grouped so the E-step streams each
        // cell's posterior without a per-row observation buffer.
        let mut triples: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..n as u32 {
            for k in matrix.cell_range(CellId::new(i, col)) {
                triples.push((
                    i as usize,
                    matrix.answer_workers()[k] as usize,
                    (matrix.answer_values()[k] - zm) / zsd,
                ));
            }
        }
        let n_workers = matrix.num_workers();
        let mut var = vec![self.prior_variance; n_workers];
        let mut sums_ss = vec![0.0f64; n_workers];
        let mut sums_n = vec![0.0f64; n_workers];
        let mut means: Vec<Option<f64>> = vec![None; n];
        let mut post_var: Vec<f64> = vec![1.0; n];
        for _ in 0..self.max_iters {
            // E-step: Gaussian posterior per cell (prior N(0,1) in z-space),
            // streamed over the row-grouped triples.
            let mut t = 0;
            while t < triples.len() {
                let i = triples[t].0;
                let mut prec = 1.0;
                let mut weighted = 0.0;
                let mut end = t;
                while end < triples.len() && triples[end].0 == i {
                    let (_, w, x) = triples[end];
                    let v = tcrowd_stat::clamp_var(var[w]);
                    prec += 1.0 / v;
                    weighted += x / v;
                    end += 1;
                }
                let v = 1.0 / prec;
                means[i] = Some(weighted * v);
                post_var[i] = v;
                t = end;
            }
            // M-step: worker variances with prior pseudo-observations.
            sums_ss.iter_mut().for_each(|v| *v = 0.0);
            sums_n.iter_mut().for_each(|v| *v = 0.0);
            for &(i, w, x) in &triples {
                if let Some(m) = means[i] {
                    let d = x - m;
                    sums_ss[w] += d * d + post_var[i];
                    sums_n[w] += 1.0;
                }
            }
            for w in 0..n_workers {
                var[w] = ((sums_ss[w] + self.prior_weight * self.prior_variance)
                    / (sums_n[w] + self.prior_weight))
                    .max(tcrowd_stat::EPS);
            }
        }
        means
    }
}

impl TruthMethod for Gtm {
    fn name(&self) -> &'static str {
        "GTM"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        let matrix = AnswerMatrix::build(answers);
        let mut est = naive_estimates(schema, &matrix);
        let zscales = column_zscores(schema, &matrix);
        for j in 0..schema.num_columns() {
            if let ColumnType::Continuous { .. } = schema.column_type(j) {
                let zs = zscales[j].expect("continuous column scaler");
                let means = self.fit_column(&matrix, j as u32, zs);
                for (i, m) in means.iter().enumerate() {
                    if let Some(z) = m {
                        est[i][j] = Value::Continuous(zs.0 + zs.1 * z);
                    }
                }
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::median::MedianBaseline;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerQualityConfig};

    #[test]
    fn gtm_beats_median_with_spammers() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 100,
                columns: 3,
                categorical_ratio: 0.0,
                num_workers: 16,
                answers_per_task: 5,
                quality: WorkerQualityConfig {
                    median_phi: 0.15,
                    sigma_ln_phi: 1.0,
                    spammer_fraction: 0.25,
                    spammer_factor: 40.0,
                },
                ..Default::default()
            },
            3,
        );
        let gtm = Gtm::default().estimate(&d.schema, &d.answers);
        let med = MedianBaseline.estimate(&d.schema, &d.answers);
        let ge = tcrowd_tabular::evaluate(&d.schema, &d.truth, &gtm).mnad.unwrap();
        let me = tcrowd_tabular::evaluate(&d.schema, &d.truth, &med).mnad.unwrap();
        assert!(ge < me, "GTM {ge} vs Median {me}");
    }

    #[test]
    fn estimates_in_reasonable_range() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 30,
                columns: 2,
                categorical_ratio: 0.0,
                num_workers: 10,
                answers_per_task: 4,
                ..Default::default()
            },
            7,
        );
        let est = Gtm::default().estimate(&d.schema, &d.answers);
        for row in &est {
            for v in row {
                let x = v.expect_continuous();
                assert!(x.is_finite());
                assert!((-2000.0..4000.0).contains(&x), "estimate {x} way out of range");
            }
        }
    }
}
