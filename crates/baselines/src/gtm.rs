//! GTM (paper ref \[37\]) — the Gaussian Truth Model for continuous data.
//!
//! Per continuous column (independently — no cross-column transfer): truths
//! have a Gaussian prior, each worker has a per-column variance `σ²_u`, and
//! EM alternates between posterior truth estimates and variance updates.
//! Answers are z-scored per column so the unit prior is calibrated.

#![allow(clippy::needless_range_loop)] // index loops here walk several parallel arrays
use crate::method::{column_zscore, naive_estimates, TruthMethod};
use std::collections::HashMap;
use tcrowd_stat::normal::Normal;
use tcrowd_tabular::{AnswerLog, ColumnType, Schema, Value, WorkerId};

/// GTM estimator (per-column fits).
#[derive(Debug, Clone, Copy)]
pub struct Gtm {
    /// EM iterations.
    pub max_iters: usize,
    /// Pseudo-observation strength pulling worker variances toward
    /// `prior_variance` (prevents the variance-collapse spiral on workers
    /// with few answers).
    pub prior_weight: f64,
    /// Centre of the worker-variance prior (z-scored units).
    pub prior_variance: f64,
}

impl Default for Gtm {
    fn default() -> Self {
        Gtm { max_iters: 30, prior_weight: 2.0, prior_variance: 0.3 }
    }
}

impl Gtm {
    /// Fit one column; returns the posterior mean per row (z-scored).
    fn fit_column(&self, answers: &AnswerLog, col: u32, zs: (f64, f64)) -> Vec<Option<f64>> {
        let n = answers.rows();
        let (zm, zsd) = zs;
        let mut triples: Vec<(usize, WorkerId, f64)> = Vec::new();
        for a in answers.all().iter().filter(|a| a.cell.col == col) {
            triples.push((
                a.cell.row as usize,
                a.worker,
                (a.value.expect_continuous() - zm) / zsd,
            ));
        }
        let mut var: HashMap<WorkerId, f64> = HashMap::new();
        for &(_, w, _) in &triples {
            var.insert(w, self.prior_variance);
        }
        let mut means: Vec<Option<f64>> = vec![None; n];
        let mut post_var: Vec<f64> = vec![1.0; n];
        for _ in 0..self.max_iters {
            // E-step: Gaussian posterior per cell (prior N(0,1) in z-space).
            let mut obs: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n];
            for &(i, w, x) in &triples {
                obs[i].push((x, var[&w]));
            }
            for (i, o) in obs.iter().enumerate() {
                if o.is_empty() {
                    continue;
                }
                let post = Normal::STANDARD.posterior_with_observations(o);
                means[i] = Some(post.mean);
                post_var[i] = post.var;
            }
            // M-step: worker variances with prior pseudo-observations.
            let mut sums: HashMap<WorkerId, (f64, f64)> = HashMap::new();
            for &(i, w, x) in &triples {
                if let Some(m) = means[i] {
                    let d = x - m;
                    let e = sums.entry(w).or_default();
                    e.0 += d * d + post_var[i];
                    e.1 += 1.0;
                }
            }
            for (w, v) in var.iter_mut() {
                let (ss, cnt) = sums.get(w).copied().unwrap_or((0.0, 0.0));
                *v = ((ss + self.prior_weight * self.prior_variance)
                    / (cnt + self.prior_weight))
                    .max(tcrowd_stat::EPS);
            }
        }
        means
    }
}

impl TruthMethod for Gtm {
    fn name(&self) -> &'static str {
        "GTM"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        let mut est = naive_estimates(schema, answers);
        for j in 0..schema.num_columns() {
            if let ColumnType::Continuous { .. } = schema.column_type(j) {
                let zs = column_zscore(answers, j);
                let means = self.fit_column(answers, j as u32, zs);
                for (i, m) in means.iter().enumerate() {
                    if let Some(z) = m {
                        est[i][j] = Value::Continuous(zs.0 + zs.1 * z);
                    }
                }
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::median::MedianBaseline;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerQualityConfig};

    #[test]
    fn gtm_beats_median_with_spammers() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 100,
                columns: 3,
                categorical_ratio: 0.0,
                num_workers: 16,
                answers_per_task: 5,
                quality: WorkerQualityConfig {
                    median_phi: 0.15,
                    sigma_ln_phi: 1.0,
                    spammer_fraction: 0.25,
                    spammer_factor: 40.0,
                },
                ..Default::default()
            },
            3,
        );
        let gtm = Gtm::default().estimate(&d.schema, &d.answers);
        let med = MedianBaseline.estimate(&d.schema, &d.answers);
        let ge = tcrowd_tabular::evaluate(&d.schema, &d.truth, &gtm).mnad.unwrap();
        let me = tcrowd_tabular::evaluate(&d.schema, &d.truth, &med).mnad.unwrap();
        assert!(ge < me, "GTM {ge} vs Median {me}");
    }

    #[test]
    fn estimates_in_reasonable_range() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 30,
                columns: 2,
                categorical_ratio: 0.0,
                num_workers: 10,
                answers_per_task: 4,
                ..Default::default()
            },
            7,
        );
        let est = Gtm::default().estimate(&d.schema, &d.answers);
        for row in &est {
            for v in row {
                let x = v.expect_continuous();
                assert!(x.is_finite());
                assert!((-2000.0..4000.0).contains(&x), "estimate {x} way out of range");
            }
        }
    }
}
