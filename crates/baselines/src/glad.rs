//! GLAD (paper ref \[33\]) — worker ability × task difficulty, categorical.
//!
//! `P(correct) = σ(a_u · b_t)` where `a_u` is the worker's ability and
//! `b_t > 0` the task's discriminability (inverse difficulty); wrong answers
//! are uniform over the remaining labels (the standard multi-class
//! generalisation of Whitehill et al.'s binary model). Fitted per categorical
//! column with EM; the M-step is gradient ascent on the expected
//! log-likelihood, reusing the workspace optimizer.

#![allow(clippy::needless_range_loop)] // index loops here walk several parallel arrays
use crate::method::{naive_estimates, TruthMethod};
use tcrowd_stat::clamp_prob;
use tcrowd_stat::optimize::{gradient_ascent, AscentOptions};
use tcrowd_tabular::{AnswerLog, AnswerMatrix, CellId, ColumnType, Schema, Value};

/// GLAD estimator (per-column fits).
#[derive(Debug, Clone, Copy)]
pub struct Glad {
    /// Outer EM iterations.
    pub max_iters: usize,
    /// Gaussian prior strength on abilities and log-discriminabilities.
    pub prior_strength: f64,
}

impl Default for Glad {
    fn default() -> Self {
        Glad { max_iters: 15, prior_strength: 1.0 }
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl Glad {
    fn fit_column(&self, matrix: &AnswerMatrix, col: u32, l: usize) -> Vec<Vec<f64>> {
        let n = matrix.rows();
        // (row, worker_idx, label) per answer, via the by-cell CSR slices of
        // this column; workers are compacted to a column-local index so the
        // optimiser only carries abilities for this column's workers.
        let mut remap = vec![u32::MAX; matrix.num_workers()];
        let mut nu = 0usize;
        let mut triples: Vec<(usize, usize, usize)> = Vec::new();
        for i in 0..n as u32 {
            for k in matrix.cell_range(CellId::new(i, col)) {
                let g = matrix.answer_workers()[k] as usize;
                if remap[g] == u32::MAX {
                    remap[g] = nu as u32;
                    nu += 1;
                }
                triples.push((i as usize, remap[g] as usize, matrix.answer_labels()[k] as usize));
            }
        }

        // Posterior init from vote shares.
        let mut posterior = vec![vec![0.0f64; l]; n];
        let mut counts = vec![0usize; n];
        for &(i, _, a) in &triples {
            posterior[i][a] += 1.0;
            counts[i] += 1;
        }
        for (i, row) in posterior.iter_mut().enumerate() {
            if counts[i] == 0 {
                row.iter_mut().for_each(|p| *p = 1.0 / l as f64);
            } else {
                row.iter_mut().for_each(|p| *p /= counts[i] as f64);
            }
        }

        // Parameters: abilities a_u (init 1.0) and ln b_t (init 0.0).
        let mut params = vec![1.0; nu];
        params.extend(vec![0.0; n]);
        let lam = self.prior_strength;

        for _ in 0..self.max_iters {
            // Cache p_correct per answer.
            let pc: Vec<f64> =
                triples.iter().map(|&(i, _, a)| clamp_prob(posterior[i][a])).collect();
            let objective = |x: &[f64]| -> (f64, Vec<f64>) {
                let (ab, lnb) = x.split_at(nu);
                let mut val = 0.0;
                let mut grad = vec![0.0; x.len()];
                for (t, &(i, u, _)) in triples.iter().enumerate() {
                    let b = lnb[i].clamp(-8.0, 8.0).exp();
                    let s = clamp_prob(sigmoid(ab[u] * b));
                    let p = pc[t];
                    val += p * s.ln() + (1.0 - p) * ((1.0 - s) / (l.max(2) - 1) as f64).ln();
                    // d/dx [p ln σ + (1-p) ln(1-σ)] with σ = σ(a·b):
                    // = (p − σ) · d(a·b)/dx.
                    let common = p - s;
                    grad[u] += common * b;
                    grad[nu + i] += common * ab[u] * b; // d(a·b)/d ln b = a·b
                }
                // Priors: a_u ~ N(1, 1/λ), ln b ~ N(0, 1/λ).
                for (u, &a) in ab.iter().enumerate() {
                    val -= 0.5 * lam * (a - 1.0) * (a - 1.0);
                    grad[u] -= lam * (a - 1.0);
                }
                for (i, &v) in lnb.iter().enumerate() {
                    val -= 0.5 * lam * v * v;
                    grad[nu + i] -= lam * v;
                }
                (val, grad)
            };
            let res = gradient_ascent(
                objective,
                &params,
                &AscentOptions { initial_step: 0.3, max_iters: 20, ..Default::default() },
            );
            params = res.params;

            // E-step.
            let (ab, lnb) = params.split_at(nu);
            let mut ln_post = vec![vec![0.0f64; l]; n];
            for &(i, u, a) in &triples {
                let b = lnb[i].clamp(-8.0, 8.0).exp();
                let s = clamp_prob(sigmoid(ab[u] * b));
                let wrong = clamp_prob((1.0 - s) / (l.max(2) - 1) as f64);
                for (z, lp) in ln_post[i].iter_mut().enumerate() {
                    *lp += if z == a { s.ln() } else { wrong.ln() };
                }
            }
            for (i, row) in ln_post.iter().enumerate() {
                if counts[i] == 0 {
                    continue;
                }
                let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut p: Vec<f64> = row.iter().map(|lp| (lp - max).exp()).collect();
                let total: f64 = p.iter().sum();
                p.iter_mut().for_each(|v| *v /= total);
                posterior[i] = p;
            }
        }
        posterior
    }
}

impl TruthMethod for Glad {
    fn name(&self) -> &'static str {
        "GLAD"
    }

    fn estimate(&self, schema: &Schema, answers: &AnswerLog) -> Vec<Vec<Value>> {
        let matrix = AnswerMatrix::build(answers);
        let mut est = naive_estimates(schema, &matrix);
        for j in 0..schema.num_columns() {
            if let ColumnType::Categorical { labels } = schema.column_type(j) {
                let post = self.fit_column(&matrix, j as u32, labels.len());
                for (i, row) in post.iter().enumerate() {
                    if matrix.count_for_cell(CellId::new(i as u32, j as u32)) == 0 {
                        continue;
                    }
                    let best = row
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
                        .map(|(z, _)| z as u32)
                        .unwrap_or(0);
                    est[i][j] = Value::Categorical(best);
                }
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mv::MajorityVoting;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerQualityConfig};

    #[test]
    fn sigmoid_sanity() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(5.0) > 0.99);
        assert!(sigmoid(-5.0) < 0.01);
    }

    #[test]
    fn glad_competitive_with_mv() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 80,
                columns: 3,
                categorical_ratio: 1.0,
                num_workers: 16,
                answers_per_task: 5,
                quality: WorkerQualityConfig {
                    median_phi: 0.25,
                    sigma_ln_phi: 1.0,
                    spammer_fraction: 0.2,
                    spammer_factor: 30.0,
                },
                ..Default::default()
            },
            9,
        );
        let glad = Glad::default().estimate(&d.schema, &d.answers);
        let mv = MajorityVoting.estimate(&d.schema, &d.answers);
        let ge = tcrowd_tabular::evaluate(&d.schema, &d.truth, &glad).error_rate.unwrap();
        let me = tcrowd_tabular::evaluate(&d.schema, &d.truth, &mv).error_rate.unwrap();
        assert!(ge <= me + 0.02, "GLAD {ge} vs MV {me}");
    }

    #[test]
    fn glad_output_matches_schema() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 20,
                columns: 4,
                categorical_ratio: 0.5,
                num_workers: 10,
                answers_per_task: 3,
                ..Default::default()
            },
            4,
        );
        let est = Glad::default().estimate(&d.schema, &d.answers);
        for (i, row) in est.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert!(d.schema.column_type(j).accepts(v), "({i},{j})");
            }
        }
    }
}
