//! Collection strategies (`proptest::collection` subset).

use crate::{Strategy, TestRng};
use rand::Rng;
use std::ops::Range;

/// Strategy producing `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// Vectors of `elem`-generated values with a length in `len`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.len.start + 1 >= self.len.end {
            self.len.start
        } else {
            rng.gen_range(self.len.clone())
        };
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
