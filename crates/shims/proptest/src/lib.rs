//! Offline stand-in for `proptest`: the macro + strategy subset this
//! workspace's property tests use.
//!
//! Semantics: each `#[test]` inside [`proptest!`] runs `cases` random cases
//! (default 256, override with the `PROPTEST_CASES` env var or
//! `#![proptest_config(...)]`). Inputs are drawn from [`Strategy`] values —
//! ranges, `any::<T>()`, tuples, `prop_map`, and `prop::collection::vec`.
//! On failure the test panics with the case number and seed; there is **no
//! shrinking** (rerun with the printed case seed to reproduce). `prop_assume`
//! rejects the case without failing.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng, Standard};

pub mod collection;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// How a property-test case ends early.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// `prop_assume` rejection — the case does not apply.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Accepted for API compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        ProptestConfig { cases, max_shrink_iters: 0 }
    }
}

/// Deterministic per-(test, case) RNG so failures reproduce.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37))
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the generated value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident : $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Whole-domain strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Build the whole-domain strategy of `T`.
pub fn any<T>() -> Any<T>
where
    Standard: rand::Distribution<T>,
{
    Any(std::marker::PhantomData)
}

impl<T> Strategy for Any<T>
where
    Standard: rand::Distribution<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fail the case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}` (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Fail the case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}` (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Reject the case (skip without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declare property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_rng(stringify!($name), __case);
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {}/{}: {}",
                                stringify!($name),
                                __case,
                                __config.cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        #[test]
        fn ranges_hold(x in 1usize..10, y in -2.0f64..2.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_map_work(
            (a, b) in (0u32..5, 0u32..5).prop_map(|(a, b)| (a * 2, b)),
            flag in any::<bool>(),
        ) {
            prop_assert!(a % 2 == 0);
            prop_assert!(b < 5);
            let _covered: bool = flag;
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: u64 = crate::Strategy::generate(&(0u64..1_000_000), &mut crate::test_rng("t", 3));
        let b: u64 = crate::Strategy::generate(&(0u64..1_000_000), &mut crate::test_rng("t", 3));
        assert_eq!(a, b);
    }
}
