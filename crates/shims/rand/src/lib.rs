//! Offline stand-in for the `rand` crate, exposing the 0.8-era API subset
//! this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! strong enough for the simulation and property tests in this repository,
//! deterministic per seed, and dependency-free. It is **not** the same
//! stream as the real `rand::rngs::StdRng` (ChaCha12), so seeds tuned
//! against the real crate may produce different draws here.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over `[0, 1)` for floats,
/// uniform over the full domain for integers and `bool`.
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / ((1u64 << 24) as f32))
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
        lo + (hi - lo) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / ((1u64 << 24) as f32));
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % width;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling helpers, blanket-implemented over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the [`Standard`] distribution of `T`.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draw a uniform value from `range`.
    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover() {
        let mut r = StdRng::seed_from_u64(1);
        let mut below_half = 0usize;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                below_half += 1;
            }
        }
        assert!((4_000..6_000).contains(&below_half), "{below_half}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let a: u32 = r.gen_range(3..7);
            assert!((3..7).contains(&a));
            let b: usize = r.gen_range(2..=5);
            assert!((2..=5).contains(&b));
            let c: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&c));
            let d: i32 = r.gen_range(-10..10);
            assert!((-10..10).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never is identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
