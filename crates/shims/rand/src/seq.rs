//! Slice helpers (`rand::seq` subset).

use crate::Rng;

/// In-place shuffling and uniform choice over slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j: usize = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
