//! Offline stand-in for `criterion`: the benchmark-harness subset this
//! workspace uses (`criterion_group!` / `criterion_main!`, groups,
//! `bench_function` / `bench_with_input`, throughput annotations).
//!
//! Measurement model: one timed warm-up call sizes the iteration count so a
//! sample fits the group's `measurement_time` budget, then `sample_size`
//! samples are taken and the minimum per-iteration time is reported (minimum
//! is the standard low-noise location estimate for micro-benchmarks).
//! Results are printed as `group/id  <time>/iter` lines, and written to the
//! JSON file named by the `CRITERION_JSON` env var when set (one file per
//! bench binary; a later binary replaces an earlier one's file).
//!
//! Passing `--quick` (or setting `CRITERION_QUICK=1`) shrinks every budget
//! to one sample of one iteration — used by CI to smoke-test benches.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Best observed nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Optional throughput annotation (elements per iteration).
    pub elements: Option<u64>,
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    samples: usize,
    best_ns: f64,
}

impl Bencher {
    /// Run the routine repeatedly and record the best per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
        }
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let record = self.run(&id.id, |b| f(b));
        self.criterion.records.push(record);
        self
    }

    /// Benchmark a closure that receives `input` under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let record = self.run(&id.id, |b| f(b, input));
        self.criterion.records.push(record);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> BenchRecord {
        let quick = self.criterion.quick;
        // Timed warm-up sizes the iteration count.
        let warmup = {
            let mut b = Bencher { iters: 1, samples: 1, best_ns: f64::INFINITY };
            f(&mut b);
            b.best_ns.max(1.0)
        };
        let samples = if quick { 1 } else { self.sample_size };
        let budget_ns = if quick { 0.0 } else { self.measurement_time.as_nanos() as f64 };
        let per_sample = budget_ns / samples as f64;
        let iters = if quick { 1 } else { (per_sample / warmup).clamp(1.0, 1e6) as u64 };
        let mut b = Bencher { iters, samples, best_ns: warmup };
        f(&mut b);
        let record = BenchRecord {
            group: self.name.clone(),
            id: id.to_string(),
            ns_per_iter: b.best_ns,
            elements: match self.throughput {
                Some(Throughput::Elements(n)) => Some(n),
                _ => None,
            },
        };
        println!(
            "{:<50} {:>14}/iter{}",
            format!("{}/{id}", self.name),
            fmt_ns(record.ns_per_iter),
            match record.elements {
                Some(n) => format!("  ({:.0} elem/s)", n as f64 / (record.ns_per_iter / 1e9)),
                None => String::new(),
            }
        );
        record
    }

    /// End the group (kept for API compatibility; records are already live).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The benchmark harness entry object.
pub struct Criterion {
    records: Vec<BenchRecord>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick" || a == "--test")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion { records: Vec::new(), quick }
    }
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    /// Benchmark a closure outside any explicit group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("default").bench_function(id, f);
        self
    }

    /// All records measured so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Print the summary and, when `CRITERION_JSON` is set, write the
    /// records to that file as a JSON array (replacing its contents).
    pub fn final_summary(&self) {
        if let Some(path) = std::env::var_os("CRITERION_JSON") {
            let mut out = String::from("[\n");
            for (i, r) in self.records.iter().enumerate() {
                out.push_str(&format!(
                    "  {{\"group\": \"{}\", \"id\": \"{}\", \"ns_per_iter\": {:.1}{}}}{}\n",
                    r.group,
                    r.id,
                    r.ns_per_iter,
                    match r.elements {
                        Some(n) => format!(", \"elements\": {n}"),
                        None => String::new(),
                    },
                    if i + 1 == self.records.len() { "" } else { "," }
                ));
            }
            out.push_str("]\n");
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("warning: could not write {}: {e}", path.to_string_lossy());
            }
        }
    }
}

/// Opaque re-export used by benches for `black_box`.
pub use std::hint::black_box;

/// Group several benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion { records: Vec::new(), quick: true };
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(4));
            g.bench_function("fast", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        assert_eq!(c.records().len(), 2);
        assert_eq!(c.records()[0].group, "g");
        assert_eq!(c.records()[1].id, "param/3");
        assert!(c.records()[0].ns_per_iter.is_finite());
        assert_eq!(c.records()[0].elements, Some(4));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
