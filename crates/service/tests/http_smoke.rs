//! End-to-end HTTP smoke: start the server on an ephemeral port and drive
//! the full paper loop — create table, assignment, answers, refresh, truth,
//! stats, healthz — through a plain `TcpStream` client (this is the CI
//! "service smoke" coverage).

mod common;

use common::Client;
use tcrowd_core::TCrowd;
use tcrowd_service::Json;
use tcrowd_tabular::{generate_dataset, Answer, AnswerLog, GeneratorConfig, Value};

const CREATE_BODY: &str = r#"{
    "id": "smoke",
    "rows": 8,
    "schema": {
        "name": "Smoke", "key": "id",
        "columns": [
            {"name": "kind", "type": "categorical", "labels": ["x", "y", "z"]},
            {"name": "size", "type": "continuous", "min": 0, "max": 10}
        ]
    },
    "policy": "structure-aware",
    "refit_every": 1000,
    "refresh_interval_ms": 60000
}"#;

#[test]
fn full_loop_over_the_wire() {
    let (registry, server) = tcrowd_service::start("127.0.0.1:0", 4).expect("start server");
    let client = Client { addr: server.addr() };

    // healthz before anything exists.
    let (status, health) = client.get("/healthz");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("tables").unwrap().as_u64(), Some(0));
    assert!(health.get("degraded_tables").unwrap().as_array().unwrap().is_empty());

    // Create a table; verify the echo.
    let (status, created) = client.post("/tables", CREATE_BODY);
    assert_eq!(status, 201, "{created}");
    assert_eq!(created.get("id").unwrap().as_str(), Some("smoke"));
    assert_eq!(created.get("cols").unwrap().as_u64(), Some(2));
    // Re-creating the same id conflicts; bad bodies are 400.
    assert_eq!(client.post("/tables", CREATE_BODY).0, 409);
    assert_eq!(client.post("/tables", "{\"rows\": 0}").0, 400);
    assert_eq!(client.post("/tables", "not json").0, 400);

    // Assignment for a fresh worker: k distinct in-range cells.
    let (status, assignment) = client.get("/tables/smoke/assignment?worker=3&k=4");
    assert_eq!(status, 200, "{assignment}");
    let cells = assignment.get("cells").unwrap().as_array().unwrap();
    assert_eq!(cells.len(), 4);
    for c in cells {
        assert!(c.get("row").unwrap().as_u64().unwrap() < 8);
        assert!(c.get("col").unwrap().as_u64().unwrap() < 2);
        assert!(c.get("column").unwrap().as_str().is_some());
    }
    // Unknown table, missing worker, bad policy.
    assert_eq!(client.get("/tables/nope/assignment?worker=1").0, 404);
    assert_eq!(client.get("/tables/smoke/assignment").0, 400);
    assert_eq!(client.get("/tables/smoke/assignment?worker=1&policy=bogus").0, 400);

    // Submit single + batched answers (index, label-string and named-column
    // forms).
    let (status, r) =
        client.post("/tables/smoke/answers", r#"{"worker":3,"row":0,"col":0,"value":"y"}"#);
    assert_eq!(status, 200, "{r}");
    assert_eq!(r.get("accepted").unwrap().as_u64(), Some(1));
    let (status, r) = client.post(
        "/tables/smoke/answers",
        r#"{"answers":[
            {"worker":3,"row":0,"col":"size","value":4.25},
            {"worker":4,"row":0,"col":0,"value":1},
            {"worker":4,"row":1,"col":1,"value":2.5}
        ]}"#,
    );
    assert_eq!(status, 200, "{r}");
    assert_eq!(r.get("accepted").unwrap().as_u64(), Some(3));
    assert_eq!(r.get("pending").unwrap().as_u64(), Some(4));
    // Bad answers are rejected whole-batch.
    let (status, r) = client.post(
        "/tables/smoke/answers",
        r#"{"answers":[{"worker":1,"row":0,"col":0,"value":0},
                       {"worker":1,"row":99,"col":0,"value":0}]}"#,
    );
    assert_eq!(status, 400, "{r}");

    // Force a refresh; stats must show everything published.
    let (status, refreshed) = client.post("/tables/smoke/refresh", "");
    assert_eq!(status, 200);
    assert_eq!(refreshed.get("refitted").unwrap().as_bool(), Some(true));
    let (_, stats) = client.get("/tables/smoke/stats");
    assert_eq!(stats.get("answers").unwrap().as_u64(), Some(4));
    assert_eq!(stats.get("epoch").unwrap().as_u64(), Some(4));
    assert_eq!(stats.get("pending").unwrap().as_u64(), Some(0));
    assert_eq!(stats.get("workers").unwrap().as_u64(), Some(2));
    assert_eq!(stats.get("em_converged").unwrap().as_bool(), Some(true));
    // Kernel-phase breakdown of the published refit.
    assert!(stats.get("last_refit_ms").unwrap().as_f64().unwrap() >= 0.0);
    assert!(stats.get("last_estep_ms").unwrap().as_f64().unwrap() >= 0.0);
    assert!(stats.get("last_mstep_ms").unwrap().as_f64().unwrap() >= 0.0);
    assert!(stats.get("em_threads").unwrap().as_u64().unwrap() >= 1);
    // Health accounting: an undisturbed table is healthy with clean counters.
    assert_eq!(stats.get("health").unwrap().as_str(), Some("healthy"));
    assert_eq!(stats.get("refit_failures").unwrap().as_u64(), Some(0));
    assert_eq!(stats.get("persist_failures").unwrap().as_u64(), Some(0));
    assert!(matches!(stats.get("degraded_since_ms"), Some(Json::Null)));
    assert!(matches!(stats.get("last_error"), Some(Json::Null)));

    // Truth estimates have the right shape and datatypes.
    let (status, truth) = client.get("/tables/smoke/truth");
    assert_eq!(status, 200);
    assert_eq!(truth.get("epoch").unwrap().as_u64(), Some(4));
    let rows = truth.get("estimates").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 8);
    for row in rows {
        let row = row.as_array().unwrap();
        assert!(row[0].as_str().is_some(), "categorical estimates are label strings");
        assert!(row[1].as_f64().is_some(), "continuous estimates are numbers");
    }
    // The answered cell reflects its unanimous label.
    assert_eq!(rows[0].as_array().unwrap()[0].as_str(), Some("y"));

    // z-space view matches the shape contract.
    let (_, tz) = client.get("/tables/smoke/truth?z=1");
    let cell00 = &tz.get("truth_z").unwrap().as_array().unwrap()[0].as_array().unwrap()[0];
    assert_eq!(cell00.get("probs").unwrap().as_array().unwrap().len(), 3);

    // The log dump round-trips what we posted.
    let (_, log) = client.get("/tables/smoke/answers");
    let answers = log.get("answers").unwrap().as_array().unwrap();
    assert_eq!(answers.len(), 4);
    assert_eq!(answers[0].get("value").unwrap().as_str(), Some("y"));

    // Table listing + delete + healthz accounting.
    let (_, tables) = client.get("/tables");
    assert_eq!(tables.get("tables").unwrap().as_array().unwrap().len(), 1);
    assert_eq!(client.request("DELETE", "/tables/smoke", None).0, 200);
    assert_eq!(client.get("/tables/smoke/stats").0, 404);
    assert_eq!(client.get("/healthz").1.get("tables").unwrap().as_u64(), Some(0));

    registry.shutdown();
    server.shutdown();
}

/// Backpressure over the wire: a table created with `max_pending` answers
/// `429 Too Many Requests` (with a `Retry-After` hint) once the refresher
/// lag reaches the bound, and accepts again after a refresh drains it.
#[test]
fn overload_gets_429_with_retry_after_at_the_max_pending_bound() {
    let (registry, server) = tcrowd_service::start("127.0.0.1:0", 2).expect("start server");
    let client = Client { addr: server.addr() };
    // A table whose refresher never fires on its own, bounded at 3 pending.
    let create = r#"{
        "id": "bounded", "rows": 4, "max_pending": 3,
        "refit_every": 100000, "refresh_interval_ms": 60000,
        "schema": {"columns": [
            {"name": "kind", "type": "categorical", "labels": ["x", "y"]}
        ]}
    }"#;
    let (status, created) = client.post("/tables", create);
    assert_eq!(status, 201, "{created}");
    let (_, stats) = client.get("/tables/bounded/stats");
    assert_eq!(stats.get("max_pending").unwrap().as_u64(), Some(3));

    // Fill the bound...
    for i in 0..3 {
        let body = format!(r#"{{"worker":{i},"row":0,"col":0,"value":0}}"#);
        let (status, r) = client.post("/tables/bounded/answers", &body);
        assert_eq!(status, 200, "{r}");
    }
    // ...the next answer is shed with 429 + Retry-After, nothing ingested.
    let (status, headers, r) = client.request_with_headers(
        "POST",
        "/tables/bounded/answers",
        Some(r#"{"worker":9,"row":1,"col":0,"value":1}"#),
    );
    assert_eq!(status, 429, "{r}");
    assert!(r.get("error").unwrap().as_str().unwrap().contains("overloaded"), "{r}");
    let retry_after: u64 =
        Client::header(&headers, "retry-after").expect("Retry-After header").parse().unwrap();
    assert!(retry_after >= 1);
    let (_, stats) = client.get("/tables/bounded/stats");
    assert_eq!(stats.get("pending").unwrap().as_u64(), Some(3), "shed batch must not ingest");
    // Overload is load, not damage: the table stays healthy and reads work.
    assert_eq!(stats.get("health").unwrap().as_str(), Some("healthy"));
    assert_eq!(client.get("/tables/bounded/truth").0, 200);

    // A refresh drains the lag; ingest resumes.
    assert_eq!(client.post("/tables/bounded/refresh", "").0, 200);
    let (status, r) =
        client.post("/tables/bounded/answers", r#"{"worker":9,"row":1,"col":0,"value":1}"#);
    assert_eq!(status, 200, "{r}");

    registry.shutdown();
    server.shutdown();
}

/// Worker trust over the wire: `/stats` exposes the trust counters, the
/// manual quarantine/release endpoints round-trip through a refresh (the
/// quarantined worker's answers stay in the served log but leave the fit),
/// and `GET …/workers` reports per-worker state.
#[test]
fn manual_quarantine_round_trips_over_the_wire() {
    let (registry, server) = tcrowd_service::start("127.0.0.1:0", 2).expect("start server");
    let client = Client { addr: server.addr() };
    let create = r#"{
        "id": "trust", "rows": 6,
        "refit_every": 100000, "refresh_interval_ms": 60000,
        "schema": {"columns": [
            {"name": "kind", "type": "categorical", "labels": ["x", "y"]},
            {"name": "size", "type": "continuous", "min": 0, "max": 10}
        ]}
    }"#;
    assert_eq!(client.post("/tables", create).0, 201);

    // Three mostly-agreeing honest workers follow a row-dependent pattern
    // (worker 3 slips once, keeping the fit away from the perfect-agreement
    // degeneracy); worker 7 contradicts the majority everywhere.
    let mut batch = Vec::new();
    for row in 0..6u32 {
        for w in [1u32, 2, 3] {
            let label = if w == 3 && row == 0 { 1 } else { row % 2 };
            batch.push(format!(r#"{{"worker":{w},"row":{row},"col":0,"value":{label}}}"#));
            let size = 2.0 + f64::from(row) + 0.1 * f64::from(w);
            batch.push(format!(r#"{{"worker":{w},"row":{row},"col":1,"value":{size}}}"#));
        }
        batch.push(format!(r#"{{"worker":7,"row":{row},"col":0,"value":{}}}"#, 1 - row % 2));
        batch.push(format!(r#"{{"worker":7,"row":{row},"col":1,"value":{}}}"#, (row % 2) * 9));
    }
    let body = format!(r#"{{"answers":[{}]}}"#, batch.join(","));
    let (status, r) = client.post("/tables/trust/answers", &body);
    assert_eq!(status, 200, "{r}");
    assert_eq!(client.post("/tables/trust/refresh", "").0, 200);

    // Stats expose the trust counters with their defaults.
    let (_, stats) = client.get("/tables/trust/stats");
    assert_eq!(stats.get("trust_auto").unwrap().as_bool(), Some(false));
    assert_eq!(stats.get("quarantined_workers").unwrap().as_u64(), Some(0));
    assert_eq!(stats.get("manual_quarantines").unwrap().as_u64(), Some(0));
    assert_eq!(stats.get("rate_limited_batches").unwrap().as_u64(), Some(0));
    assert!(stats.get("trust_seq").unwrap().as_u64().is_some());
    assert!(stats.get("suspect_workers").unwrap().as_u64().is_some());

    // The per-worker report covers all three workers, all trusted.
    let (status, report) = client.get("/tables/trust/workers");
    assert_eq!(status, 200, "{report}");
    let workers = report.get("workers").unwrap().as_array().unwrap();
    assert_eq!(workers.len(), 4);
    for w in workers {
        assert_eq!(w.get("state").unwrap().as_str(), Some("trusted"));
        assert_eq!(w.get("answers").unwrap().as_u64(), Some(12));
        assert!(w.get("quality").unwrap().as_f64().is_some());
    }

    // Manually quarantine worker 7 and refresh: the fit excludes it, the
    // log keeps its answers, and /workers flags it.
    let (status, q) = client.post("/tables/trust/workers/7/quarantine", "");
    assert_eq!(status, 200, "{q}");
    assert_eq!(q.get("state").unwrap().as_str(), Some("quarantined"));
    assert_eq!(client.post("/tables/trust/refresh", "").0, 200);
    let (_, stats) = client.get("/tables/trust/stats");
    assert_eq!(stats.get("quarantined_workers").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("manual_quarantines").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("answers").unwrap().as_u64(), Some(48), "log keeps every answer");
    let (_, report) = client.get("/tables/trust/workers");
    let w7 = report
        .get("workers")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .find(|w| w.get("worker").unwrap().as_u64() == Some(7))
        .expect("worker 7 in report");
    assert_eq!(w7.get("state").unwrap().as_str(), Some("quarantined"));
    assert_eq!(w7.get("manual").unwrap().as_bool(), Some(true));
    assert!(matches!(w7.get("quality"), Some(Json::Null)), "excluded from the fit: {w7}");
    // The honest consensus wins every categorical cell once 7 is out.
    let (_, truth) = client.get("/tables/trust/truth");
    for (i, row) in truth.get("estimates").unwrap().as_array().unwrap().iter().enumerate() {
        let want = if i % 2 == 0 { "x" } else { "y" };
        assert_eq!(row.as_array().unwrap()[0].as_str(), Some(want), "{truth}");
    }

    // Release restores the worker; unknown workers and bad ids are 400.
    let (status, rel) = client.post("/tables/trust/workers/7/release", "");
    assert_eq!(status, 200, "{rel}");
    assert_eq!(rel.get("state").unwrap().as_str(), Some("trusted"));
    assert_eq!(client.post("/tables/trust/refresh", "").0, 200);
    let (_, stats) = client.get("/tables/trust/stats");
    assert_eq!(stats.get("quarantined_workers").unwrap().as_u64(), Some(0));
    assert_eq!(client.post("/tables/trust/workers/bogus/quarantine", "").0, 400);
    assert_eq!(client.get("/tables/nope/workers").0, 404);

    registry.shutdown();
    server.shutdown();
}

/// Per-worker rate limiting over the wire: a table with `worker_rate` set
/// answers `429 Too Many Requests` + `Retry-After` once one worker exhausts
/// its token bucket, without touching other workers.
#[test]
fn per_worker_rate_limit_gets_429_with_retry_after() {
    let (registry, server) = tcrowd_service::start("127.0.0.1:0", 2).expect("start server");
    let client = Client { addr: server.addr() };
    let create = r#"{
        "id": "limited", "rows": 4,
        "worker_rate": 0.001, "worker_burst": 3,
        "refit_every": 100000, "refresh_interval_ms": 60000,
        "schema": {"columns": [
            {"name": "kind", "type": "categorical", "labels": ["x", "y"]}
        ]}
    }"#;
    let (status, created) = client.post("/tables", create);
    assert_eq!(status, 201, "{created}");
    let (_, stats) = client.get("/tables/limited/stats");
    assert_eq!(stats.get("worker_rate").unwrap().as_f64(), Some(0.001));

    // Worker 5 burns its burst of 3...
    for i in 0..3 {
        let body = format!(r#"{{"worker":5,"row":{i},"col":0,"value":0}}"#);
        let (status, r) = client.post("/tables/limited/answers", &body);
        assert_eq!(status, 200, "{r}");
    }
    // ...then gets shed with 429 + Retry-After, nothing ingested.
    let (status, headers, r) = client.request_with_headers(
        "POST",
        "/tables/limited/answers",
        Some(r#"{"worker":5,"row":3,"col":0,"value":1}"#),
    );
    assert_eq!(status, 429, "{r}");
    let err = r.get("error").unwrap().as_str().unwrap();
    assert!(err.contains("worker 5") && err.contains("rate limit"), "{r}");
    let retry_after: u64 =
        Client::header(&headers, "retry-after").expect("Retry-After header").parse().unwrap();
    assert!(retry_after >= 1);
    // Another worker is unaffected; the stats count the shed batch.
    let (status, r) =
        client.post("/tables/limited/answers", r#"{"worker":6,"row":0,"col":0,"value":0}"#);
    assert_eq!(status, 200, "{r}");
    let (_, stats) = client.get("/tables/limited/stats");
    assert_eq!(stats.get("pending").unwrap().as_u64(), Some(4));
    assert_eq!(stats.get("rate_limited_batches").unwrap().as_u64(), Some(1));

    registry.shutdown();
    server.shutdown();
}

/// The served estimates must be replayable offline: post a realistic answer
/// set, refresh, download the log, and check the service's truth equals
/// `TCrowd::infer` on the replayed log — exactly (cold re-fits make the
/// published state a pure function of the log).
#[test]
fn served_truth_matches_offline_inference_on_the_served_log() {
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 10,
            columns: 3,
            num_workers: 9,
            answers_per_task: 3,
            ..Default::default()
        },
        11,
    );
    let (registry, server) = tcrowd_service::start("127.0.0.1:0", 2).expect("start server");
    let client = Client { addr: server.addr() };
    // Build the create body from the generated schema via the service's own
    // Json type.
    let columns: Vec<Json> = d
        .schema
        .columns
        .iter()
        .enumerate()
        .map(|(j, c)| match &c.ty {
            tcrowd_tabular::ColumnType::Categorical { labels } => Json::obj([
                ("name", Json::from(format!("c{j}"))),
                ("type", Json::from("categorical")),
                ("labels", Json::Arr(labels.iter().map(|l| Json::from(l.clone())).collect())),
            ]),
            tcrowd_tabular::ColumnType::Continuous { min, max } => Json::obj([
                ("name", Json::from(format!("c{j}"))),
                ("type", Json::from("continuous")),
                ("min", Json::from(*min)),
                ("max", Json::from(*max)),
            ]),
        })
        .collect();
    let create = Json::obj([
        ("id", Json::from("replay")),
        ("rows", Json::from(d.rows())),
        ("schema", Json::obj([("columns", Json::Arr(columns))])),
        ("refresh_interval_ms", Json::from(60_000usize)),
    ]);
    assert_eq!(client.post("/tables", &create.to_string()).0, 201);

    // Post every generated answer in batches, preserving order.
    for chunk in d.answers.all().chunks(25) {
        let batch: Vec<Json> = chunk
            .iter()
            .map(|a| {
                Json::obj([
                    ("worker", Json::from(a.worker.0)),
                    ("row", Json::from(a.cell.row)),
                    ("col", Json::from(a.cell.col)),
                    (
                        "value",
                        match a.value {
                            Value::Categorical(l) => Json::from(l),
                            Value::Continuous(x) => Json::from(x),
                        },
                    ),
                ])
            })
            .collect();
        let body = Json::obj([("answers", Json::Arr(batch))]).to_string();
        let (status, r) = client.post("/tables/replay/answers", &body);
        assert_eq!(status, 200, "{r}");
    }
    assert_eq!(client.post("/tables/replay/refresh", "").0, 200);

    // Download the served log and replay it offline.
    let (_, served) = client.get("/tables/replay/answers");
    let served = served.get("answers").unwrap().as_array().unwrap();
    assert_eq!(served.len(), d.answers.len(), "zero dropped answers");
    let mut replayed = AnswerLog::new(d.rows(), d.cols());
    for a in served {
        let col = a.get("col").unwrap().as_u64().unwrap() as usize;
        let value = match d.schema.column_type(col) {
            tcrowd_tabular::ColumnType::Categorical { labels } => {
                let name = a.get("value").unwrap().as_str().unwrap();
                Value::Categorical(labels.iter().position(|l| l == name).unwrap() as u32)
            }
            tcrowd_tabular::ColumnType::Continuous { .. } => {
                Value::Continuous(a.get("value").unwrap().as_f64().unwrap())
            }
        };
        replayed.push(Answer {
            worker: tcrowd_tabular::WorkerId(a.get("worker").unwrap().as_u64().unwrap() as u32),
            cell: tcrowd_tabular::CellId::new(
                a.get("row").unwrap().as_u64().unwrap() as u32,
                col as u32,
            ),
            value,
        });
    }
    let offline = TCrowd::default_full().infer(&d.schema, &replayed);

    // Served z-space truth equals the offline fit within 1e-6 z-units
    // (in fact exactly, up to the decimal wire encoding).
    let (_, tz) = client.get("/tables/replay/truth?z=1");
    let rows = tz.get("truth_z").unwrap().as_array().unwrap();
    let mut max_diff = 0.0f64;
    for (i, row) in rows.iter().enumerate() {
        for (j, cell) in row.as_array().unwrap().iter().enumerate() {
            let offline_t = offline.truth_z(tcrowd_tabular::CellId::new(i as u32, j as u32));
            match offline_t {
                tcrowd_core::TruthDist::Categorical(p) => {
                    let probs = cell.get("probs").unwrap().as_array().unwrap();
                    for (a, b) in probs.iter().zip(p) {
                        max_diff = max_diff.max((a.as_f64().unwrap() - b).abs());
                    }
                }
                tcrowd_core::TruthDist::Continuous(n) => {
                    max_diff =
                        max_diff.max((cell.get("mean").unwrap().as_f64().unwrap() - n.mean).abs());
                }
            }
        }
    }
    assert!(max_diff < 1e-6, "served vs offline z-discrepancy {max_diff:.3e}");

    registry.shutdown();
    server.shutdown();
}
