//! Chaos suite: the real service under scripted fault schedules, over the
//! real HTTP wire. Each scenario injects a failure mode through the store's
//! [`FaultyIo`] (or the table's refit-panic budget), then asserts the
//! graceful-degradation contract end to end:
//!
//! * **zero acknowledged-answer loss** — every batch answered `200` is in
//!   the served log (and, for durable tables, survives a full restart);
//! * **reads never stop** — `GET …/truth` and `GET …/assignment` keep
//!   serving the last good snapshot throughout the fault;
//! * `GET …/stats` reports the `Degraded` reason while faulted and the
//!   table returns to `Healthy` once the fault clears;
//! * the settled published state equals offline [`TCrowd::infer`] on the
//!   acknowledged log within 1e-6 z-units.

mod common;

use common::Client;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tcrowd_core::{TCrowd, TruthDist};
use tcrowd_service::Json;
use tcrowd_store::{FaultOp, FaultyIo, FsyncPolicy, Store, EIO, ENOSPC};
use tcrowd_tabular::{Answer, AnswerLog, CellId, Column, ColumnType, Schema, Value, WorkerId};

const ROWS: usize = 6;
const LABELS: [&str; 3] = ["x", "y", "z"];

fn schema() -> Schema {
    Schema::new(
        "chaos",
        "key",
        vec![
            Column::new(
                "kind",
                ColumnType::Categorical { labels: LABELS.iter().map(|s| s.to_string()).collect() },
            ),
            Column::new("size", ColumnType::Continuous { min: 0.0, max: 10.0 }),
        ],
    )
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("tcrowd_service_chaos_tests")
        .join(format!("{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Deterministic mixed-type answers; `salt` varies the stream per batch.
fn some_answers(n: usize, salt: u32) -> Vec<Answer> {
    (0..n as u32)
        .map(|i| {
            let i = i + salt;
            let col = i % 2;
            let value = if col == 0 {
                Value::Categorical((i / 2) % 3)
            } else {
                Value::Continuous(f64::from(i % 7) + 0.5)
            };
            Answer { worker: WorkerId(i % 5), cell: CellId::new(i % ROWS as u32, col), value }
        })
        .collect()
}

fn create_table(client: &Client, id: &str, refresh_interval_ms: u64) {
    let body = format!(
        r#"{{
            "id": "{id}", "rows": {ROWS}, "seed": 7,
            "refit_every": 100000, "refresh_interval_ms": {refresh_interval_ms},
            "schema": {{"columns": [
                {{"name": "kind", "type": "categorical", "labels": ["x", "y", "z"]}},
                {{"name": "size", "type": "continuous", "min": 0, "max": 10}}
            ]}}
        }}"#
    );
    let (status, r) = client.post("/tables", &body);
    assert_eq!(status, 201, "{r}");
}

fn post_answers(
    client: &Client,
    id: &str,
    answers: &[Answer],
) -> (u16, Vec<(String, String)>, Json) {
    let batch: Vec<Json> = answers
        .iter()
        .map(|a| {
            Json::obj([
                ("worker", Json::from(a.worker.0)),
                ("row", Json::from(a.cell.row)),
                ("col", Json::from(a.cell.col)),
                (
                    "value",
                    match a.value {
                        Value::Categorical(l) => Json::from(l),
                        Value::Continuous(x) => Json::from(x),
                    },
                ),
            ])
        })
        .collect();
    let body = Json::obj([("answers", Json::Arr(batch))]).to_string();
    client.request_with_headers("POST", &format!("/tables/{id}/answers"), Some(&body))
}

fn stats(client: &Client, id: &str) -> Json {
    let (status, s) = client.get(&format!("/tables/{id}/stats"));
    assert_eq!(status, 200, "{s}");
    s
}

fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if pred() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

/// Published, drained, and exact: pending and catch-up residue both zero.
fn wait_settled(client: &Client, id: &str, epoch: usize) {
    wait_until(&format!("table '{id}' settled at epoch {epoch}"), || {
        let s = stats(client, id);
        s.get("pending").unwrap().as_u64() == Some(0)
            && s.get("catchup_merged").unwrap().as_u64() == Some(0)
            && s.get("epoch").unwrap().as_u64() == Some(epoch as u64)
            && s.get("health").unwrap().as_str() == Some("healthy")
    });
}

/// The zero-loss half of the contract: the served log is exactly the acked
/// answer sequence, bit-identical, in ack order.
fn assert_served_equals_acked(client: &Client, id: &str, acked: &[Answer]) {
    let (_, served) = client.get(&format!("/tables/{id}/answers"));
    let served = served.get("answers").unwrap().as_array().unwrap();
    assert_eq!(served.len(), acked.len(), "acked vs served answer count");
    for (got, want) in served.iter().zip(acked) {
        assert_eq!(got.get("worker").unwrap().as_u64(), Some(u64::from(want.worker.0)));
        assert_eq!(got.get("row").unwrap().as_u64(), Some(u64::from(want.cell.row)));
        assert_eq!(got.get("col").unwrap().as_u64(), Some(u64::from(want.cell.col)));
        match want.value {
            Value::Categorical(l) => {
                assert_eq!(got.get("value").unwrap().as_str(), Some(LABELS[l as usize]));
            }
            Value::Continuous(x) => {
                let y = got.get("value").unwrap().as_f64().unwrap();
                assert_eq!(y.to_bits(), x.to_bits(), "continuous payloads survive to the bit");
            }
        }
    }
}

/// The settled-state half: served z-space truth vs offline `TCrowd::infer`
/// replayed on the acked log.
fn offline_z_divergence(client: &Client, id: &str, acked: &[Answer]) -> f64 {
    let mut log = AnswerLog::new(ROWS, 2);
    for &a in acked {
        log.push(a);
    }
    let offline = TCrowd::default_full().infer(&schema(), &log);
    let (_, tz) = client.get(&format!("/tables/{id}/truth?z=1"));
    let rows = tz.get("truth_z").unwrap().as_array().unwrap();
    let mut max_diff = 0.0f64;
    for (i, row) in rows.iter().enumerate() {
        for (j, cell) in row.as_array().unwrap().iter().enumerate() {
            match offline.truth_z(CellId::new(i as u32, j as u32)) {
                TruthDist::Categorical(p) => {
                    let probs = cell.get("probs").unwrap().as_array().unwrap();
                    for (a, b) in probs.iter().zip(p) {
                        max_diff = max_diff.max((a.as_f64().unwrap() - b).abs());
                    }
                }
                TruthDist::Continuous(n) => {
                    max_diff =
                        max_diff.max((cell.get("mean").unwrap().as_f64().unwrap() - n.mean).abs());
                }
            }
        }
    }
    max_diff
}

fn assert_reads_serve(client: &Client, id: &str) {
    assert_eq!(client.get(&format!("/tables/{id}/truth")).0, 200, "truth must keep serving");
    assert_eq!(
        client.get(&format!("/tables/{id}/assignment?worker=1&k=2")).0,
        200,
        "assignment must keep serving"
    );
}

/// All events of the table's lifecycle ring, oldest first, as
/// `(kind, detail)` pairs.
fn event_log(client: &Client, id: &str) -> Vec<(String, String)> {
    let (status, page) = client.get(&format!("/tables/{id}/events?max=1000"));
    assert_eq!(status, 200, "{page}");
    assert_eq!(page.get("truncated").unwrap().as_bool(), Some(false), "ring must not have wrapped");
    page.get("events")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|e| {
            (
                e.get("kind").unwrap().as_str().unwrap().to_string(),
                e.get("detail").unwrap().as_str().unwrap().to_string(),
            )
        })
        .collect()
}

/// The event-trace half of the degradation contract: every health
/// transition the table went through is in the event log, in order, as a
/// connected chain `healthy -> … -> healthy` that passed through
/// `degraded` (and through every `via` state given) along the way.
fn assert_health_transitions_traced(client: &Client, id: &str, via: &[&str]) {
    let transitions: Vec<String> = event_log(client, id)
        .into_iter()
        .filter(|(kind, _)| kind == "health")
        .map(|(_, detail)| detail)
        .collect();
    assert!(!transitions.is_empty(), "a degraded-and-recovered table must trace transitions");
    let mut state = "healthy".to_string();
    for t in &transitions {
        let (from, to) = t.split_once(" -> ").unwrap_or_else(|| panic!("bad transition {t:?}"));
        assert_eq!(from, state, "transition chain must connect: {transitions:?}");
        state = to.to_string();
    }
    assert_eq!(state, "healthy", "the chain must end recovered: {transitions:?}");
    for want in ["degraded"].iter().chain(via) {
        assert!(
            transitions.iter().any(|t| t.ends_with(&format!("-> {want}"))),
            "no transition into '{want}': {transitions:?}"
        );
    }
}

fn assert_healthz_degraded(client: &Client, id: &str) {
    let (_, h) = client.get("/healthz");
    assert_eq!(h.get("status").unwrap().as_str(), Some("degraded"), "{h}");
    let listed = h.get("degraded_tables").unwrap().as_array().unwrap();
    assert!(
        listed.iter().any(|t| t.get("id").unwrap().as_str() == Some(id)),
        "'{id}' must be listed in {h}"
    );
}

/// Scenario 1 — **ENOSPC mid-publish-persist**: snapshot writes fail while
/// the WAL stays healthy. The table keeps ingesting and publishing
/// (`Degraded` on the persist axis only), reads never stop, and once the
/// disk heals the background re-attempt persists the full chain.
#[test]
fn enospc_on_snapshot_persist_degrades_and_recovers() {
    let dir = fresh_dir("persist");
    let io = FaultyIo::new();
    let store = Arc::new(Store::open_with_io(&dir, FsyncPolicy::Always, io.clone() as _).unwrap());
    let (registry, server, _) =
        tcrowd_service::start_durable("127.0.0.1:0", 2, store).expect("start server");
    let client = Client { addr: server.addr() };
    create_table(&client, "t", 40);
    let mut acked: Vec<Answer> = Vec::new();

    // Healthy baseline: ingest, publish, persist.
    let batch = some_answers(30, 0);
    assert_eq!(post_answers(&client, "t", &batch).0, 200);
    acked.extend_from_slice(&batch);
    wait_settled(&client, "t", acked.len());

    // The disk runs out of space for snapshot files (WAL writes unaffected).
    io.break_op(FaultOp::Write, Some("snapshot"), ENOSPC);
    let batch = some_answers(20, 1_000);
    assert_eq!(post_answers(&client, "t", &batch).0, 200, "ingest must survive persist faults");
    acked.extend_from_slice(&batch);
    wait_until("persist degradation", || {
        let s = stats(&client, "t");
        s.get("persist_failures").unwrap().as_u64().unwrap() >= 1
            && s.get("health").unwrap().as_str() == Some("degraded")
    });
    let s = stats(&client, "t");
    assert!(s.get("health_reason").unwrap().as_str().unwrap().contains("persist-failing"), "{s}");
    assert!(s.get("degraded_since_ms").unwrap().as_f64().unwrap() >= 0.0);
    assert!(s.get("last_error").unwrap().as_str().is_some());
    assert_reads_serve(&client, "t");
    assert_healthz_degraded(&client, "t");
    // Ingest still acks (the WAL is fine).
    let batch = some_answers(10, 2_000);
    assert_eq!(post_answers(&client, "t", &batch).0, 200);
    acked.extend_from_slice(&batch);

    // The disk heals; the background re-attempt persists everything.
    io.heal();
    wait_settled(&client, "t", acked.len());
    wait_until("store snapshot catches up", || {
        stats(&client, "t").get("store_snapshot_epoch").unwrap().as_u64()
            == Some(acked.len() as u64)
    });
    assert_served_equals_acked(&client, "t", &acked);
    let div = offline_z_divergence(&client, "t", &acked);
    assert!(div < 1e-6, "settled state diverges from offline infer by {div:.3e}");

    // The whole degradation arc is in the event log, in order: the failed
    // persist, the health transitions, and a successful persist after heal.
    assert_health_transitions_traced(&client, "t", &[]);
    let log = event_log(&client, "t");
    let last_fail = log.iter().rposition(|(k, _)| k == "snapshot_persist_failed");
    let last_ok = log.iter().rposition(|(k, _)| k == "snapshot_persisted");
    assert!(last_fail.is_some(), "the ENOSPC persist must be traced: {log:?}");
    assert!(last_ok > last_fail, "a healed persist must follow the failure: {log:?}");

    registry.shutdown();
    server.shutdown();
    // Durable zero-loss: a cold restart recovers exactly the acked log.
    let rec = Store::open(&dir, FsyncPolicy::Always).unwrap().recover_table("t").unwrap();
    assert_eq!(rec.log.all(), acked.as_slice(), "restart must recover every acked answer");
    std::fs::remove_dir_all(&dir).ok();
}

/// Scenario 2 — **fsync failure under ingest load**: the WAL breaks, ingest
/// flips to `503 Retry-After` with nothing acknowledged, reads keep
/// serving; once the disk heals the refresher rebuilds the WAL from the
/// in-memory log (exactly the acked set) and ingest resumes.
#[test]
fn fsync_failure_degrades_ingest_to_503_until_the_wal_is_rebuilt() {
    let dir = fresh_dir("wal");
    let io = FaultyIo::new();
    let store = Arc::new(Store::open_with_io(&dir, FsyncPolicy::Always, io.clone() as _).unwrap());
    let (registry, server, _) =
        tcrowd_service::start_durable("127.0.0.1:0", 2, store).expect("start server");
    let client = Client { addr: server.addr() };
    create_table(&client, "t", 40);
    let mut acked: Vec<Answer> = Vec::new();

    let batch = some_answers(25, 0);
    assert_eq!(post_answers(&client, "t", &batch).0, 200);
    acked.extend_from_slice(&batch);
    wait_settled(&client, "t", acked.len());

    // The disk starts failing fsync on the WAL.
    io.break_op(FaultOp::Sync, Some("wal.log"), EIO);
    let nacked = some_answers(10, 5_000);
    let (status, headers, r) = post_answers(&client, "t", &nacked);
    assert_eq!(status, 503, "{r}");
    assert!(r.get("error").unwrap().as_str().unwrap().starts_with("storage:"), "{r}");
    let retry_after: u64 =
        Client::header(&headers, "retry-after").expect("Retry-After header").parse().unwrap();
    assert!(retry_after >= 1);
    // The WAL is poisoned: a verbatim retry is also refused, nothing lands.
    assert_eq!(post_answers(&client, "t", &nacked).0, 503);
    let s = stats(&client, "t");
    assert_ne!(s.get("health").unwrap().as_str(), Some("healthy"), "{s}");
    assert!(s.get("health_reason").unwrap().as_str().unwrap().contains("wal-broken"), "{s}");
    assert_eq!(s.get("epoch").unwrap().as_u64(), Some(acked.len() as u64));
    assert_reads_serve(&client, "t");
    assert_healthz_degraded(&client, "t");

    // The disk heals; the refresher rebuilds the WAL and re-enables ingest.
    io.heal();
    wait_until("WAL rebuild re-enables ingest", || {
        stats(&client, "t").get("health").unwrap().as_str() == Some("healthy")
    });
    // The client retries its NACKed batch verbatim — now acknowledged.
    assert_eq!(post_answers(&client, "t", &nacked).0, 200);
    acked.extend_from_slice(&nacked);
    wait_settled(&client, "t", acked.len());
    wait_until("store snapshot catches up", || {
        stats(&client, "t").get("store_snapshot_epoch").unwrap().as_u64()
            == Some(acked.len() as u64)
    });
    assert_served_equals_acked(&client, "t", &acked);
    let div = offline_z_divergence(&client, "t", &acked);
    assert!(div < 1e-6, "settled state diverges from offline infer by {div:.3e}");

    // Event trace: poisoning before rebuild, and the health chain walked
    // healthy -> degraded -> recovering -> … -> healthy in order.
    assert_health_transitions_traced(&client, "t", &["recovering"]);
    let log = event_log(&client, "t");
    let poisoned = log.iter().position(|(k, _)| k == "wal_poisoned");
    let rebuilt = log.iter().position(|(k, _)| k == "wal_rebuilt");
    assert!(poisoned.is_some(), "the fsync failure must be traced: {log:?}");
    assert!(rebuilt > poisoned, "the rebuild must follow the poisoning: {log:?}");

    registry.shutdown();
    server.shutdown();
    let rec = Store::open(&dir, FsyncPolicy::Always).unwrap().recover_table("t").unwrap();
    assert_eq!(rec.log.all(), acked.as_slice(), "rebuilt WAL must hold exactly the acked log");
    std::fs::remove_dir_all(&dir).ok();
}

/// Scenario 3 — **injected refit panics**: EM blows up mid-refit, five
/// times in a row. Every panic is contained (the refresher thread and the
/// fitter survive), the last good snapshot keeps serving, ingest keeps
/// acking, and the backoff retry ladder rebuilds the fit pipeline and
/// settles the table back to `Healthy`.
#[test]
fn injected_refit_panics_are_contained_and_retried_to_recovery() {
    const PANICS: u64 = 5;
    let (registry, server) = tcrowd_service::start("127.0.0.1:0", 2).expect("start server");
    let client = Client { addr: server.addr() };
    create_table(&client, "t", 40);
    let mut acked: Vec<Answer> = Vec::new();

    let batch = some_answers(30, 0);
    assert_eq!(post_answers(&client, "t", &batch).0, 200);
    acked.extend_from_slice(&batch);
    wait_settled(&client, "t", acked.len());
    let good_epoch = acked.len();

    // Arm the chaos budget, then trigger refreshes with new answers.
    let table = registry.get("t").expect("table");
    table.inject_refit_panics(PANICS);
    let batch = some_answers(12, 9_000);
    assert_eq!(post_answers(&client, "t", &batch).0, 200);
    acked.extend_from_slice(&batch);

    wait_until("refit degradation", || {
        stats(&client, "t").get("refit_failures").unwrap().as_u64().unwrap() >= 1
    });
    let s = stats(&client, "t");
    assert_ne!(s.get("health").unwrap().as_str(), Some("healthy"), "{s}");
    assert!(s.get("health_reason").unwrap().as_str().unwrap().contains("refit-failing"), "{s}");
    assert!(s.get("last_error").unwrap().as_str().unwrap().contains("panicked"), "{s}");
    // The last good snapshot keeps serving while the fit is broken.
    assert_eq!(s.get("epoch").unwrap().as_u64(), Some(good_epoch as u64));
    assert_reads_serve(&client, "t");
    assert_healthz_degraded(&client, "t");
    // Ingest still acks mid-degradation.
    let batch = some_answers(8, 11_000);
    assert_eq!(post_answers(&client, "t", &batch).0, 200);
    acked.extend_from_slice(&batch);

    // The backoff ladder burns the whole budget, then recovers.
    wait_settled(&client, "t", acked.len());
    let s = stats(&client, "t");
    assert_eq!(
        s.get("refit_failures").unwrap().as_u64(),
        Some(PANICS),
        "every armed panic must have been contained exactly once: {s}"
    );
    // `last_error` stays sticky for post-mortems even after recovery.
    assert!(s.get("last_error").unwrap().as_str().unwrap().contains("panicked"), "{s}");
    assert_served_equals_acked(&client, "t", &acked);
    let div = offline_z_divergence(&client, "t", &acked);
    assert!(div < 1e-6, "settled state diverges from offline infer by {div:.3e}");

    // Every contained panic is traced, and the health chain closes.
    assert_health_transitions_traced(&client, "t", &[]);
    let log = event_log(&client, "t");
    let panics = log.iter().filter(|(k, _)| k == "refit_panicked").count();
    assert_eq!(panics as u64, PANICS, "every contained panic must be traced: {log:?}");

    registry.shutdown();
    server.shutdown();
}
