//! Observability over the wire: `/metrics` Prometheus exposition covering
//! every instrumented subsystem (and passing the exposition lint), the
//! per-table `/events` lifecycle replay with correlation ids and `?since`
//! pagination, and the exhaustive `/stats` schema contract.

mod common;

use common::Client;
use std::path::PathBuf;
use std::sync::Arc;
use tcrowd_service::Json;
use tcrowd_store::{FsyncPolicy, Store};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("tcrowd_service_obs_tests")
        .join(format!("{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

const CREATE_BODY: &str = r#"{
    "id": "obs", "rows": 4,
    "refit_every": 100000, "refresh_interval_ms": 60000,
    "schema": {"columns": [
        {"name": "kind", "type": "categorical", "labels": ["x", "y"]},
        {"name": "size", "type": "continuous", "min": 0, "max": 10}
    ]}
}"#;

/// Every instrumented subsystem shows up in `/metrics` for a live durable
/// table — ingest counters, HTTP request histograms per endpoint, refit
/// phase timings, WAL + snapshot durations, health and trust gauges — and
/// the whole exposition passes the Prometheus text-format lint.
#[test]
fn metrics_exposition_covers_every_subsystem_and_lints_clean() {
    let dir = fresh_dir("metrics");
    let store = Arc::new(Store::open(&dir, FsyncPolicy::Always).unwrap());
    let (registry, server, _) =
        tcrowd_service::start_durable("127.0.0.1:0", 2, store).expect("start server");
    let client = Client { addr: server.addr() };

    assert_eq!(client.post("/tables", CREATE_BODY).0, 201);
    let (status, r) =
        client.post("/tables/obs/answers", r#"{"worker":1,"row":0,"col":0,"value":"x"}"#);
    assert_eq!(status, 200, "{r}");
    assert_eq!(client.get("/tables/obs/assignment?worker=2&k=2").0, 200);
    assert_eq!(client.post("/tables/obs/refresh", "").0, 200);

    let (status, headers, text) = client.get_raw("/metrics");
    assert_eq!(status, 200);
    assert_eq!(
        Client::header(&headers, "content-type"),
        Some("text/plain; version=0.0.4"),
        "{headers:?}"
    );
    tcrowd_obs::lint(&text).unwrap_or_else(|e| panic!("exposition lint: {e}\n{text}"));

    // Ingest counters count what was acked.
    assert!(text.contains("tcrowd_ingest_answers_total{table=\"obs\"} 1"), "{text}");
    assert!(text.contains("tcrowd_ingest_batches_total{table=\"obs\"} 1"), "{text}");
    // Refit phase timings recorded the explicit refresh.
    for h in ["tcrowd_refit_seconds", "tcrowd_em_estep_seconds", "tcrowd_em_mstep_seconds"] {
        assert!(text.contains(&format!("# TYPE {h} histogram")), "{h} typed\n{text}");
        assert!(text.contains(&format!("{h}_count{{table=\"obs\"}} 1")), "{h} observed\n{text}");
    }
    // Durability timings: the acked append and the published snapshot were
    // timed (fsync too, under FsyncPolicy::Always).
    assert!(text.contains("tcrowd_wal_append_seconds_count{table=\"obs\"} 1"), "{text}");
    assert!(!text.contains("tcrowd_wal_fsync_seconds_count{table=\"obs\"} 0"), "{text}");
    assert!(text.contains("tcrowd_snapshot_persist_seconds_count{table=\"obs\"} 1"), "{text}");
    // Health and trust gauges for the live table.
    assert!(text.contains("tcrowd_table_health{table=\"obs\"} 0"), "{text}");
    for g in ["tcrowd_quarantined_workers", "tcrowd_suspect_workers", "tcrowd_trust_seq"] {
        assert!(text.contains(&format!("{g}{{table=\"obs\"}} 0")), "{g}\n{text}");
    }
    // Request latency histograms, one series per (endpoint, method), with
    // ids collapsed out of the label.
    for endpoint in ["/tables/:id/answers", "/tables/:id/assignment", "/tables/:id/refresh"] {
        assert!(
            text.contains(&format!("tcrowd_http_request_seconds_count{{endpoint=\"{endpoint}\"")),
            "{endpoint}\n{text}"
        );
    }

    // Deleting the table drops its series from the exposition.
    assert_eq!(client.request("DELETE", "/tables/obs", None).0, 200);
    let (_, _, text) = client.get_raw("/metrics");
    assert!(!text.contains("table=\"obs\""), "deleted table still exposed:\n{text}");
    tcrowd_obs::lint(&text).unwrap();

    registry.shutdown();
    server.shutdown();
}

/// The `/events` ring replays the table lifecycle in order, threads the
/// ingest request's correlation id through, and paginates with
/// `?since=seq` — while the front end echoes `X-Request-Id` (client-sent
/// or server-generated) on every response.
#[test]
fn events_replay_lifecycle_with_correlation_ids_and_pagination() {
    let (registry, server) = tcrowd_service::start("127.0.0.1:0", 2).expect("start server");
    let client = Client { addr: server.addr() };
    assert_eq!(client.post("/tables", CREATE_BODY).0, 201);

    // A client-supplied correlation id is echoed back...
    let (status, headers, _) = client.raw_request(
        "POST",
        "/tables/obs/answers",
        &[("X-Request-Id", "corr-123")],
        Some(r#"{"worker":1,"row":0,"col":0,"value":"x"}"#),
    );
    assert_eq!(status, 200);
    assert_eq!(Client::header(&headers, "x-request-id"), Some("corr-123"), "{headers:?}");
    // ...and absent one, the server generates and reveals its own.
    let (_, headers, _) = client.get_raw("/healthz");
    let generated = Client::header(&headers, "x-request-id").expect("generated id");
    assert!(generated.starts_with("req-"), "{generated}");

    assert_eq!(client.post("/tables/obs/refresh", "").0, 200);

    // Full replay: ingest commit (with the correlation id) then the refit
    // start/publish pair, in sequence order.
    let (status, page) = client.get("/tables/obs/events");
    assert_eq!(status, 200, "{page}");
    assert_eq!(page.get("table").unwrap().as_str(), Some("obs"));
    assert_eq!(page.get("truncated").unwrap().as_bool(), Some(false));
    let events = page.get("events").unwrap().as_array().unwrap().to_vec();
    let kinds: Vec<&str> =
        events.iter().map(|e| e.get("kind").unwrap().as_str().unwrap()).collect();
    assert_eq!(kinds, ["ingest_committed", "refit_started", "refit_published"], "{page}");
    assert_eq!(events[0].get("request_id").unwrap().as_str(), Some("corr-123"));
    let seqs: Vec<u64> = events.iter().map(|e| e.get("seq").unwrap().as_u64().unwrap()).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "monotonic seqs: {seqs:?}");

    // Pagination: walking with max=1 re-yields the same stream.
    let mut walked = Vec::new();
    let mut since = 0u64;
    loop {
        let (_, p) = client.get(&format!("/tables/obs/events?since={since}&max=1"));
        let chunk = p.get("events").unwrap().as_array().unwrap();
        if chunk.is_empty() {
            break;
        }
        assert_eq!(chunk.len(), 1);
        walked.push(chunk[0].clone());
        since = p.get("next_since").unwrap().as_u64().unwrap();
    }
    assert_eq!(walked, events, "paged walk must equal the one-shot replay");
    // A caught-up reader sees an empty, non-truncated page.
    let (_, p) = client.get(&format!("/tables/obs/events?since={since}"));
    assert!(p.get("events").unwrap().as_array().unwrap().is_empty());
    assert_eq!(p.get("truncated").unwrap().as_bool(), Some(false));

    // Bad cursors are rejected, unknown tables are 404.
    assert_eq!(client.get("/tables/obs/events?since=nope").0, 400);
    assert_eq!(client.get("/tables/obs/events?max=x").0, 400);
    assert_eq!(client.get("/tables/ghost/events").0, 404);

    registry.shutdown();
    server.shutdown();
}

/// The exhaustive `/stats` schema contract: exactly these fields, in this
/// order. Adding a field to `snapshot_stats` without extending this list
/// (i.e. without deciding its coverage) fails the suite; so does dropping
/// or reordering one, which would break dashboards parsing the document.
#[test]
fn stats_schema_is_exhaustive() {
    const STATS_FIELDS: &[&str] = &[
        "id",
        "rows",
        "cols",
        "policy",
        "answers",
        "epoch",
        "pending",
        "refresh_lag_answers",
        "last_refit_ms",
        "last_estep_ms",
        "last_mstep_ms",
        "em_threads",
        "catchup_merged",
        "fitted_epoch",
        "workers",
        "refreshes",
        "refresh_age_ms",
        "em_iterations",
        "em_converged",
        "uptime_ms",
        "durable",
        "store_snapshot_epoch",
        "store_snapshot_links",
        "commit_groups",
        "commit_frames",
        "wal_segments",
        "health",
        "health_reason",
        "degraded_since_ms",
        "refit_failures",
        "persist_failures",
        "last_error",
        "max_pending",
        "trust_auto",
        "trust_seq",
        "suspect_workers",
        "quarantined_workers",
        "manual_quarantines",
        "rate_limited_batches",
        "worker_rate",
    ];
    let (registry, server) = tcrowd_service::start("127.0.0.1:0", 2).expect("start server");
    let client = Client { addr: server.addr() };
    assert_eq!(client.post("/tables", CREATE_BODY).0, 201);
    assert_eq!(client.post("/tables/obs/refresh", "").0, 200);
    let (status, stats) = client.get("/tables/obs/stats");
    assert_eq!(status, 200);
    let Json::Obj(fields) = &stats else { panic!("stats must be an object: {stats}") };
    let got: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        got, STATS_FIELDS,
        "/stats schema drifted — update STATS_FIELDS *and* the field's coverage"
    );
    registry.shutdown();
    server.shutdown();
}
