//! Durable-service crash recovery: the registry must come back from a data
//! directory with **zero acknowledged answers lost**, bit-identical logs,
//! and served truth that agrees with offline `TCrowd::infer` on the
//! recovered log — including when the crash tore the WAL mid-record.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use tcrowd_core::diagnostics::max_z_discrepancy;
use tcrowd_core::TCrowd;
use tcrowd_service::{TableConfig, TableRegistry};
use tcrowd_store::WAL_FILE;
use tcrowd_store::{FsyncPolicy, Store};
use tcrowd_tabular::{generate_dataset, Answer, CellId, GeneratorConfig, Value, WorkerId};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("tcrowd_service_recovery_tests")
        .join(format!("{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn store(dir: &PathBuf) -> Arc<Store> {
    Arc::new(Store::open(dir, FsyncPolicy::Flush).unwrap())
}

/// A config whose refresher stays out of the way (tests drive refreshes
/// explicitly, so epochs are deterministic).
fn manual_config() -> TableConfig {
    TableConfig {
        refit_every: usize::MAX,
        refresh_interval: Duration::from_secs(3600),
        ..Default::default()
    }
}

#[test]
fn durable_lifecycle_survives_restart_with_snapshot_warm_start() {
    let dir = fresh_dir("lifecycle");
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 20,
            columns: 4,
            num_workers: 12,
            answers_per_task: 4,
            ..Default::default()
        },
        21,
    );

    // ---- Session 1: create, ingest, refresh (publishes + store snapshot),
    // ingest a tail that is covered by the WAL only, then "crash" (drop the
    // registry without shutdown — refreshers die unjoined, files stay).
    let n_snap = d.answers.len() / 2;
    {
        let reg = TableRegistry::with_store(store(&dir));
        let t =
            reg.create(Some("celeb".into()), d.schema.clone(), d.rows(), manual_config()).unwrap();
        assert!(t.durable());
        t.submit(&d.answers.all()[..n_snap]).unwrap();
        assert!(t.refresh_now());
        assert_eq!(t.last_store_snapshot_epoch(), Some(n_snap as u64));
        // WAL-only tail: acknowledged but never snapshotted.
        for chunk in d.answers.all()[n_snap..].chunks(7) {
            t.submit(chunk).unwrap();
        }
        t.stop_refresher(); // joins the thread; files are left as-is
    }

    // ---- Session 2: recover and check everything.
    let reg = TableRegistry::with_store(store(&dir));
    let report = reg.recover().unwrap();
    assert_eq!(report.tables, 1);
    assert_eq!(report.answers, d.answers.len() as u64);
    assert_eq!(report.with_snapshot, 1, "recovery must use the store snapshot");
    assert_eq!(
        report.replayed,
        (d.answers.len() - n_snap) as u64,
        "only the WAL tail beyond the snapshot is replayed"
    );
    let t = reg.get("celeb").expect("table recovered");
    let snap = t.snapshot();
    // Zero acknowledged answers lost, bit-identical order.
    assert_eq!(snap.epoch, d.answers.len());
    assert_eq!(snap.log.to_vec(), d.answers.all());
    assert_eq!(t.ingested() as usize, d.answers.len());
    // A WAL tail extends past the snapshot, so recovery re-fits the full
    // log exactly the way the refresher would have (cold by default):
    // served truth ≡ offline inference on the recovered log — exact, and a
    // fortiori within the 1e-6 acceptance bound.
    let offline = TCrowd::default_full().infer(&d.schema, &snap.log.to_log());
    let gap = max_z_discrepancy(&snap.result, &offline);
    assert_eq!(snap.result.estimates(), offline.estimates());
    assert!(gap < 1e-6, "recovered served truth diverges from offline inference: {gap:.3e}");
    // The config round-tripped through the WAL Create record.
    assert_eq!(t.config.refit_every, usize::MAX);
    // The table keeps working: ingest + refresh + assign.
    let extra =
        Answer { worker: WorkerId(999), cell: CellId::new(0, 0), value: d.answers.all()[0].value };
    if d.schema.column_type(0).accepts(&extra.value) {
        t.submit(&[extra]).unwrap();
        assert!(t.refresh_now());
        assert_eq!(t.snapshot().epoch, d.answers.len() + 1);
    }
    let (_, picks, _) = t.assign(WorkerId(777), 3, None).unwrap();
    assert_eq!(picks.len(), 3);
    reg.shutdown();

    // ---- Session 3: one more restart must see session 2's appends too.
    let n_now = {
        let reg = TableRegistry::with_store(store(&dir));
        reg.recover().unwrap();
        let t = reg.get("celeb").unwrap();
        let n = t.snapshot().epoch;
        reg.shutdown();
        n
    };
    assert!(n_now >= d.answers.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_covering_the_full_log_republishes_the_precrash_fit_without_em() {
    // The steady state: crash right after a publish (+ snapshot). Recovery
    // must republish the exact pre-crash served state — one E-step at the
    // persisted parameters, zero EM iterations — and that state is itself
    // the cold fit of the log, so offline agreement is ~float-rounding.
    let dir = fresh_dir("full_snapshot");
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 15,
            columns: 4,
            num_workers: 10,
            answers_per_task: 4,
            ..Default::default()
        },
        25,
    );
    let precrash = {
        let reg = TableRegistry::with_store(store(&dir));
        let t = reg.create(Some("t".into()), d.schema.clone(), d.rows(), manual_config()).unwrap();
        t.submit(d.answers.all()).unwrap();
        assert!(t.refresh_now());
        assert_eq!(t.last_store_snapshot_epoch(), Some(d.answers.len() as u64));
        let snap = t.snapshot();
        t.stop_refresher();
        snap
    };
    let reg = TableRegistry::with_store(store(&dir));
    let report = reg.recover().unwrap();
    assert_eq!(report.with_snapshot, 1);
    assert_eq!(report.replayed, 0, "nothing to replay past a full-epoch snapshot");
    let t = reg.get("t").unwrap();
    let snap = t.snapshot();
    assert_eq!(snap.log.to_vec(), precrash.log.to_vec());
    assert_eq!(snap.result.iterations, 0, "full-epoch snapshot recovery must not run EM");
    // Recovered state ≡ pre-crash published state.
    let pre_gap = max_z_discrepancy(&snap.result, &precrash.result);
    assert!(pre_gap < 1e-9, "recovered state differs from the pre-crash state: {pre_gap:.3e}");
    // …and therefore ≡ offline inference on the log, within the 1e-6 bound.
    let offline = TCrowd::default_full().infer(&d.schema, &snap.log.to_log());
    let gap = max_z_discrepancy(&snap.result, &offline);
    assert!(gap < 1e-6, "recovered served truth diverges from offline inference: {gap:.3e}");
    reg.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_without_snapshot_is_exact_cold_replay() {
    let dir = fresh_dir("cold");
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 10,
            columns: 3,
            num_workers: 6,
            answers_per_task: 3,
            ..Default::default()
        },
        22,
    );
    {
        let reg = TableRegistry::with_store(store(&dir));
        let t = reg.create(Some("t".into()), d.schema.clone(), d.rows(), manual_config()).unwrap();
        t.submit(d.answers.all()).unwrap();
        // No refresh → no store snapshot: pure WAL recovery.
        t.stop_refresher();
    }
    let reg = TableRegistry::with_store(store(&dir));
    let report = reg.recover().unwrap();
    assert_eq!(report.with_snapshot, 0);
    assert_eq!(report.replayed, d.answers.len() as u64);
    let t = reg.get("t").unwrap();
    let snap = t.snapshot();
    assert_eq!(snap.log.to_vec(), d.answers.all());
    // Cold recovery runs the default model on the recovered log — the
    // published state is the same pure function of the log the service
    // normally serves, so offline agreement is exact.
    let offline = TCrowd::default_full().infer(&d.schema, &snap.log.to_log());
    assert_eq!(snap.result.estimates(), offline.estimates());
    assert_eq!(max_z_discrepancy(&snap.result, &offline), 0.0);
    reg.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deleted_tables_do_not_come_back() {
    let dir = fresh_dir("deleted");
    let d = generate_dataset(&GeneratorConfig { rows: 8, columns: 3, ..Default::default() }, 23);
    {
        let reg = TableRegistry::with_store(store(&dir));
        reg.create(Some("keep".into()), d.schema.clone(), d.rows(), manual_config()).unwrap();
        reg.create(Some("drop".into()), d.schema.clone(), d.rows(), manual_config()).unwrap();
        assert!(reg.remove("drop"));
        reg.shutdown();
    }
    let reg = TableRegistry::with_store(store(&dir));
    reg.recover().unwrap();
    assert_eq!(reg.list(), vec!["keep".to_string()]);
    reg.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Random schema-conforming answers (mixed datatypes, repeated workers).
fn random_stream(schema: &tcrowd_tabular::Schema, rows: u32, n: usize, seed: u64) -> Vec<Answer> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cols = schema.num_columns() as u32;
    (0..n)
        .map(|_| {
            let cell = CellId::new(rng.gen_range(0..rows), rng.gen_range(0..cols));
            let value = match schema.column_type(cell.col as usize) {
                tcrowd_tabular::ColumnType::Categorical { labels } => {
                    Value::Categorical(rng.gen_range(0..labels.len() as u32))
                }
                tcrowd_tabular::ColumnType::Continuous { min, max } => {
                    Value::Continuous(rng.gen_range(*min..*max))
                }
            };
            Answer { worker: WorkerId(rng.gen_range(0..6)), cell, value }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// THE crash-recovery property (service half): ingest N answers in
    /// random batches through a durable table, kill the WAL at a random
    /// byte offset, recover through the registry — the service serves
    /// exactly the longest checksummed prefix and its published truth
    /// matches offline `TCrowd::infer` on that prefix.
    #[test]
    fn served_truth_after_torn_crash_matches_offline_inference(
        n in 1usize..60,
        seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = fresh_dir(&format!("prop_{seed}_{n}"));
        let d = generate_dataset(
            &GeneratorConfig { rows: 8, columns: 3, num_workers: 6, ..Default::default() },
            24,
        );
        let answers = random_stream(&d.schema, d.rows() as u32, n, seed);
        let mut batch_ends = vec![0usize];
        {
            let reg = TableRegistry::with_store(store(&dir));
            let t = reg
                .create(Some("t".into()), d.schema.clone(), d.rows(), manual_config())
                .unwrap();
            let mut rng = StdRng::seed_from_u64(seed ^ 0x51CE);
            let mut at = 0;
            while at < answers.len() {
                let take = rng.gen_range(1..=4usize).min(answers.len() - at);
                t.submit(&answers[at..at + take]).unwrap();
                at += take;
                batch_ends.push(at);
            }
            t.stop_refresher();
        }
        // Tear the WAL at a random byte offset.
        let wal_path = {
            let s = store(&dir);
            s.table_dir("t").join(WAL_FILE)
        };
        let create_end =
            tcrowd_store::replay(&wal_path).unwrap().records[0].end_offset as usize;
        let full = std::fs::read(&wal_path).unwrap();
        let cut = ((full.len() as f64) * cut_frac).round() as usize;
        std::fs::write(&wal_path, &full[..cut]).unwrap();

        let reg = TableRegistry::with_store(store(&dir));
        let report = reg.recover();
        prop_assert!(report.is_ok(), "recovery must not abort: {:?}", report.err());
        match reg.get("t") {
            None => {
                // The Create record itself was torn, so the directory is
                // indistinguishable from a crashed, never-acknowledged
                // `POST /tables` and is garbage-collected. Legal exactly
                // when the cut landed inside the create frame.
                prop_assert!(
                    cut < create_end,
                    "table vanished although its create record was intact (cut {} >= {})",
                    cut, create_end
                );
            }
            Some(t) => {
                let snap = t.snapshot();
                // The recovered log is a batch-aligned prefix of what was
                // acknowledged (the longest checksummed prefix).
                prop_assert!(
                    batch_ends.contains(&snap.epoch),
                    "epoch {} is not a group-commit boundary {:?}", snap.epoch, batch_ends
                );
                prop_assert_eq!(snap.log.to_vec(), &answers[..snap.epoch]);
                // Served truth ≡ offline inference on the served prefix
                // (cold recovery fit — exact agreement, asserted at the
                // 1e-6 contract the acceptance criteria name).
                let offline = TCrowd::default_full().infer(&d.schema, &snap.log.to_log());
                let gap = max_z_discrepancy(&snap.result, &offline);
                prop_assert!(gap < 1e-6, "served/offline gap {:.3e}", gap);
                reg.shutdown();
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
