//! Concurrency torture: one table hammered by interleaved submit and
//! assignment threads (with the background refresher live) must end in a
//! state identical to a *serial replay of the same answer order* — the lock
//! protocol may interleave ingestion, refreshes and reads arbitrarily, but
//! it must not lose, duplicate or reorder state relative to the log it
//! committed.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tcrowd_core::{diagnostics::max_z_discrepancy, OnlineTCrowd, TCrowd};
use tcrowd_service::{TableConfig, TableRegistry};
use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerId};

#[test]
fn concurrent_ingest_and_assignment_equal_serial_replay() {
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 16,
            columns: 4,
            num_workers: 24,
            answers_per_task: 4,
            ..Default::default()
        },
        21,
    );
    let registry = Arc::new(TableRegistry::new());
    let table = registry
        .create(
            Some("torture".into()),
            d.schema.clone(),
            d.rows(),
            TableConfig {
                // Aggressive cadence + tiny threshold: the refresher re-fits
                // and publishes *while* the submitters run, maximising
                // publish/ingest/read interleavings.
                refit_every: 8,
                refresh_interval: Duration::from_millis(5),
                ..Default::default()
            },
        )
        .expect("create table");

    const SUBMITTERS: usize = 4;
    let accepted = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicBool::new(false));

    // Submit threads: each pushes an interleaved slice of the generated
    // stream in small random-sized batches.
    let submit_threads: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let table = Arc::clone(&table);
            let accepted = Arc::clone(&accepted);
            let mine: Vec<tcrowd_tabular::Answer> =
                d.answers.all().iter().skip(t).step_by(SUBMITTERS).copied().collect();
            std::thread::spawn(move || {
                let mut at = 0usize;
                let mut step = 1usize;
                while at < mine.len() {
                    let hi = (at + step).min(mine.len());
                    table.submit(&mine[at..hi]).expect("valid answers must be accepted");
                    accepted.fetch_add(hi - at, Ordering::SeqCst);
                    at = hi;
                    step = step % 5 + 1; // 1..=5, varies batch size
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    // Assignment/read threads: hammer the published snapshot while ingestion
    // runs. Every response must be internally consistent (in-range distinct
    // cells, fresh freeze) regardless of interleaving.
    let read_threads: Vec<_> = (0..2)
        .map(|t| {
            let table = Arc::clone(&table);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut served = 0usize;
                let mut worker = 1000 + t as u32;
                while !done.load(Ordering::SeqCst) {
                    let (snap, picks, _) = table
                        .assign(WorkerId(worker), 3, Some("inherent"))
                        .expect("assignment must not fail");
                    assert!(picks.len() <= 3);
                    let mut dedup = picks.clone();
                    dedup.sort();
                    dedup.dedup();
                    assert_eq!(dedup.len(), picks.len(), "duplicate cells in one HIT");
                    for c in &picks {
                        assert!((c.row as usize) < 16 && (c.col as usize) < 4);
                    }
                    assert_eq!(snap.matrix.len(), snap.epoch, "freeze must cover its epoch");
                    served += 1;
                    worker += 2;
                }
                served
            })
        })
        .collect();

    for t in submit_threads {
        t.join().expect("submitter");
    }
    done.store(true, Ordering::SeqCst);
    for t in read_threads {
        let served = t.join().expect("reader");
        assert!(served > 0, "reader thread should have been served");
    }

    // Zero dropped answers.
    assert_eq!(accepted.load(Ordering::SeqCst), d.answers.len());
    assert!(table.refresh_now() || table.pending() == 0);
    let snap = table.snapshot();
    assert_eq!(snap.epoch, d.answers.len(), "every accepted answer is published");
    assert_eq!(snap.log.len(), d.answers.len());
    assert_eq!(snap.matrix.len(), d.answers.len());

    // Determinism under the lock protocol: replay the *same* committed
    // answer order serially through a fresh OnlineTCrowd (the service's own
    // ingest machinery) and through a batch fit; both must reproduce the
    // published state exactly.
    let mut serial = OnlineTCrowd::empty(TCrowd::default_full(), d.schema.clone(), d.rows());
    serial.refit_every = usize::MAX;
    for &a in &snap.log.to_vec() {
        serial.add_answer(a);
    }
    serial.flush_refit();
    assert_eq!(serial.estimates(), snap.result.estimates(), "serial replay diverged");
    assert_eq!(max_z_discrepancy(serial.result(), &snap.result), 0.0);

    let batch = TCrowd::default_full().infer(&d.schema, &snap.log.to_log());
    assert_eq!(batch.estimates(), snap.result.estimates(), "batch fit diverged");
    assert_eq!(batch.iterations, snap.result.iterations);

    registry.shutdown();
}

/// The mid-fit race, hammered: submitters push answers continuously while a
/// dedicated thread drives EM refits back to back (on top of the live
/// background refresher), so fits constantly overlap ingestion and every
/// refresh has to catch up answers that arrived mid-fit. Three contracts:
///
/// * ingest is never blocked into an error and no answer is lost;
/// * every published snapshot is internally consistent — the log, freeze
///   and epoch agree, and `fitted_epoch + catchup_merged == epoch`;
/// * once ingest quiesces, a settling refresh makes the published state
///   equal a serial offline `TCrowd::infer` of the committed order within
///   1e-6 z-units (exactly, with cold refits).
#[test]
fn mid_fit_ingest_race_converges_to_offline_inference() {
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 24,
            columns: 4,
            num_workers: 24,
            answers_per_task: 6,
            ..Default::default()
        },
        77,
    );
    let registry = Arc::new(TableRegistry::new());
    let table = registry
        .create(
            Some("midfit".into()),
            d.schema.clone(),
            d.rows(),
            TableConfig {
                refit_every: 16,
                refresh_interval: Duration::from_millis(5),
                ..Default::default()
            },
        )
        .expect("create table");

    const SUBMITTERS: usize = 3;
    let accepted = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let submit_threads: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let table = Arc::clone(&table);
            let accepted = Arc::clone(&accepted);
            let mine: Vec<tcrowd_tabular::Answer> =
                d.answers.all().iter().skip(t).step_by(SUBMITTERS).copied().collect();
            std::thread::spawn(move || {
                let mut at = 0usize;
                let mut step = 1usize;
                while at < mine.len() {
                    let hi = (at + step).min(mine.len());
                    table.submit(&mine[at..hi]).expect("ingest must never be refused mid-fit");
                    accepted.fetch_add(hi - at, Ordering::SeqCst);
                    at = hi;
                    step = step % 4 + 1;
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    // The refit hammer: synchronous refreshes back to back, each one an EM
    // fit that overlaps ongoing ingestion (plus the background refresher's
    // own ticks — the fitter mutex serialises them).
    let refit_thread = {
        let table = Arc::clone(&table);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut refits = 0usize;
            let mut max_catchup = 0usize;
            while !done.load(Ordering::SeqCst) {
                if table.refresh_now() {
                    refits += 1;
                    max_catchup = max_catchup.max(table.snapshot().catchup_merged);
                }
                std::thread::yield_now();
            }
            (refits, max_catchup)
        })
    };

    // Snapshot invariants under fire.
    let invariant_thread = {
        let table = Arc::clone(&table);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::SeqCst) {
                let snap = table.snapshot();
                assert_eq!(snap.log.len(), snap.epoch, "shared log must cover the epoch");
                assert_eq!(snap.matrix.len(), snap.epoch, "freeze must cover the epoch");
                assert_eq!(
                    snap.fitted_epoch + snap.catchup_merged,
                    snap.epoch,
                    "catch-up bookkeeping must balance"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    for t in submit_threads {
        t.join().expect("submitter");
    }
    done.store(true, Ordering::SeqCst);
    let (refits, max_catchup) = refit_thread.join().expect("refit thread");
    invariant_thread.join().expect("invariant thread");
    assert!(refits > 0, "the refit hammer must have driven refreshes");
    assert_eq!(accepted.load(Ordering::SeqCst), d.answers.len());

    // Quiesce: settle until the published state is the exact fit of the
    // full committed order (at most two refreshes: one absorbs any tail,
    // one clears a residual catch-up).
    while table.needs_refresh() {
        table.refresh_now();
    }
    let snap = table.snapshot();
    assert_eq!(snap.epoch, d.answers.len(), "every accepted answer is published");
    assert_eq!(snap.catchup_merged, 0, "a settling refresh leaves no incremental residue");
    println!(
        "mid-fit torture: {refits} refreshes under load, max catch-up delta {max_catchup} answers"
    );

    // The committed order as served, replayed offline.
    let served = snap.log.to_log();
    let offline = TCrowd::default_full().infer(&d.schema, &served);
    let divergence = max_z_discrepancy(&offline, &snap.result);
    assert!(
        divergence <= 1e-6,
        "published state diverges from offline inference by {divergence:.3e}"
    );
    // Cold refits make it exact, not merely close.
    assert_eq!(offline.estimates(), snap.result.estimates());

    registry.shutdown();
}

/// Multiple tables ingest and refresh independently: concurrent traffic on
/// one table must not perturb another's state.
#[test]
fn tables_are_isolated() {
    let d1 = generate_dataset(
        &GeneratorConfig { rows: 8, columns: 3, num_workers: 8, ..Default::default() },
        31,
    );
    let d2 = generate_dataset(
        &GeneratorConfig { rows: 6, columns: 2, num_workers: 6, ..Default::default() },
        32,
    );
    let registry = Arc::new(TableRegistry::new());
    let cfg = || TableConfig {
        refit_every: 4,
        refresh_interval: Duration::from_millis(5),
        ..Default::default()
    };
    let t1 = registry.create(Some("a".into()), d1.schema.clone(), d1.rows(), cfg()).unwrap();
    let t2 = registry.create(Some("b".into()), d2.schema.clone(), d2.rows(), cfg()).unwrap();

    let h1 = {
        let t1 = Arc::clone(&t1);
        let answers = d1.answers.all().to_vec();
        std::thread::spawn(move || {
            for chunk in answers.chunks(3) {
                t1.submit(chunk).unwrap();
            }
        })
    };
    for chunk in d2.answers.all().chunks(3) {
        t2.submit(chunk).unwrap();
    }
    h1.join().unwrap();
    t1.refresh_now();
    t2.refresh_now();

    assert_eq!(t1.snapshot().epoch, d1.answers.len());
    assert_eq!(t2.snapshot().epoch, d2.answers.len());
    let b1 = TCrowd::default_full().infer(&d1.schema, &d1.answers);
    // Table 1 received d1's answers in chunk order = original order.
    assert_eq!(t1.snapshot().result.estimates(), b1.estimates());
    let b2 = TCrowd::default_full().infer(&d2.schema, &d2.answers);
    assert_eq!(t2.snapshot().result.estimates(), b2.estimates());
    registry.shutdown();
}
