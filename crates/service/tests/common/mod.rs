//! Minimal std-`TcpStream` HTTP/JSON client shared by the service
//! integration tests — deliberately independent of the server's own request
//! machinery so the tests exercise the real wire format.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use tcrowd_service::Json;

pub struct Client {
    pub addr: SocketAddr,
}

impl Client {
    /// One request over a fresh connection; returns (status, parsed body).
    pub fn request(&self, method: &str, path: &str, body: Option<&str>) -> (u16, Json) {
        let (status, _, json) = self.request_with_headers(method, path, body);
        (status, json)
    }

    /// Like [`Self::request`], also returning the response headers as
    /// lowercase `(name, value)` pairs (for `Retry-After` assertions).
    pub fn request_with_headers(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> (u16, Vec<(String, String)>, Json) {
        let mut stream = TcpStream::connect(self.addr).expect("connect");
        let body = body.unwrap_or("");
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: \
             {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(raw.as_bytes()).expect("write request");
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut len = 0usize;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header");
            if line.trim_end().is_empty() {
                break;
            }
            if let Some((name, value)) = line.trim_end().split_once(':') {
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                len = v.trim().parse().expect("content-length");
            }
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).expect("body");
        let text = String::from_utf8(body).expect("utf-8 body");
        let json = tcrowd_service::json::parse(&text)
            .unwrap_or_else(|e| panic!("unparsable body {text:?}: {e}"));
        (status, headers, json)
    }

    /// First value of a (lowercase) response header from
    /// [`Self::request_with_headers`] output.
    #[allow(dead_code)]
    pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
        headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    pub fn get(&self, path: &str) -> (u16, Json) {
        self.request("GET", path, None)
    }

    pub fn post(&self, path: &str, body: &str) -> (u16, Json) {
        self.request("POST", path, Some(body))
    }

    /// A GET whose body is returned as raw text (for `/metrics`, which is
    /// Prometheus exposition, not JSON). Returns
    /// `(status, lowercase headers, body text)`.
    #[allow(dead_code)]
    pub fn get_raw(&self, path: &str) -> (u16, Vec<(String, String)>, String) {
        self.raw_request("GET", path, &[], None)
    }

    /// One request with caller-chosen extra headers, body returned as raw
    /// text (for `X-Request-Id` correlation tests).
    #[allow(dead_code)]
    pub fn raw_request(
        &self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> (u16, Vec<(String, String)>, String) {
        let mut stream = TcpStream::connect(self.addr).expect("connect");
        let body = body.unwrap_or("");
        let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n");
        for (name, value) in extra_headers {
            raw.push_str(&format!("{name}: {value}\r\n"));
        }
        raw.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
        stream.write_all(raw.as_bytes()).expect("write request");
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut len = 0usize;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header");
            if line.trim_end().is_empty() {
                break;
            }
            if let Some((name, value)) = line.trim_end().split_once(':') {
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                len = v.trim().parse().expect("content-length");
            }
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).expect("body");
        (status, headers, String::from_utf8(body).expect("utf-8 body"))
    }
}
