//! # tcrowd-service
//!
//! A multi-table crowdsourcing **service layer** over the incremental
//! T-Crowd pipeline: a std-only HTTP/1.1 JSON API plus a background
//! refresher per table. This is the paper's live-platform setting (Fig. 1,
//! Algorithm 2) made operational — workers request tasks and submit answers
//! over the network while the system interleaves collection with inference:
//!
//! ```text
//!   POST /tables ────────────────▶ TableRegistry ──▶ TableState (one per table)
//!                                                        │
//!   POST /tables/:id/answers ──▶ ingest Mutex<AnswerLog>      (O(1) push per
//!                                    │                         answer — nothing
//!                                    │                         else under the lock)
//!                         refresher thread (per table, fitter mutex):
//!                            O(Δ) tail slice under the ingest lock
//!                            ─▶ delta-merge + warm/cold EM OUTSIDE the lock
//!                            ─▶ O(Δ') catch-up slice for mid-fit arrivals
//!                                    │
//!                                    ▼ publish atomically (O(Δ): SharedLog +
//!                                      Arc<AnswerMatrix>, no deep clones)
//!   GET /tables/:id/assignment ─▶ RwLock<Arc<Snapshot>>  (shared log@epoch,
//!   GET /tables/:id/truth ──────▶   frozen AnswerMatrix, InferenceResult) —
//!   GET /tables/:id/stats ──────▶   readers never block ingestion
//! ```
//!
//! Reads are served from the last *published snapshot* — a consistent
//! `(log, freeze, fit)` triple at one epoch — so assignment and truth
//! queries proceed concurrently with ingestion and with each other; only
//! the refresher (or an explicit `POST …/refresh`) moves the epoch forward.
//! EM itself **never runs under the ingest lock**: collection keeps
//! flowing during a refit (`bench_service` measures the ingest-stall ratio
//! and CI gates it), and the answers that land mid-fit are folded in by a
//! catch-up merge before the publish. With cold re-fits (the default) a
//! quiescent refresh makes the published state a pure function of the
//! collected answer order: replaying the served log through
//! `TCrowd::infer` offline reproduces the service's estimates exactly,
//! which the concurrency tests and `bench_service` assert.
//!
//! Everything is `std`-only (the offline build has no `serde`/`hyper`):
//! [`json`] is a ~300-line JSON tree/parser, [`http`] a
//! `TcpListener` + worker-thread-pool front end with keep-alive.
//!
//! ## Durability
//!
//! A registry built over a [`tcrowd_store::Store`] ([`start_durable`] /
//! [`TableRegistry::with_store`]) makes every table persistent: ingest
//! batches are group-committed to a per-table CRC-framed write-ahead log
//! *before* they are acknowledged, each published snapshot appends an
//! **incremental store-snapshot delta** (the answers since the last
//! snapshot + fit parameters + chained WAL offset — `O(Δ)`, collapsed into
//! a full base periodically), and boot recovers every table — torn WAL
//! tails truncated at the first bad checksum, the pre-crash served state
//! republished without re-running EM when the snapshot chain covers the
//! log (see [`table::TableState::recover`]). `GET …/stats` reports
//! `durable`, `store_snapshot_epoch` and `store_snapshot_links`; a WAL
//! failure turns `POST …/answers` into a 503 with nothing ingested, so
//! clients may retry verbatim.
//!
//! ## Graceful degradation
//!
//! Tables survive disk failures, refit panics and overload without ever
//! dropping an acknowledged answer or refusing a read. Each table runs a
//! health state machine over three independent failure axes — **refit**
//! (a panicked/failed EM refit leaves the last good snapshot served and
//! retries with exponential backoff + jitter), **persist** (a failed
//! store-snapshot write keeps serving and re-attempts in the background),
//! and **WAL** (a broken log flips ingest to `503 Retry-After` while reads
//! keep working, then is rebuilt from the in-memory answer log — exactly
//! the acked set — by the refresher). Lock poisoning is recovered
//! everywhere, so one panicked thread never bricks a table. A `max_pending`
//! bound (per table, or server-wide via `serve --max-pending`) answers
//! `429 Retry-After` when the refresher falls too far behind. `GET
//! …/stats` reports `health`, `degraded_since_ms`, `refit_failures`,
//! `persist_failures` and `last_error`; `GET /healthz` aggregates per-table
//! health. The `chaos` test suite drives all of this with injected fault
//! schedules ([`tcrowd_store::FaultyIo`]).
//!
//! ## Worker trust & quarantine
//!
//! Every refit scores each worker from the fitted quality posteriors
//! ([`tcrowd_trust::score_workers`]: fitted quality, or a shadow quality
//! for already-excluded workers, plus a pairwise-agreement collusion
//! signal) and — when `trust_auto` is on — walks a hysteresis state
//! machine `Trusted → Suspect → Quarantined` with separate enter/exit
//! thresholds so scores hovering at a boundary don't flap between refits.
//! Quarantine is a **fit-level filter**, never a data mutation: the
//! answer log and WAL keep every answer, EM simply runs over a view that
//! excludes the quarantined workers' answers
//! ([`tcrowd_core::FitState::set_exclusions`]), so releasing a worker is
//! instant and bit-identically restores the unfiltered fit. Decisions are
//! durable — each change appends a full-replacement quarantine record (WAL
//! record kind 4) before it takes effect, and recovery reapplies the
//! latest set. Manual decisions (`POST …/workers/:w/quarantine`) pin the
//! worker against auto-release; `…/release` un-pins. A per-worker
//! token-bucket rate limit (`worker_rate`/`worker_burst`) refuses
//! flooding workers at ingest with `429 Retry-After`. `GET …/workers`
//! serves the trust report straight off the published snapshot.
//!
//! ## Endpoints
//!
//! | Method & path | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness + table count + per-table health aggregation (served from health gauges — no table locks) |
//! | `GET /metrics` | Prometheus text exposition: latency histograms, counters, health/trust gauges |
//! | `GET /tables` | hosted table ids |
//! | `POST /tables` | create a table (body below) |
//! | `DELETE /tables/:id` | drop a table and its refresher |
//! | `GET /tables/:id/assignment?worker=U[&k=K][&policy=P]` | top-`k` cells for worker `U` from the current snapshot |
//! | `POST /tables/:id/answers` | ingest one answer or `{"answers": [...]}` |
//! | `GET /tables/:id/answers` | dump the published answer log |
//! | `GET /tables/:id/truth[?z=1]` | current estimates (or z-space posteriors) |
//! | `GET /tables/:id/stats` | ingest/refresh/EM/trust counters |
//! | `POST /tables/:id/refresh` | force a re-fit + publish now |
//! | `GET /tables/:id/workers` | per-worker trust report (answers, quality, score, state) |
//! | `POST /tables/:id/workers/:w/quarantine` | manually quarantine worker `w` (WAL-durable) |
//! | `POST /tables/:id/workers/:w/release` | release worker `w` |
//! | `GET /tables/:id/events?since=S[&max=N]` | lifecycle event trace (`seq > S`), `tcrowd events` dumps it |
//!
//! ## Observability
//!
//! The [`obs`] module threads a [`tcrowd_obs::Registry`] through every
//! table: per-endpoint request-latency histograms, ingest counters, EM
//! phase timings, WAL append/fsync and snapshot-persist durations (routed
//! from `tcrowd-store` through its `ObsSink` trait), health and trust
//! gauges — all exposed at `GET /metrics`. Each table also keeps a
//! bounded ring of structured lifecycle events at `GET …/events`, with
//! `?since=seq` pagination that survives ring wraparound. Every request
//! carries a correlation id: the `x-request-id` header is honored when
//! present, generated otherwise, always echoed in the response, and
//! attached to the events the request causes. `bench_obs` measures the
//! instrumentation overhead and CI gates it at ≤5% of ingest throughput.
//!
//! ## Wire format
//!
//! `POST /tables` body:
//!
//! ```json
//! {
//!   "id": "celebrity",              // optional; "table-N" otherwise
//!   "rows": 100,
//!   "schema": {
//!     "name": "Celebrity", "key": "Picture",
//!     "columns": [
//!       {"name": "Nationality", "type": "categorical", "labels": ["US", "UK"]},
//!       {"name": "Age",         "type": "continuous", "min": 0, "max": 100}
//!     ]
//!   },
//!   "policy": "structure-aware",    // assignment default; see policy names
//!   "refit_every": 64,              // pending answers that wake the refresher
//!   "refresh_interval_ms": 200,     // refresher cadence
//!   "warm_refits": false,           // warm-start re-fits (latency over replayability)
//!   "max_answers_per_cell": null,   // optional redundancy cap
//!   "seed": 1                       // stochastic-policy seed
//! }
//! ```
//!
//! Categorical cardinality may be given as `"cardinality": k` instead of
//! labels. An answer is `{"worker": 7, "row": 3, "col": 1, "value": v}` —
//! `col` accepts a column name, `value` is a number for continuous columns
//! and a label index *or* label string for categorical ones; responses
//! encode categorical values as label strings. `truth?z=1` returns, per
//! cell, `{"probs": [...]}` (categorical) or `{"mean": m, "var": v}`
//! (continuous) in z-space — the representation behind the warm/cold 1e-6
//! agreement contract. Errors are `{"error": "..."}` with a 4xx/5xx status.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod json;
pub mod obs;
pub mod policy;
pub mod registry;
pub mod table;

pub use http::{serve, Handler, Request, Response, ServerHandle};
pub use json::Json;
pub use obs::{ServiceObs, TableObs};
pub use policy::{make_policy, POLICY_NAMES};
pub use registry::{RecoveryReport, TableRegistry};
pub use table::{
    Durability, HealthView, Snapshot, TableConfig, TableState, TrustView, WorkerStatus,
};

use std::sync::Arc;

/// Start the full service: an empty [`TableRegistry`] served on `addr`
/// (port 0 picks an ephemeral port) by `threads` worker threads. Returns
/// the registry (for in-process orchestration and shutdown) and the running
/// server handle.
pub fn start(addr: &str, threads: usize) -> std::io::Result<(Arc<TableRegistry>, ServerHandle)> {
    serve_registry(Arc::new(TableRegistry::new()), addr, threads)
}

/// Start the **durable** service: tables persist into `store` (WAL before
/// ack, snapshot after publish) and every table already in the store is
/// recovered before the listener accepts its first request — no window
/// where a client can observe a booted-but-amnesiac service. Returns the
/// recovery report alongside the registry and server handle.
pub fn start_durable(
    addr: &str,
    threads: usize,
    store: Arc<tcrowd_store::Store>,
) -> std::io::Result<(Arc<TableRegistry>, ServerHandle, RecoveryReport)> {
    let registry = Arc::new(TableRegistry::with_store(store));
    let report =
        registry.recover().map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let (registry, handle) = serve_registry(registry, addr, threads)?;
    Ok((registry, handle, report))
}

fn serve_registry(
    registry: Arc<TableRegistry>,
    addr: &str,
    threads: usize,
) -> std::io::Result<(Arc<TableRegistry>, ServerHandle)> {
    let handler_registry = Arc::clone(&registry);
    let handle = http::serve(
        addr,
        threads,
        Arc::new(move |req: &Request| {
            let t = std::time::Instant::now();
            let resp = api::route(&handler_registry, req);
            handler_registry.obs().observe_request(
                &req.method,
                obs::endpoint_label(&req.path),
                t.elapsed(),
            );
            resp
        }),
    )?;
    Ok((registry, handle))
}
