//! Per-table service state: lock-split ingest/read/fit paths, the
//! background refresher thread, and the durability hooks into
//! `tcrowd-store`.
//!
//! Each hosted table runs the paper's online loop (Fig. 1 / Algorithm 2)
//! with the request path split in **three**:
//!
//! * **Ingest** (`POST …/answers`) appends to the [`AnswerLog`] behind a
//!   `Mutex` — an `O(1)` log push per answer, nothing else. On a durable
//!   table the batch is first framed into the write-ahead log (one
//!   group-committed record per batch, flushed/fsynced per the store's
//!   [`tcrowd_store::FsyncPolicy`]) **before** it enters memory or is
//!   acknowledged: an acked answer is a durable answer.
//! * **Reads** (assignment, truth, stats) share an immutable [`Snapshot`]
//!   behind an `RwLock<Arc<…>>`: the [`SharedLog`] prefix at the snapshot
//!   epoch, the frozen [`AnswerMatrix`] (behind an `Arc`), the last
//!   published [`InferenceResult`] and a pre-fitted [`CorrelationModel`].
//!   Readers clone the `Arc` and never contend with ingestion.
//! * **Fits** run under a separate *fitter* mutex and **never hold the
//!   ingest lock while EM runs**. A refresh holds the ingest lock only for
//!   `O(Δ)` work — twice, briefly:
//!
//! ```text
//!   lock ingest ── slice log tail since fit epoch (O(Δ) copy) ── unlock
//!        │
//!        ▼  (ingestion keeps flowing)
//!   merge_delta into the evolving freeze ── EM refit (warm or cold)
//!        │
//!   lock ingest ── slice mid-fit arrivals (O(Δ')) + WAL sync/position ── unlock
//!        │
//!        ▼
//!   catch-up merge (freeze + §5.1 incremental posterior per answer)
//!        │
//!   publish Arc<Snapshot> atomically ── persist an incremental store
//!                                        snapshot (answers since the last
//!                                        one + chained WAL offset)
//! ```
//!
//! The publish itself is `O(Δ)` too: the snapshot's log is a structurally
//! shared [`SharedLog`] (appending the delta shares every older chunk) and
//! its freeze is an `Arc` handed over from the fitter — no `O(n)`
//! log/matrix/fit deep-clone ever happens under *any* lock.
//!
//! With cold refits (the default) a snapshot published with an **empty**
//! catch-up delta is a pure function of the committed answer order — the
//! 1e-6 offline-agreement gates rely on it. A snapshot that did fold in
//! mid-fit arrivals marks them in [`Snapshot::catchup_merged`]: those
//! answers entered the freeze and the posterior incrementally (§5.1) and
//! become exact at the next refit.
//!
//! Durability is `O(Δ)` as well: each publish appends an incremental store
//! snapshot *delta* (the answers since the last snapshot plus the chained
//! WAL offset); the chain is collapsed into a fresh full base once it
//! grows past [`SNAPSHOT_CHAIN_MAX_LINKS`] links or as many answers as the
//! base itself (geometric, so amortised cost stays linear in the delta).
//!
//! Deletion uses a **tombstone guard**: `TableRegistry::remove` marks the
//! table deleted *before* joining the refresher, so a refresh that is
//! mid-refit when the table dies can never publish (or persist a store
//! snapshot for) a dead table.

use crate::obs::{TableObs, HEALTH_DEGRADED, HEALTH_HEALTHY, HEALTH_RECOVERING};
use crate::policy::make_policy;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::time::{Duration, Instant};
use tcrowd_core::{
    AssignmentContext, CorrelationModel, FitParams, FitState, InferenceResult, TCrowd,
};
use tcrowd_store::{
    compact_cold_segments, count_segments, remove_snapshot, remove_snapshot_deltas, rewrite_wal,
    write_snapshot_delta_observed, write_snapshot_observed, ChainInfo, CommitSink, CommitStatsView,
    CommittedBatch, DurableMark, GroupCommit, IoHandle, QuarantineEntry, Recovered, SnapshotDelta,
    TableMeta, TableSnapshot, Wal, WalPosition, WAL_FILE,
};
use tcrowd_tabular::{Answer, AnswerLog, AnswerMatrix, CellId, Schema, SharedLog, WorkerId};
use tcrowd_trust::{advance, score_workers, TrustConfig, TrustState, WorkerTrust};

/// Chain links after which the next store snapshot collapses into a full
/// base (bounds recovery's chain walk and the table directory's file
/// count).
pub const SNAPSHOT_CHAIN_MAX_LINKS: u64 = 32;
/// Collapse is also triggered once the chain carries at least this many
/// answers *and* as many as the base — geometric growth, so the amortised
/// serialization cost per published answer stays constant.
const SNAPSHOT_CHAIN_MIN_COLLAPSE: u64 = 1024;

/// Per-table service policy knobs (the `POST /tables` request body).
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// Default assignment policy (a [`make_policy`] name).
    pub policy: String,
    /// Pending-answer threshold that wakes the refresher immediately.
    pub refit_every: usize,
    /// Refresher cadence: every tick with pending answers re-fits and
    /// publishes, threshold reached or not.
    pub refresh_interval: Duration,
    /// Warm-start re-fits from the previous published fit (see
    /// `TCrowd::infer_matrix_warm`). Off by default: cold re-fits make the
    /// published state a pure function of the collected log, which the
    /// determinism tests and the bench's offline-agreement gate rely on.
    pub warm_refits: bool,
    /// Optional per-cell redundancy cap enforced at assignment time.
    pub max_answers_per_cell: Option<usize>,
    /// Seed for stochastic policies (random baseline, entity grouping).
    pub seed: u64,
    /// Backpressure bound: when the refresh lag ([`TableState::pending`])
    /// reaches this many answers, ingest is refused with an `overloaded:`
    /// error (HTTP 429 + `Retry-After`) until the refresher catches up —
    /// bounding how stale the served snapshot can get under overload.
    /// `None` = unbounded (the default).
    pub max_pending: Option<usize>,
    /// Run the trust state machine automatically on every refit: workers
    /// whose trust score pins near chance (or who show a collusion signal)
    /// are demoted `Trusted → Suspect → Quarantined` and auto-promoted back
    /// when their score recovers past the hysteresis exit thresholds. Off
    /// by default — manual quarantine always works regardless.
    pub trust_auto: bool,
    /// Thresholds for the trust scorer and hysteresis state machine.
    pub trust: TrustConfig,
    /// Per-worker ingest rate limit in answers/second (token bucket;
    /// `0` = unlimited, the default). A worker over budget gets the whole
    /// batch refused with an `overloaded:` error (HTTP 429 + `Retry-After`).
    pub worker_rate: f64,
    /// Token-bucket burst capacity for [`TableConfig::worker_rate`].
    pub worker_burst: u32,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            policy: "structure-aware".to_string(),
            refit_every: 64,
            refresh_interval: Duration::from_millis(200),
            warm_refits: false,
            max_answers_per_cell: None,
            seed: 1,
            max_pending: None,
            trust_auto: false,
            trust: TrustConfig::default(),
            worker_rate: 0.0,
            worker_burst: 64,
        }
    }
}

impl TableConfig {
    /// Serialize as the sorted key/value pairs the store's `TableMeta`
    /// persists (the WAL Create record).
    pub fn to_kv(&self) -> Vec<(String, String)> {
        let mut kv = vec![
            (
                "max_answers_per_cell".to_string(),
                self.max_answers_per_cell.map(|v| v.to_string()).unwrap_or_default(),
            ),
            (
                "max_pending".to_string(),
                self.max_pending.map(|v| v.to_string()).unwrap_or_default(),
            ),
            ("policy".to_string(), self.policy.clone()),
            ("refit_every".to_string(), self.refit_every.to_string()),
            (
                "refresh_interval_ms".to_string(),
                (self.refresh_interval.as_millis() as u64).to_string(),
            ),
            ("seed".to_string(), self.seed.to_string()),
            ("trust_auto".to_string(), self.trust_auto.to_string()),
            ("trust_collusion_agreement".to_string(), self.trust.collusion_agreement.to_string()),
            (
                "trust_collusion_collisions".to_string(),
                self.trust.collusion_value_collisions.to_string(),
            ),
            ("trust_collusion_overlap".to_string(), self.trust.collusion_min_overlap.to_string()),
            ("trust_min_answers".to_string(), self.trust.min_answers.to_string()),
            ("trust_quarantine_enter".to_string(), self.trust.quarantine_enter.to_string()),
            ("trust_quarantine_exit".to_string(), self.trust.quarantine_exit.to_string()),
            ("trust_suspect_enter".to_string(), self.trust.suspect_enter.to_string()),
            ("trust_suspect_exit".to_string(), self.trust.suspect_exit.to_string()),
            ("warm_refits".to_string(), self.warm_refits.to_string()),
            ("worker_burst".to_string(), self.worker_burst.to_string()),
            ("worker_rate".to_string(), self.worker_rate.to_string()),
        ];
        kv.sort();
        kv
    }

    /// Rebuild from persisted key/value pairs. Missing keys take defaults,
    /// unknown keys are ignored — config can evolve without a WAL format
    /// change in either direction.
    pub fn from_kv(kv: &[(String, String)]) -> TableConfig {
        let mut config = TableConfig::default();
        for (k, v) in kv {
            match k.as_str() {
                "policy" if !v.is_empty() => config.policy = v.clone(),
                "refit_every" => {
                    if let Ok(n) = v.parse() {
                        config.refit_every = n;
                    }
                }
                "refresh_interval_ms" => {
                    if let Ok(ms) = v.parse() {
                        config.refresh_interval = Duration::from_millis(ms);
                    }
                }
                "warm_refits" => config.warm_refits = v == "true",
                "max_answers_per_cell" => config.max_answers_per_cell = v.parse().ok(),
                "max_pending" => config.max_pending = v.parse().ok(),
                "seed" => {
                    if let Ok(s) = v.parse() {
                        config.seed = s;
                    }
                }
                "trust_auto" => config.trust_auto = v == "true",
                "trust_min_answers" => {
                    if let Ok(n) = v.parse() {
                        config.trust.min_answers = n;
                    }
                }
                "trust_suspect_enter" => {
                    if let Ok(x) = v.parse() {
                        config.trust.suspect_enter = x;
                    }
                }
                "trust_suspect_exit" => {
                    if let Ok(x) = v.parse() {
                        config.trust.suspect_exit = x;
                    }
                }
                "trust_quarantine_enter" => {
                    if let Ok(x) = v.parse() {
                        config.trust.quarantine_enter = x;
                    }
                }
                "trust_quarantine_exit" => {
                    if let Ok(x) = v.parse() {
                        config.trust.quarantine_exit = x;
                    }
                }
                "trust_collusion_overlap" => {
                    if let Ok(n) = v.parse() {
                        config.trust.collusion_min_overlap = n;
                    }
                }
                "trust_collusion_agreement" => {
                    if let Ok(x) = v.parse() {
                        config.trust.collusion_agreement = x;
                    }
                }
                "trust_collusion_collisions" => {
                    if let Ok(n) = v.parse() {
                        config.trust.collusion_value_collisions = n;
                    }
                }
                "worker_rate" => {
                    if let Ok(x) = v.parse() {
                        config.worker_rate = x;
                    }
                }
                "worker_burst" => {
                    if let Ok(n) = v.parse() {
                        config.worker_burst = n;
                    }
                }
                _ => {}
            }
        }
        config
    }
}

/// Per-worker trust bookkeeping: the hysteresis state plus whether an
/// operator pinned it (`manual` entries are never auto-released).
#[derive(Debug, Clone, Copy)]
struct TrustEntry {
    state: TrustState,
    manual: bool,
}

/// The table's trust registry. Lock order: this mutex may be held while
/// taking the WAL mutex (so quarantine decisions serialise their
/// full-replacement WAL records in decision order) — never the reverse.
struct TrustRegistry {
    /// Workers in a non-`Trusted` state, or operator-pinned. Auto entries
    /// that recover to `Trusted` are dropped, keeping the map at the size
    /// of the problem rather than the workforce.
    states: BTreeMap<WorkerId, TrustEntry>,
    /// The quarantine set last durably appended to the WAL — compared
    /// before every append so an unchanged set never writes a record.
    persisted: Vec<QuarantineEntry>,
}

/// The quarantined subset of a trust registry, sorted by worker.
fn quarantined_set(states: &BTreeMap<WorkerId, TrustEntry>) -> Vec<QuarantineEntry> {
    states
        .iter()
        .filter(|(_, e)| e.state == TrustState::Quarantined)
        .map(|(&w, e)| QuarantineEntry { worker: w, manual: e.manual })
        .collect()
}

/// One worker's row in the published trust report.
#[derive(Debug, Clone)]
pub struct WorkerStatus {
    /// Evidence and scores from [`tcrowd_trust::score_workers`] (answer
    /// count, fitted or shadow quality, collusion signal).
    pub trust: WorkerTrust,
    /// Hysteresis state at publish time.
    pub state: TrustState,
    /// Operator-pinned (manual quarantine).
    pub manual: bool,
}

/// The trust report published with a [`Snapshot`]: every scored worker,
/// the quarantine decision set, and the exclusion set the published fit
/// actually ran under. Readers get it with the snapshot's `Arc` clone —
/// `GET …/workers` never takes the trust or fitter lock.
#[derive(Debug, Clone)]
pub struct TrustView {
    /// Per-worker rows, ascending by worker id.
    pub workers: Vec<WorkerStatus>,
    /// The quarantine decision set when this snapshot was published.
    pub quarantine: Vec<QuarantineEntry>,
    /// The workers the published fit excluded (lags `quarantine` by at
    /// most one refresh).
    pub excluded: Vec<WorkerId>,
    /// The table's trust sequence number at publish.
    pub seq: u64,
}

/// Build the published trust view: the score report overlaid with registry
/// states, plus registry-only workers (e.g. quarantined before their first
/// answer) appended with empty evidence.
fn build_trust_view(
    report: Vec<WorkerTrust>,
    states: &BTreeMap<WorkerId, TrustEntry>,
    quarantine: Vec<QuarantineEntry>,
    excluded: Vec<WorkerId>,
    seq: u64,
) -> TrustView {
    let mut workers: Vec<WorkerStatus> = report
        .into_iter()
        .map(|t| {
            let e = states.get(&t.worker);
            WorkerStatus {
                state: e.map_or(TrustState::Trusted, |e| e.state),
                manual: e.is_some_and(|e| e.manual),
                trust: t,
            }
        })
        .collect();
    for (&w, e) in states {
        if !workers.iter().any(|s| s.trust.worker == w) {
            workers.push(WorkerStatus {
                trust: WorkerTrust {
                    worker: w,
                    answers: 0,
                    quality: None,
                    score: 1.0,
                    max_agreement: 0.0,
                    partner: None,
                    value_collisions: 0,
                },
                state: e.state,
                manual: e.manual,
            });
        }
    }
    workers.sort_by_key(|s| s.trust.worker);
    TrustView { workers, quarantine, excluded, seq }
}

/// Per-worker token bucket for the ingest rate limit.
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// An immutable published view of one table: everything the read endpoints
/// serve, consistent at one epoch. Publishing one costs `O(Δ)` — the log
/// is structurally shared and the freeze is an `Arc`.
pub struct Snapshot {
    /// The collected answers up to [`Snapshot::epoch`], in arrival order
    /// (structurally shared with past and future snapshots).
    pub log: SharedLog,
    /// The frozen columnar store of [`Snapshot::log`].
    pub matrix: Arc<AnswerMatrix>,
    /// The inference result published with this snapshot: the EM fit at
    /// [`Snapshot::fitted_epoch`], plus the §5.1 incremental update for
    /// each catch-up answer.
    pub result: InferenceResult,
    /// The structure-aware correlation model fitted from this freeze + fit
    /// (a pure function of the two, cached here so assignment requests stop
    /// re-fitting it per call).
    pub correlation: CorrelationModel,
    /// Number of log answers this snapshot covers.
    pub epoch: usize,
    /// Number of log answers the EM fit itself covered (the catch-up merge
    /// extends the snapshot past it: `epoch − fitted_epoch =`
    /// [`Snapshot::catchup_merged`]).
    pub fitted_epoch: usize,
    /// Answers that arrived mid-fit and were folded in by the catch-up
    /// merge (0 at every quiescent refresh — then the published state is
    /// exactly the cold fit of the log).
    pub catchup_merged: usize,
    /// Wall-clock of the out-of-lock work (merge + EM + catch-up) that
    /// produced this snapshot, in milliseconds (0 for the initial publish).
    pub last_refit_ms: f64,
    /// How many refreshes this table has published (0 = the initial empty
    /// fit).
    pub refreshes: u64,
    /// When this snapshot was published.
    pub published_at: Instant,
    /// The trust report published with this snapshot (worker scores,
    /// states, and the exclusion set the fit ran under).
    pub trust: Arc<TrustView>,
}

/// The store-snapshot chain position of a durable table: what the next
/// incremental write chains from.
#[derive(Debug, Clone, Copy)]
struct SnapChain {
    /// Whether a full base snapshot exists on disk.
    has_base: bool,
    /// Epoch the chain (base + links) covers.
    epoch: u64,
    /// Delta links on top of the base.
    links: u64,
    /// Next free delta sequence number.
    next_seq: u64,
    /// Answers in the base snapshot.
    base_answers: u64,
    /// Answers across the chain's links.
    chain_answers: u64,
    /// Force the next write to collapse into a full base (set when recovery
    /// found a broken chain — the orphan links get cleaned up with it).
    force_full: bool,
}

impl SnapChain {
    fn fresh() -> SnapChain {
        SnapChain {
            has_base: false,
            epoch: 0,
            links: 0,
            next_seq: 1,
            base_answers: 0,
            chain_answers: 0,
            force_full: false,
        }
    }

    fn from_recovery(info: &ChainInfo, epoch: u64) -> SnapChain {
        SnapChain {
            has_base: true,
            epoch,
            links: info.links,
            next_seq: info.max_seq_on_disk + 1,
            base_answers: info.base_answers,
            chain_answers: info.chain_answers,
            force_full: info.broken.is_some(),
        }
    }
}

/// The durable half of a table: its open WAL (shared with the per-table
/// commit thread), its snapshot directory, the metadata the store
/// persists, and the incremental-snapshot chain position.
///
/// Lock order: the ingest `Mutex` is always taken before
/// [`Durability::wal`] by direct appenders (quarantine records,
/// tombstones, the rebuild path); the commit thread takes the WAL mutex
/// *alone* and its sink takes the ingest mutex *alone* — neither nests,
/// so the commit thread can never deadlock against a direct appender.
/// The chain mutex is leaf-level (nothing else is acquired under it).
pub struct Durability {
    wal: Arc<Mutex<Wal>>,
    dir: PathBuf,
    meta: TableMeta,
    chain: Mutex<SnapChain>,
    /// The commit thread coalescing concurrent `submit` batches into one
    /// `write+fsync` each ([`GroupCommit`]). `None` until
    /// [`Durability::start_committer`] runs in `spawn`, and again after
    /// [`Durability::shutdown_committer`] on the deletion path.
    committer: Mutex<Option<Arc<GroupCommit>>>,
    /// The commit thread's durable watermark: the WAL position whose
    /// answers are both committed and in the in-memory log. Snapshots pin
    /// to this instead of syncing the WAL under the ingest lock.
    mark: DurableMark,
    /// The store's I/O handle, kept so snapshot writes and the WAL-rebuild
    /// repair path go through the same (possibly fault-injected) layer the
    /// WAL does.
    io: IoHandle,
}

impl Durability {
    /// Wrap a freshly-created WAL (no snapshot on disk yet — the first
    /// persisted snapshot writes a full base). `io` must be the handle of
    /// the store that created the WAL.
    pub fn new(wal: Wal, dir: PathBuf, meta: TableMeta, io: IoHandle) -> Durability {
        Durability::recovered(wal, dir, meta, SnapChain::fresh(), io)
    }

    fn recovered(
        wal: Wal,
        dir: PathBuf,
        meta: TableMeta,
        chain: SnapChain,
        io: IoHandle,
    ) -> Durability {
        let mark = DurableMark::starting_at(wal.position());
        Durability {
            wal: Arc::new(Mutex::new(wal)),
            dir,
            meta,
            chain: Mutex::new(chain),
            committer: Mutex::new(None),
            mark,
            io,
        }
    }

    /// Start the table's commit thread: committed batches are pushed into
    /// `log` (under its lock) and the durable mark advanced before any
    /// submitter is acked. Called once from `spawn`, after the ingest log
    /// exists behind its `Arc`.
    fn start_committer(&self, log: Arc<Mutex<AnswerLog>>, obs: tcrowd_store::ObsHandle) {
        let sink = Arc::new(ServiceSink { log, mark: self.mark.clone() });
        let committer = GroupCommit::spawn(Arc::clone(&self.wal), sink, obs);
        *lock_recover(&self.committer) = Some(Arc::new(committer));
    }

    /// A clone of the live commit-thread handle, if any.
    fn committer(&self) -> Option<Arc<GroupCommit>> {
        lock_recover(&self.committer).clone()
    }

    /// Drain the submission queue, commit what is queued, and join the
    /// commit thread. After this returns no new batch can be acked — the
    /// deletion path calls it *before* appending the tombstone so the
    /// `Delete` frame is provably the last answer-bearing record.
    /// Idempotent. Must not be called with the ingest or WAL lock held
    /// (the committer takes both while draining).
    fn shutdown_committer(&self) {
        let committer = lock_recover(&self.committer).take();
        if let Some(c) = committer {
            c.shutdown();
        }
    }
}

/// The service's [`CommitSink`]: delivers each durably-committed group
/// into the in-memory log and advances the durable mark in the same
/// ingest-lock hold, so "log length == mark.answers == acked prefix" is
/// an invariant every ingest-lock holder can rely on.
struct ServiceSink {
    log: Arc<Mutex<AnswerLog>>,
    mark: DurableMark,
}

impl CommitSink for ServiceSink {
    fn committed(&self, batches: &[CommittedBatch<'_>]) {
        let mut log = lock_recover(&self.log);
        for batch in batches {
            for &a in batch.answers {
                log.push(a);
            }
        }
        if let Some(last) = batches.last() {
            self.mark.set(last.position);
        }
    }
}

/// Refresher wake/stop channel.
struct RefreshCtl {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// Recover a mutex guard even when a sibling thread panicked while holding
/// the lock. Safe for every lock it is used on: the ingest log is
/// append-only (a panicked pusher leaves a valid, possibly shorter log —
/// and WAL-before-ack means nothing un-acked is served), the WAL carries
/// its own poison flag, the chain/health/ctl/refresher structs are plain
/// bookkeeping, and the fitter pipeline is re-validated via
/// `fitter_dirty`/rebuild before use.
fn lock_recover<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Initial retry backoff after a contained failure.
const BACKOFF_MIN_MS: u64 = 50;
/// Backoff ceiling: a persistently-faulty disk is probed at least this
/// often (plus jitter).
const BACKOFF_MAX_MS: u64 = 5_000;

/// The table's degradation state machine, behind a leaf-level mutex
/// (nothing else is ever acquired while it is held).
///
/// ```text
/// Healthy ──failure──▶ Degraded{reason} ──retry due──▶ Recovering
///    ▲                      ▲                              │
///    └──────── all clear ───┴────────── still failing ─────┘
/// ```
///
/// Three independent failure axes can be degraded at once; the table is
/// `Healthy` only when all are clear:
/// * `refit_broken` — the fit step panicked or failed; the last good
///   snapshot keeps being served and the pipeline is rebuilt from the
///   ingest log on the next (backed-off) attempt.
/// * `persist_pending` — a store-snapshot write failed; serving and ingest
///   continue (the WAL holds the data), persistence is re-attempted in the
///   background.
/// * `wal_broken` — the WAL refused a write/sync and poisoned itself;
///   ingest answers 503 while reads keep working, and the repair path
///   rebuilds the log from memory (exactly the acked prefix).
#[derive(Debug)]
struct HealthState {
    refit_broken: bool,
    persist_pending: bool,
    wal_broken: bool,
    /// A repair attempt is executing right now.
    recovering: bool,
    refit_failures: u64,
    persist_failures: u64,
    last_error: Option<String>,
    degraded_since: Option<Instant>,
    retry_at: Option<Instant>,
    backoff_ms: u64,
    /// splitmix64 state for backoff jitter (deterministic per seed).
    jitter: u64,
}

impl HealthState {
    fn new(seed: u64) -> HealthState {
        HealthState {
            refit_broken: false,
            persist_pending: false,
            wal_broken: false,
            recovering: false,
            refit_failures: 0,
            persist_failures: 0,
            last_error: None,
            degraded_since: None,
            retry_at: None,
            backoff_ms: 0,
            jitter: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn degraded(&self) -> bool {
        self.refit_broken || self.persist_pending || self.wal_broken
    }

    /// Exponential backoff with deterministic jitter (up to +50% of the
    /// base), so many tables degraded by one disk don't retry in lockstep.
    fn schedule_retry(&mut self) {
        self.backoff_ms = if self.backoff_ms == 0 {
            BACKOFF_MIN_MS
        } else {
            (self.backoff_ms * 2).min(BACKOFF_MAX_MS)
        };
        self.jitter = self.jitter.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.jitter;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let jitter_ms = (z ^ (z >> 31)) % (self.backoff_ms / 2 + 1);
        self.retry_at = Some(Instant::now() + Duration::from_millis(self.backoff_ms + jitter_ms));
    }

    fn note_failure(&mut self, error: String) {
        self.last_error = Some(error);
        if self.degraded_since.is_none() {
            self.degraded_since = Some(Instant::now());
        }
        self.schedule_retry();
    }

    /// Clear the shared degradation bookkeeping once every axis is clear
    /// (`last_error` stays — it reports the most recent problem even after
    /// recovery).
    fn settle(&mut self) {
        if !self.degraded() {
            self.degraded_since = None;
            self.retry_at = None;
            self.backoff_ms = 0;
        }
    }
}

/// A point-in-time, lock-free copy of a table's health for `/stats` and
/// `/healthz`.
#[derive(Debug, Clone)]
pub struct HealthView {
    /// `"healthy"`, `"degraded"` or `"recovering"`.
    pub health: &'static str,
    /// Why the table is degraded (`None` when healthy).
    pub reason: Option<String>,
    /// Milliseconds spent in the current degraded episode.
    pub degraded_since_ms: Option<u64>,
    /// Refit panics/failures contained since creation.
    pub refit_failures: u64,
    /// Store-snapshot persist failures since creation.
    pub persist_failures: u64,
    /// The most recent contained error (sticky across recovery).
    pub last_error: Option<String>,
    /// Milliseconds until the next repair attempt (0 = due now).
    pub retry_after_ms: Option<u64>,
}

/// The fit half of a table: the evolving [`FitState`] plus the
/// arrival-order [`SharedLog`] mirror at the same epoch. Lives behind the
/// fitter mutex — held across EM, never while the ingest lock is wanted by
/// `submit`.
struct FitPipeline {
    fit: FitState,
    shared: SharedLog,
}

impl FitPipeline {
    fn absorb(&mut self, slice: &tcrowd_tabular::LogSlice) {
        self.fit.absorb(slice);
        self.shared.append(slice);
    }

    fn catch_up(&mut self, slice: &tcrowd_tabular::LogSlice) {
        self.fit.catch_up(slice);
        self.shared.append(slice);
    }
}

/// One hosted table.
pub struct TableState {
    /// Table id (registry key).
    pub id: String,
    /// The table schema.
    pub schema: Schema,
    /// Service configuration.
    pub config: TableConfig,
    rows: usize,
    /// The mutate state: the committed answer order. On a durable table
    /// only the commit thread's [`ServiceSink`] pushes here (in WAL
    /// order); memory-only tables push directly from `submit`. Either
    /// way every mutation is `O(batch)` under this lock.
    ingest: Arc<Mutex<AnswerLog>>,
    /// The fit state: evolving freeze + result + shared-log mirror.
    /// Serialises refreshes; EM runs under it with the ingest lock free.
    fitter: Mutex<FitPipeline>,
    published: RwLock<Arc<Snapshot>>,
    ingested: AtomicU64,
    /// Deletion tombstone: set by the registry before the refresher is
    /// joined, checked before every publish and store-snapshot write.
    deleted: AtomicBool,
    durability: Option<Durability>,
    ctl: Arc<RefreshCtl>,
    refresher: Mutex<Option<std::thread::JoinHandle<()>>>,
    created_at: Instant,
    /// Degradation state machine (leaf lock — see [`HealthState`]).
    health: Mutex<HealthState>,
    /// Set when a caught panic may have left the fitter pipeline
    /// inconsistent; the next refresh rebuilds it from the ingest log
    /// before touching it.
    fitter_dirty: AtomicBool,
    /// Chaos hook: the next N fit steps panic (contained by the refresh
    /// path's `catch_unwind`).
    refit_panic_budget: AtomicU64,
    /// Worker trust registry (see [`TrustRegistry`] for the lock-order
    /// contract with the WAL mutex).
    trust: Mutex<TrustRegistry>,
    /// Bumped on every trust-state or quarantine-set change.
    trust_seq: AtomicU64,
    /// Batches refused by the per-worker ingest rate limit.
    rate_limited: AtomicU64,
    /// Per-worker token buckets (leaf lock; only `submit` touches it).
    buckets: Mutex<HashMap<u32, Bucket>>,
    /// Per-table metrics and the lifecycle event ring ([`crate::obs`]).
    obs: Arc<TableObs>,
}

impl TableState {
    /// Create a table (empty log, initial fit published) and start its
    /// refresher thread. `durability` carries the freshly-created WAL for
    /// durable tables, `None` keeps the table memory-only.
    pub fn create(
        id: String,
        schema: Schema,
        rows: usize,
        config: TableConfig,
        durability: Option<Durability>,
    ) -> Arc<TableState> {
        let obs = TableObs::standalone(&id);
        Self::create_with_obs(id, schema, rows, config, durability, obs)
    }

    /// [`TableState::create`] with an externally-registered observability
    /// bundle (the registry path, so the table's series appear in the
    /// shared `/metrics` registry).
    pub fn create_with_obs(
        id: String,
        schema: Schema,
        rows: usize,
        config: TableConfig,
        durability: Option<Durability>,
        obs: Arc<TableObs>,
    ) -> Arc<TableState> {
        let log = AnswerLog::new(rows, schema.num_columns());
        let fit = FitState::empty(TCrowd::default_full(), schema.clone(), rows);
        Self::spawn(id, schema, rows, config, log, fit, durability, Vec::new(), obs)
    }

    /// Resurrect a table from its recovered durable state: the WAL-replayed
    /// log, and — when a snapshot chain survived — the persisted fit
    /// parameters.
    ///
    /// Three cases, strongest first:
    ///
    /// 1. **Chain covers the whole log** (the steady state — a snapshot
    ///    delta follows every publish): the pre-crash *published* state is
    ///    republished verbatim via [`TCrowd::evaluate_seeded`] — one E-step
    ///    at the stored parameters, **no EM**. Recovered served truth ≡
    ///    pre-crash served truth ≡ offline `TCrowd::infer` on the log, to
    ///    float rounding.
    /// 2. **A WAL tail extends past the chain**: the same refit the
    ///    refresher would have run for those pending answers — cold by
    ///    default (published state stays a pure function of the log),
    ///    warm-seeded from the chain's fit when the table is configured
    ///    with `warm_refits`.
    /// 3. **No usable snapshot**: a cold fit of the replayed log.
    pub fn recover(
        rec: Recovered,
        config: TableConfig,
        io: IoHandle,
        obs: Arc<TableObs>,
    ) -> Arc<TableState> {
        let Recovered {
            id,
            meta,
            log,
            fit,
            wal,
            replayed_tail,
            snapshot_epoch,
            chain,
            quarantine,
            ..
        } = rec;
        let schema = meta.schema.clone();
        let rows = meta.rows;
        let model = TCrowd::default_full();
        let matrix = log.to_matrix();
        // A recovered quarantine set means the persisted fit parameters were
        // computed over the *filtered* matrix — seed/evaluate over the same
        // filtered view, while the adopted freeze keeps covering the full
        // log (exclusion is a property of the fit, never the data).
        let excluded: Vec<WorkerId> = quarantine.iter().map(|q| q.worker).collect();
        let filtered =
            if excluded.is_empty() { None } else { Some(matrix.without_workers(&excluded)) };
        let fit_matrix = filtered.as_ref().unwrap_or(&matrix);
        let result = match &fit {
            Some(seed) if replayed_tail == 0 && seed.shape_matches(rows, schema.num_columns()) => {
                model.evaluate_seeded(&schema, fit_matrix, seed)
            }
            Some(seed) if config.warm_refits => {
                model.infer_matrix_seeded(&schema, fit_matrix, seed)
            }
            _ => model.infer_matrix(&schema, fit_matrix),
        };
        let mut fit_state = FitState::from_parts(model, schema.clone(), matrix, result);
        fit_state.set_exclusions(excluded);
        let wal = wal.expect("recovered live table carries an open WAL");
        let dir = wal.path().parent().expect("wal lives in a table dir").to_path_buf();
        // Seed the chain position from the on-disk chain: the follow-up
        // persist_store_snapshot then appends one O(tail) delta for the
        // replayed tail (or is a no-op when the chain already covers
        // everything) instead of rewriting a byte-identical full snapshot
        // on every restart.
        let chain_state = match &chain {
            Some(info) => SnapChain::from_recovery(info, snapshot_epoch.unwrap_or(0)),
            None => SnapChain::fresh(),
        };
        let durability = Durability::recovered(wal, dir, meta, chain_state, io);
        let table = Self::spawn(
            id,
            schema,
            rows,
            config,
            log,
            fit_state,
            Some(durability),
            quarantine,
            obs,
        );
        // Persist right away: the recovery fit is exactly what a next crash
        // would want to seed from, and it re-establishes the fast path when
        // a tail was replayed.
        table.persist_store_snapshot();
        table
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn(
        id: String,
        schema: Schema,
        rows: usize,
        config: TableConfig,
        log: AnswerLog,
        fit: FitState,
        durability: Option<Durability>,
        quarantine: Vec<QuarantineEntry>,
        obs: Arc<TableObs>,
    ) -> Arc<TableState> {
        assert_eq!(fit.epoch(), log.len(), "fit state must cover the adopted log");
        let correlation = CorrelationModel::fit_matrix(&schema, fit.matrix(), fit.result());
        let ingested = log.len() as u64;
        let shared = SharedLog::from_log(&log);
        let mut states = BTreeMap::new();
        for q in &quarantine {
            states
                .insert(q.worker, TrustEntry { state: TrustState::Quarantined, manual: q.manual });
        }
        let report = score_workers(fit.result(), fit.matrix(), &config.trust);
        let trust_view = Arc::new(build_trust_view(
            report,
            &states,
            quarantine.clone(),
            fit.exclusions().to_vec(),
            0,
        ));
        let snapshot = Arc::new(Snapshot {
            log: shared.clone(),
            matrix: fit.matrix_arc(),
            result: fit.result().clone(),
            correlation,
            epoch: log.len(),
            fitted_epoch: log.len(),
            catchup_merged: 0,
            last_refit_ms: 0.0,
            refreshes: 0,
            published_at: Instant::now(),
            trust: trust_view,
        });
        let seed = config.seed;
        let ingest = Arc::new(Mutex::new(log));
        // Route WAL append/fsync timings into this table's histograms, seed
        // the gauges `/healthz` and `/metrics` read before the first
        // transition or publish, and start the commit thread — it needs the
        // ingest log behind its `Arc`, which only exists from here on.
        if let Some(d) = &durability {
            lock_recover(&d.wal).set_obs(obs.store_sink());
            d.start_committer(Arc::clone(&ingest), obs.store_sink());
            obs.store_sink().wal_segments(count_segments(&d.dir));
        }
        obs.set_health(HEALTH_HEALTHY);
        obs.set_trust(0, quarantine.len(), 0);
        let table = Arc::new(TableState {
            id,
            schema,
            config,
            rows,
            ingest,
            fitter: Mutex::new(FitPipeline { fit, shared }),
            published: RwLock::new(snapshot),
            ingested: AtomicU64::new(ingested),
            deleted: AtomicBool::new(false),
            durability,
            ctl: Arc::new(RefreshCtl { stop: Mutex::new(false), wake: Condvar::new() }),
            refresher: Mutex::new(None),
            created_at: Instant::now(),
            health: Mutex::new(HealthState::new(seed)),
            fitter_dirty: AtomicBool::new(false),
            refit_panic_budget: AtomicU64::new(0),
            trust: Mutex::new(TrustRegistry { states, persisted: quarantine }),
            trust_seq: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            buckets: Mutex::new(HashMap::new()),
            obs,
        });
        let weak: Weak<TableState> = Arc::downgrade(&table);
        let ctl = Arc::clone(&table.ctl);
        let interval = table.config.refresh_interval;
        // The refresher must be unkillable by a sibling panic: every lock
        // here recovers from poisoning (the stop flag is a plain bool — a
        // poisoned guard is still a valid bool), and the tick body contains
        // its own failures, so one panicked request thread can never strand
        // a table without its refresher.
        let handle = std::thread::spawn(move || loop {
            {
                let guard = lock_recover(&ctl.stop);
                if *guard {
                    return;
                }
                // Only sleep while below the wake threshold: a notify_one
                // that fires while a refresh is running (not while we wait)
                // would otherwise be lost and the burst would sit for a full
                // interval.
                let over_threshold = match weak.upgrade() {
                    Some(t) => t.pending() >= t.config.refit_every,
                    None => return,
                };
                if !over_threshold {
                    let guard = match ctl.wake.wait_timeout(guard, interval) {
                        Ok((g, _)) => g,
                        Err(poisoned) => poisoned.into_inner().0,
                    };
                    if *guard {
                        return;
                    }
                }
            }
            let Some(table) = weak.upgrade() else { return };
            table.tick();
        });
        *lock_recover(&table.refresher) = Some(handle);
        table
    }

    /// Number of table rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of table columns.
    pub fn cols(&self) -> usize {
        self.schema.num_columns()
    }

    /// Total answers accepted since creation (including recovered ones).
    pub fn ingested(&self) -> u64 {
        self.ingested.load(Ordering::SeqCst)
    }

    /// Answers accepted but not yet covered by the published snapshot (the
    /// refresh lag: log epoch − published epoch).
    pub fn pending(&self) -> usize {
        (self.ingested() as usize).saturating_sub(self.snapshot().epoch)
    }

    /// Whether a refresh would change the published state: answers are
    /// pending, the last publish folded in mid-fit arrivals incrementally
    /// and a settling refit would make it exact again, or the quarantine
    /// decision set has moved past the exclusions the published fit used.
    pub fn needs_refresh(&self) -> bool {
        self.pending() > 0 || self.snapshot().catchup_merged > 0 || self.trust_pending()
    }

    /// Whether the published fit's exclusion set lags the current
    /// quarantine decisions (a refresh closes the gap).
    fn trust_pending(&self) -> bool {
        let quarantined: Vec<WorkerId> =
            self.quarantine_entries().iter().map(|q| q.worker).collect();
        quarantined != self.snapshot().trust.excluded
    }

    /// Monotonic counter bumped on every trust-state or quarantine-set
    /// change (manual or automatic).
    pub fn trust_seq(&self) -> u64 {
        self.trust_seq.load(Ordering::SeqCst)
    }

    /// Batches refused by the per-worker ingest rate limit since creation.
    pub fn rate_limited(&self) -> u64 {
        self.rate_limited.load(Ordering::SeqCst)
    }

    /// The current quarantine decision set (sorted by worker id).
    pub fn quarantine_entries(&self) -> Vec<QuarantineEntry> {
        quarantined_set(&lock_recover(&self.trust).states)
    }

    /// Manually quarantine (`quarantined = true`, pinned against
    /// auto-release) or release `worker`. The decision is appended to the
    /// WAL as a full-replacement quarantine record **before** it takes
    /// effect — a trust decision that silently reverted on crash would be
    /// worse than none — and reaches inference at the next refresh (the
    /// refresher is woken; `POST …/refresh` forces it synchronously).
    /// Returns the worker's new trust state.
    pub fn set_worker_quarantine(
        &self,
        worker: WorkerId,
        quarantined: bool,
    ) -> Result<TrustState, String> {
        let mut reg = lock_recover(&self.trust);
        let prev = reg.states.get(&worker).copied();
        if quarantined {
            reg.states.insert(worker, TrustEntry { state: TrustState::Quarantined, manual: true });
        } else {
            reg.states.remove(&worker);
        }
        let set = quarantined_set(&reg.states);
        if set != reg.persisted {
            if let Err(e) = self.append_quarantine_record(&set) {
                // Roll back: the in-memory decision must not outrun the WAL.
                match prev {
                    Some(p) => {
                        reg.states.insert(worker, p);
                    }
                    None => {
                        reg.states.remove(&worker);
                    }
                }
                drop(reg);
                self.record_wal_failure(format!("quarantine record append failed: {e}"));
                return Err(format!("storage: quarantine record append failed: {e}"));
            }
            reg.persisted = set;
        }
        drop(reg);
        self.trust_seq.fetch_add(1, Ordering::SeqCst);
        self.obs.event(
            "quarantine",
            format!(
                "worker {} {} (manual)",
                worker.0,
                if quarantined { "quarantined" } else { "released" }
            ),
            None,
        );
        // Wake the refresher so the decision reaches the fit promptly.
        let _guard = lock_recover(&self.ctl.stop);
        self.ctl.wake.notify_one();
        Ok(if quarantined { TrustState::Quarantined } else { TrustState::Trusted })
    }

    /// Durably append the full-replacement quarantine record (no-op for
    /// memory-only tables). Callers hold the trust lock — the documented
    /// trust → wal order.
    fn append_quarantine_record(&self, set: &[QuarantineEntry]) -> Result<(), String> {
        let Some(d) = &self.durability else { return Ok(()) };
        let mut wal = lock_recover(&d.wal);
        wal.append_quarantine(set).map(|_| ()).map_err(|e| e.to_string())
    }

    /// Whether this table persists to a WAL.
    pub fn durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Group-commit coalescing counters (`None` for memory-only tables or
    /// after the commit thread shut down on the deletion path).
    pub fn commit_stats(&self) -> Option<CommitStatsView> {
        self.durability.as_ref().and_then(|d| d.committer().map(|c| c.stats()))
    }

    /// Live WAL segments on disk (`None` for memory-only tables).
    pub fn wal_segments(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| count_segments(&d.dir))
    }

    /// Drain, commit, and join the commit thread (idempotent; no-op for
    /// memory-only tables). The registry calls this on shutdown so queued
    /// batches are on disk before the process exits.
    pub fn shutdown_committer(&self) {
        if let Some(d) = &self.durability {
            d.shutdown_committer();
        }
    }

    /// Epoch of the store-snapshot chain written for this table (`None` for
    /// memory-only tables, `Some(0)` before the first write).
    pub fn last_store_snapshot_epoch(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| lock_recover(&d.chain).epoch)
    }

    /// Incremental links in the store-snapshot chain (`None` for
    /// memory-only tables, `Some(0)` right after a full base write).
    pub fn store_snapshot_links(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| lock_recover(&d.chain).links)
    }

    /// Whether the deletion tombstone is set.
    pub fn is_deleted(&self) -> bool {
        self.deleted.load(Ordering::SeqCst)
    }

    /// Set the deletion tombstone: no snapshot (in-memory or on-disk) will
    /// be published from this point on, even by a refresh already running.
    pub fn mark_deleted(&self) {
        self.deleted.store(true, Ordering::SeqCst);
    }

    /// Durably append the deletion tombstone to the WAL (no-op for
    /// memory-only tables). Call after [`Self::mark_deleted`]. Shuts the
    /// commit thread down first — that drains and commits every batch
    /// already queued and refuses anything submitted later, so no
    /// acknowledged batch can ever sit *after* the Delete frame in the
    /// WAL. Must not be called with the ingest or WAL lock held (the
    /// drain takes both).
    pub(crate) fn append_tombstone(&self) -> Result<(), String> {
        if let Some(d) = &self.durability {
            d.shutdown_committer();
            let _log = lock_recover(&self.ingest);
            let mut wal = lock_recover(&d.wal);
            wal.append_delete().map_err(|e| format!("tombstone append failed: {e}"))?;
        }
        Ok(())
    }

    /// The current published snapshot (cheap: one `Arc` clone). Recovers
    /// from lock poisoning: the slot always holds a complete `Arc` (it is
    /// only ever replaced whole), so the last good snapshot stays servable
    /// no matter which thread panicked.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.published.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Validate and ingest a batch of answers. The whole batch is rejected
    /// (nothing ingested) if any answer is malformed, so callers can safely
    /// retry verbatim. On durable tables the batch is handed to the table's
    /// commit thread, which coalesces concurrent batches into one
    /// `write+fsync` and applies them to the in-memory log — in WAL order,
    /// under the ingest lock — **before** this call returns, so WAL order ≡
    /// memory order and recovery replays exactly the acknowledged sequence.
    /// The submitter parks on its commit ticket holding **no** lock; no
    /// request thread ever holds a lock across an fsync. Returns the number
    /// accepted.
    pub fn submit(&self, answers: &[Answer]) -> Result<usize, String> {
        self.submit_traced(answers, None)
    }

    /// [`TableState::submit`] carrying the originating request's
    /// correlation id, so the traced `ingest_committed` event links back to
    /// the HTTP request that caused it.
    pub fn submit_traced(
        &self,
        answers: &[Answer],
        request_id: Option<&str>,
    ) -> Result<usize, String> {
        for (i, a) in answers.iter().enumerate() {
            if a.cell.row as usize >= self.rows || a.cell.col as usize >= self.cols() {
                return Err(format!(
                    "answer {i}: cell ({}, {}) outside the {}x{} table",
                    a.cell.row,
                    a.cell.col,
                    self.rows,
                    self.cols()
                ));
            }
            if !self.schema.column_type(a.cell.col as usize).accepts(&a.value) {
                return Err(format!(
                    "answer {i}: value does not match column {} ({})",
                    a.cell.col, self.schema.columns[a.cell.col as usize].name
                ));
            }
        }
        if self.is_deleted() {
            return Err(format!("table '{}' was deleted", self.id));
        }
        // Nothing to commit: don't write a zero-answer WAL record (13 bytes
        // plus a flush/fsync per policy) or wake the refresher for it.
        if answers.is_empty() {
            return Ok(0);
        }
        // Backpressure: past `max_pending` answers of refresh lag, new
        // answers would only push the served snapshot further behind the
        // log — refuse (the client retries after the refresher catches up)
        // instead of letting staleness grow without bound.
        if let Some(limit) = self.config.max_pending {
            if self.pending() >= limit {
                return Err(format!(
                    "overloaded: {} pending answers at the max_pending bound of {limit}; \
                     retry after the next refresh",
                    self.pending()
                ));
            }
        }
        self.check_rate_limit(answers)?;
        match &self.durability {
            Some(d) => {
                // Group-commit path: enqueue and park on the ticket with no
                // lock held. The commit thread pushes the batch into the
                // ingest log (under the ingest lock, in WAL order) before
                // resolving the ticket, so an `Ok` here means the answers
                // are both durable and readable. The deletion path shuts
                // the committer down *before* writing its tombstone, so a
                // post-tombstone submit fails here rather than acking.
                let Some(committer) = d.committer() else {
                    return Err(format!("table '{}' was deleted", self.id));
                };
                if self.is_deleted() {
                    return Err(format!("table '{}' was deleted", self.id));
                }
                let ticket = committer
                    .submit(answers.to_vec())
                    .map_err(|e| format!("storage: WAL append failed: {e}"))?;
                if let Err(e) = ticket.wait() {
                    self.record_wal_failure(e.clone());
                    return Err(format!("storage: {e}"));
                }
            }
            None => {
                let mut log = lock_recover(&self.ingest);
                if self.is_deleted() {
                    return Err(format!("table '{}' was deleted", self.id));
                }
                for &a in answers {
                    log.push(a);
                }
            }
        }
        self.ingested.fetch_add(answers.len() as u64, Ordering::SeqCst);
        self.obs.ingest_committed(answers.len(), request_id);
        if self.pending() >= self.config.refit_every {
            // Notify while holding the refresher's mutex: this serialises
            // against the refresher's below-threshold check, so the wake
            // either lands while it waits or the re-check sees the new
            // pending count — never lost in the check→wait window.
            let _guard = lock_recover(&self.ctl.stop);
            self.ctl.wake.notify_one();
        }
        Ok(answers.len())
    }

    /// Per-worker token-bucket admission: each worker's bucket refills at
    /// `worker_rate` answers/second up to `worker_burst`. The whole batch
    /// is admitted or refused atomically (the first worker over budget
    /// names the offender); a refused batch debits nothing and costs no
    /// ingest-lock hold. Quarantine does NOT feed into this — quarantined
    /// workers' answers are still collected (and excluded at fit time), so
    /// un-quarantine stays instant and exact.
    fn check_rate_limit(&self, answers: &[Answer]) -> Result<(), String> {
        let rate = self.config.worker_rate;
        if rate <= 0.0 {
            return Ok(());
        }
        let burst = f64::from(self.config.worker_burst).max(1.0);
        let mut counts: BTreeMap<u32, f64> = BTreeMap::new();
        for a in answers {
            *counts.entry(a.worker.0).or_insert(0.0) += 1.0;
        }
        let now = Instant::now();
        let mut buckets = lock_recover(&self.buckets);
        for (&w, &n) in &counts {
            let b = buckets.entry(w).or_insert(Bucket { tokens: burst, last: now });
            let dt = now.saturating_duration_since(b.last).as_secs_f64();
            b.tokens = (b.tokens + dt * rate).min(burst);
            b.last = now;
            if n > b.tokens + 1e-9 {
                self.rate_limited.fetch_add(1, Ordering::SeqCst);
                return Err(format!(
                    "overloaded: worker {w} exceeded the per-worker rate limit \
                     ({rate} answers/s, burst {}); retry shortly",
                    self.config.worker_burst
                ));
            }
        }
        for (&w, &n) in &counts {
            if let Some(b) = buckets.get_mut(&w) {
                b.tokens -= n;
            }
        }
        Ok(())
    }

    /// Re-fit and publish a fresh snapshot (plus, on durable tables, an
    /// incremental store snapshot). The ingest lock is held only for two
    /// `O(Δ)` tail slices; EM and the delta merges run outside it, under
    /// the fitter mutex (which serialises concurrent refreshes). No-op
    /// (returns `false`) when the published snapshot is already current or
    /// the table has been tombstoned. Runs on the refresher thread
    /// normally; `POST …/refresh` calls it synchronously.
    pub fn refresh_now(&self) -> bool {
        let mut pipe = match self.fitter.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                // A sibling panicked under the fitter lock (without the
                // refresh path's containment — e.g. an OOM-adjacent abort
                // path): its half-mutated pipeline cannot be trusted.
                self.fitter_dirty.store(true, Ordering::SeqCst);
                poisoned.into_inner()
            }
        };
        if self.fitter_dirty.swap(false, Ordering::SeqCst) {
            // Rebuild from the system of record: an empty pipeline whose
            // next absorb covers the whole ingest log (one cold fit — the
            // same work a fresh recovery would do). The exclusion set is
            // re-seeded from the trust registry so the rebuilt fit filters
            // from its first refit.
            pipe.fit = FitState::empty(TCrowd::default_full(), self.schema.clone(), self.rows);
            pipe.fit.set_exclusions(self.quarantine_entries().iter().map(|q| q.worker).collect());
            pipe.shared = SharedLog::from_log(&AnswerLog::new(self.rows, self.cols()));
        }
        // Phase 1 (brief ingest lock): slice the tail since the fit epoch.
        let tail = {
            let log = lock_recover(&self.ingest);
            log.slice_since(pipe.fit.epoch())
        };
        if tail.is_empty() {
            let snap = self.snapshot();
            let trust_dirty = {
                let q: Vec<WorkerId> = self.quarantine_entries().iter().map(|e| e.worker).collect();
                q.as_slice() != pipe.fit.exclusions()
            };
            // Nothing new AND the published state is already the exact fit
            // of its epoch (no catch-up answers folded in incrementally, no
            // quarantine decision waiting to be applied): a refresh would
            // republish the same state.
            if snap.epoch == pipe.fit.epoch() && snap.catchup_merged == 0 && !trust_dirty {
                self.note_refit_success();
                return false;
            }
        }
        // Phase 2 (no ingest lock): delta-merge + EM while ingestion flows.
        // Contained: a panic here (EM numerical edge, injected chaos) marks
        // the pipeline dirty and degrades the table instead of killing the
        // refresher and poisoning the fitter for everyone else. The guard
        // itself outlives the catch, so the mutex is NOT poisoned by a
        // caught panic.
        self.obs.event(
            "refit_started",
            format!("epoch {} (+{} pending)", pipe.fit.epoch(), tail.len()),
            None,
        );
        let t0 = Instant::now();
        let fit_attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.maybe_inject_refit_panic();
            pipe.absorb(&tail);
            pipe.fit.refit(self.config.warm_refits);
            self.apply_trust(&mut pipe)
        }));
        let trust_report = match fit_attempt {
            Ok(report) => report,
            Err(payload) => {
                self.fitter_dirty.store(true, Ordering::SeqCst);
                self.obs.event("refit_panicked", panic_message(&payload), None);
                self.record_refit_failure(format!("refit panicked: {}", panic_message(&payload)));
                return false;
            }
        };
        let fitted_epoch = pipe.fit.epoch();
        // Phase 3 (brief ingest lock): catch-up slice for answers that
        // arrived mid-fit, plus the durable watermark matching the final
        // epoch — read in the same lock hold, so the (epoch, offset) pair
        // is exact. The mark is maintained by the commit thread's sink
        // under this very lock, so no WAL I/O happens here at all.
        let (catch, wal_pos) = {
            let log = lock_recover(&self.ingest);
            let catch = log.slice_since(pipe.fit.epoch());
            let wal_pos = self.durability.as_ref().map(|d| d.mark.get());
            if let Some(pos) = wal_pos {
                debug_assert_eq!(pos.answers as usize, log.len());
            }
            (catch, wal_pos)
        };
        // Make the marked bytes at least as durable as the snapshot that
        // will refer to them — under the WAL lock alone, with ingestion
        // flowing (under `fsync=always` this fsync finds nothing new).
        let wal_pos = wal_pos.and_then(|pos| {
            let d = self.durability.as_ref().expect("wal_pos implies durability");
            let sync = {
                let mut wal = lock_recover(&d.wal);
                wal.sync()
            };
            match sync {
                Ok(()) => Some(pos),
                Err(e) => {
                    // The publish still proceeds (readers get the fresh
                    // snapshot); only the store persist is skipped — its
                    // offset could point past the durable prefix.
                    self.record_wal_failure(format!("WAL sync failed: {e}"));
                    None
                }
            }
        });
        // Catch-up merge, again outside the ingest lock: O(Δ') freeze merge
        // plus the §5.1 incremental posterior update per answer.
        let catchup_merged = catch.len();
        let finish = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipe.catch_up(&catch);
            let correlation =
                CorrelationModel::fit_matrix(&self.schema, pipe.fit.matrix(), pipe.fit.result());
            (pipe.fit.epoch(), pipe.fit.matrix_arc(), pipe.fit.result().clone(), correlation)
        }));
        let (epoch, matrix, result, correlation) = match finish {
            Ok(parts) => parts,
            Err(payload) => {
                self.fitter_dirty.store(true, Ordering::SeqCst);
                self.obs.event("refit_panicked", panic_message(&payload), None);
                self.record_refit_failure(format!(
                    "catch-up merge panicked: {}",
                    panic_message(&payload)
                ));
                return false;
            }
        };
        let last_refit_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (estep_ns, mstep_ns) = (result.timings.estep_ns, result.timings.mstep_ns);
        let trust_view = {
            let reg = lock_recover(&self.trust);
            Arc::new(build_trust_view(
                trust_report,
                &reg.states,
                quarantined_set(&reg.states),
                pipe.fit.exclusions().to_vec(),
                self.trust_seq.load(Ordering::SeqCst),
            ))
        };
        let snapshot = Snapshot {
            log: pipe.shared.clone(),
            matrix,
            result,
            correlation,
            epoch,
            fitted_epoch,
            catchup_merged,
            last_refit_ms,
            refreshes: self.snapshot().refreshes + 1,
            published_at: Instant::now(),
            trust: trust_view,
        };
        // Tombstone guard: a refresh that was mid-refit when the table was
        // removed must not publish a snapshot for a dead table.
        if self.is_deleted() {
            return false;
        }
        let published = {
            let mut slot = self.published.write().unwrap_or_else(|p| p.into_inner());
            // Refreshes are serialised by the fitter mutex, so the epoch can
            // only advance; keep the guard anyway — never replace a newer
            // snapshot with an older one.
            if snapshot.epoch >= slot.epoch {
                *slot = Arc::new(snapshot);
                true
            } else {
                false
            }
        };
        self.note_refit_success();
        if published {
            self.obs.observe_refit((last_refit_ms * 1e6) as u64, estep_ns, mstep_ns);
            let snap = self.snapshot();
            let suspects =
                snap.trust.workers.iter().filter(|s| s.state == TrustState::Suspect).count();
            self.obs.set_trust(suspects, snap.trust.quarantine.len(), snap.trust.seq);
            self.obs.event(
                "refit_published",
                format!("epoch {epoch} (fitted {fitted_epoch}, catch-up {catchup_merged})"),
                None,
            );
            if let Some(pos) = wal_pos {
                self.write_store_snapshot(pos);
            }
        }
        true
    }

    /// Score every worker from the just-refit result, advance the
    /// hysteresis state machine (when `trust_auto` is on — manual pins are
    /// never auto-released), and apply the resulting quarantine set to the
    /// fit: when the set changed, one bounded extra refit over the filtered
    /// freeze runs so the published result never mixes quarantined workers
    /// in. A changed set is durably appended to the WAL (full-replacement
    /// record) before it is considered persisted; an append failure keeps
    /// the in-memory decision (safety first — the workers stay excluded)
    /// and degrades the table so the repair path re-persists it. Runs under
    /// the fitter lock, inside the refresh path's panic containment.
    /// Returns the score report for the published trust view.
    fn apply_trust(&self, pipe: &mut FitPipeline) -> Vec<WorkerTrust> {
        let mut report = score_workers(pipe.fit.result(), pipe.fit.matrix(), &self.config.trust);
        let mut reg = lock_recover(&self.trust);
        if self.config.trust_auto {
            for t in &report {
                let entry = reg
                    .states
                    .entry(t.worker)
                    .or_insert(TrustEntry { state: TrustState::Trusted, manual: false });
                if entry.manual {
                    continue;
                }
                let next = advance(entry.state, t, &self.config.trust);
                if next != entry.state {
                    self.obs.event(
                        "trust",
                        format!("worker {} {:?} -> {next:?} (auto)", t.worker.0, entry.state),
                        None,
                    );
                    entry.state = next;
                    self.trust_seq.fetch_add(1, Ordering::SeqCst);
                }
            }
            reg.states.retain(|_, e| e.manual || e.state != TrustState::Trusted);
        }
        let set = quarantined_set(&reg.states);
        if set != reg.persisted {
            match self.append_quarantine_record(&set) {
                Ok(()) => reg.persisted = set.clone(),
                Err(e) => self.record_wal_failure(format!("quarantine record append failed: {e}")),
            }
        }
        drop(reg);
        let excluded: Vec<WorkerId> = set.iter().map(|q| q.worker).collect();
        if pipe.fit.set_exclusions(excluded) {
            self.trust_seq.fetch_add(1, Ordering::SeqCst);
            pipe.fit.refit(self.config.warm_refits);
            // Re-score over the filtered fit so the published report agrees
            // with the published result (quarantined workers show shadow
            // scores, not stale fitted qualities). States advanced above
            // from the pre-change fit and are not re-advanced here.
            report = score_workers(pipe.fit.result(), pipe.fit.matrix(), &self.config.trust);
        }
        report
    }

    /// Persist the current published snapshot to the store, pinned to the
    /// commit thread's durable watermark (synced first, under the WAL lock
    /// alone — never under ingest). Used by recovery and shutdown to
    /// re-establish the snapshot fast path.
    pub fn persist_store_snapshot(&self) {
        let Some(d) = &self.durability else { return };
        let pos = {
            let log = lock_recover(&self.ingest);
            let pos = d.mark.get();
            debug_assert_eq!(pos.answers as usize, log.len());
            pos
        };
        let sync = {
            let mut wal = lock_recover(&d.wal);
            wal.sync()
        };
        match sync {
            Ok(()) => self.write_store_snapshot(pos),
            Err(e) => self.record_wal_failure(format!("WAL sync failed: {e}")),
        }
    }

    /// Write the published snapshot to disk if it advances the persisted
    /// chain and matches `pos` — as an `O(Δ)` chain delta normally, as a
    /// full base when the chain is new, broken, or due for collapse.
    /// Failures degrade the table (`persist_failures` + background
    /// re-attempt), never stop serving: the store snapshot is a recovery
    /// accelerator, the WAL already holds the data.
    fn write_store_snapshot(&self, pos: WalPosition) {
        let Some(d) = &self.durability else { return };
        if self.is_deleted() {
            return;
        }
        let snap = self.snapshot();
        if snap.epoch as u64 != pos.answers {
            // A racing persist captured a different epoch; the call whose
            // position matches its snapshot will write the pair.
            return;
        }
        // The chain mutex serialises check → write → advance, so a slower
        // writer can never chain a delta from (or rename a base over) a
        // position the faster one already superseded.
        let mut chain = lock_recover(&d.chain);
        if chain.has_base && chain.epoch >= snap.epoch as u64 && snap.epoch != 0 {
            // Already persisted (possibly by the background re-attempt).
            drop(chain);
            self.note_persist_success();
            return;
        }
        let delta_answers = snap.epoch as u64 - chain.epoch;
        // An unchanged epoch with a healthy chain has nothing to add — don't
        // append an empty delta (an empty durable table would otherwise grow
        // one per restart).
        if chain.has_base && delta_answers == 0 && !chain.force_full {
            drop(chain);
            self.note_persist_success();
            return;
        }
        let fit = Some(FitParams::of(&snap.result));
        let collapse =
            !chain.has_base || chain.force_full || chain.links + 1 > SNAPSHOT_CHAIN_MAX_LINKS || {
                let grown = chain.chain_answers + delta_answers;
                grown >= SNAPSHOT_CHAIN_MIN_COLLAPSE && grown >= chain.base_answers
            };
        let outcome = if collapse {
            let table_snap = TableSnapshot {
                epoch: snap.epoch as u64,
                wal_offset: pos.offset,
                meta: d.meta.clone(),
                log: snap.log.to_log(),
                fit,
                quarantine: snap.trust.quarantine.clone(),
            };
            match write_snapshot_observed(&d.dir, &table_snap, &d.io, &self.obs.store_sink()) {
                Ok(()) => {
                    // Old links chain from epochs below the new base, so they
                    // are unreachable the moment the base rename lands;
                    // removing them afterwards is pure cleanup (crash-safe in
                    // either order).
                    if let Err(e) = remove_snapshot_deltas(&d.dir) {
                        eprintln!(
                            "tcrowd-service: stale snapshot deltas for table '{}' not removed: {e}",
                            self.id
                        );
                    }
                    *chain = SnapChain {
                        has_base: true,
                        epoch: snap.epoch as u64,
                        links: 0,
                        next_seq: 1,
                        base_answers: snap.epoch as u64,
                        chain_answers: 0,
                        force_full: false,
                    };
                    // The new base covers every answer at or below
                    // `pos.offset`: rotated WAL segments wholly below it are
                    // replay-dead weight — delete the cold prefix so
                    // recovery's replay stays bounded by the live tail.
                    match compact_cold_segments(&d.dir, pos.offset) {
                        Ok(removed) if removed > 0 => {
                            self.obs.event(
                                "wal_compacted",
                                format!(
                                    "{removed} cold segment(s) removed below offset {}",
                                    pos.offset
                                ),
                                None,
                            );
                            self.obs.store_sink().wal_segments(count_segments(&d.dir));
                        }
                        Ok(_) => {}
                        // Best-effort: a failed unlink costs replay time, not
                        // correctness — the next collapse retries.
                        Err(e) => eprintln!(
                            "tcrowd-service: cold WAL segments for table '{}' not compacted: {e}",
                            self.id
                        ),
                    }
                    Ok(())
                }
                Err(e) => Err(format!("snapshot write failed: {e}")),
            }
        } else {
            let delta = SnapshotDelta {
                seq: chain.next_seq,
                parent_epoch: chain.epoch,
                epoch: snap.epoch as u64,
                wal_offset: pos.offset,
                answers: snap.log.range_vec(chain.epoch as usize, snap.epoch),
                fit,
                quarantine: snap.trust.quarantine.clone(),
            };
            match write_snapshot_delta_observed(&d.dir, &delta, &d.io, &self.obs.store_sink()) {
                Ok(()) => {
                    chain.epoch = snap.epoch as u64;
                    chain.links += 1;
                    chain.next_seq += 1;
                    chain.chain_answers += delta_answers;
                    Ok(())
                }
                Err(e) => Err(format!("snapshot delta write failed: {e}")),
            }
        };
        drop(chain);
        match outcome {
            Ok(()) => {
                self.obs.event(
                    "snapshot_persisted",
                    format!(
                        "epoch {} ({})",
                        snap.epoch,
                        if collapse { "full base" } else { "chain delta" }
                    ),
                    None,
                );
                self.note_persist_success()
            }
            Err(msg) => {
                self.obs.event("snapshot_persist_failed", msg.clone(), None);
                self.record_persist_failure(msg)
            }
        }
    }

    /// Select up to `k` cells for `worker` from the published snapshot,
    /// using `policy` (or the table's configured default). Returns the
    /// snapshot the decision was made from alongside the picks, so callers
    /// can report the decision epoch.
    pub fn assign(
        &self,
        worker: tcrowd_tabular::WorkerId,
        k: usize,
        policy: Option<&str>,
    ) -> Result<(Arc<Snapshot>, Vec<CellId>, String), String> {
        let name = policy.unwrap_or(&self.config.policy).to_string();
        let mut policy = make_policy(&name, self.rows, self.config.seed)?;
        let snap = self.snapshot();
        let ctx = AssignmentContext {
            schema: &self.schema,
            // The freeze answers the point queries too: a snapshot carries
            // no indexed log at all.
            answers: snap.matrix.as_ref(),
            freeze: snap.matrix.freeze_view(),
            inference: Some(&snap.result),
            max_answers_per_cell: self.config.max_answers_per_cell,
            terminated: None,
            correlation: Some(&snap.correlation),
        };
        let picks = policy.select(worker, k, &ctx);
        Ok((snap, picks, name))
    }

    /// Milliseconds since this table was created.
    pub fn age_ms(&self) -> u128 {
        self.created_at.elapsed().as_millis()
    }

    /// Stop and join the refresher thread (idempotent). The registry calls
    /// this on removal/shutdown; a table dropped without it would leave the
    /// thread parked until its weak upgrade fails on the next tick.
    pub fn stop_refresher(&self) {
        *lock_recover(&self.ctl.stop) = true;
        self.ctl.wake.notify_all();
        if let Some(handle) = lock_recover(&self.refresher).take() {
            let _ = handle.join();
        }
    }

    // ------------------------- health machinery -------------------------

    /// A point-in-time copy of the degradation state (for `/stats` and
    /// `/healthz`).
    pub fn health(&self) -> HealthView {
        let h = lock_recover(&self.health);
        let health = if h.recovering {
            "recovering"
        } else if h.degraded() {
            "degraded"
        } else {
            "healthy"
        };
        let mut reasons: Vec<&str> = Vec::new();
        if h.wal_broken {
            reasons.push("wal-broken: ingest disabled until the log is rebuilt");
        }
        if h.refit_broken {
            reasons.push("refit-failing: serving the last good snapshot");
        }
        if h.persist_pending {
            reasons.push("persist-failing: store snapshot re-attempt pending");
        }
        HealthView {
            health,
            reason: if reasons.is_empty() { None } else { Some(reasons.join("; ")) },
            degraded_since_ms: h.degraded_since.map(|t| t.elapsed().as_millis() as u64),
            refit_failures: h.refit_failures,
            persist_failures: h.persist_failures,
            last_error: h.last_error.clone(),
            retry_after_ms: h
                .retry_at
                .map(|t| t.saturating_duration_since(Instant::now()).as_millis() as u64),
        }
    }

    /// The `Retry-After` hint (seconds, ≥ 1) a refused client should wait:
    /// the remaining repair backoff when degraded, one refresh interval for
    /// plain backpressure.
    pub fn retry_after_secs(&self) -> u64 {
        let backoff = {
            let h = lock_recover(&self.health);
            if h.degraded() {
                h.retry_at.map(|t| t.saturating_duration_since(Instant::now()).as_secs())
            } else {
                None
            }
        };
        backoff.unwrap_or(self.config.refresh_interval.as_secs()).max(1)
    }

    /// Chaos hook: make the next `n` fit steps panic inside the refresh
    /// path's containment (each consumes one budget unit).
    pub fn inject_refit_panics(&self, n: u64) {
        self.refit_panic_budget.store(n, Ordering::SeqCst);
    }

    fn maybe_inject_refit_panic(&self) {
        if self
            .refit_panic_budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
            .is_ok()
        {
            panic!("injected refit panic (chaos budget)");
        }
    }

    /// This table's observability bundle (metrics handles + event ring).
    pub fn obs(&self) -> &Arc<TableObs> {
        &self.obs
    }

    /// Run `f` under the health lock; afterwards (lock released), if the
    /// derived healthy/degraded/recovering state changed, update the
    /// health gauge and trace a `health` transition event. Every health
    /// mutation goes through here, so the gauge — which `/healthz` is
    /// served from — can never drift from the state machine.
    fn mutate_health<R>(&self, f: impl FnOnce(&mut HealthState) -> R) -> R {
        let (r, before, after) = {
            let mut h = lock_recover(&self.health);
            let before = health_code_of(&h);
            let r = f(&mut h);
            (r, before, health_code_of(&h))
        };
        if before != after {
            self.obs.set_health(after);
            self.obs.event(
                "health",
                format!(
                    "{} -> {}",
                    crate::obs::health_name(before),
                    crate::obs::health_name(after)
                ),
                None,
            );
        }
        r
    }

    fn record_refit_failure(&self, msg: String) {
        eprintln!("tcrowd-service: table '{}' refit contained: {msg}", self.id);
        self.mutate_health(|h| {
            h.refit_broken = true;
            h.refit_failures += 1;
            h.note_failure(msg);
        });
    }

    fn record_persist_failure(&self, msg: String) {
        eprintln!("tcrowd-service: table '{}' persist degraded: {msg}", self.id);
        self.mutate_health(|h| {
            h.persist_pending = true;
            h.persist_failures += 1;
            h.note_failure(msg);
        });
    }

    fn record_wal_failure(&self, msg: String) {
        eprintln!("tcrowd-service: table '{}' WAL degraded: {msg}", self.id);
        self.obs.event("wal_poisoned", msg.clone(), None);
        self.mutate_health(|h| {
            h.wal_broken = true;
            h.note_failure(msg);
        });
    }

    fn note_refit_success(&self) {
        self.mutate_health(|h| {
            if h.refit_broken {
                h.refit_broken = false;
                h.settle();
            }
        });
    }

    fn note_persist_success(&self) {
        self.mutate_health(|h| {
            if h.persist_pending {
                h.persist_pending = false;
                h.settle();
            }
        });
    }

    /// One refresher-loop iteration: run due repairs, then refresh unless
    /// the fit path is in backoff.
    pub(crate) fn tick(&self) {
        let (wal_broken, persist_pending, refit_broken, due) = {
            let h = lock_recover(&self.health);
            let due = h.degraded() && h.retry_at.is_none_or(|t| Instant::now() >= t);
            (h.wal_broken, h.persist_pending, h.refit_broken, due)
        };
        if due {
            self.mutate_health(|h| h.recovering = true);
            if wal_broken {
                self.try_rebuild_wal();
            }
            let wal_still_broken = lock_recover(&self.health).wal_broken;
            if persist_pending && !wal_still_broken {
                self.persist_store_snapshot();
            }
            self.mutate_health(|h| h.recovering = false);
        }
        let refit_blocked = {
            let h = lock_recover(&self.health);
            h.refit_broken && h.retry_at.is_some_and(|t| Instant::now() < t)
        };
        if !refit_blocked && (self.needs_refresh() || (refit_broken && due)) {
            self.refresh_now();
        }
    }

    /// Repair a poisoned WAL by rewriting it from the in-memory ingest log.
    /// Sound because of WAL-before-ack: an append either committed before
    /// its batch entered the log, or errored before the log was touched —
    /// so the in-memory log is *exactly* the acknowledged answer set, and a
    /// log rewritten from it loses nothing and invents nothing. The stale
    /// snapshot chain (whose offsets describe the old byte layout) is
    /// removed first; the chain resets and the next persist writes a fresh
    /// full base.
    fn try_rebuild_wal(&self) {
        let Some(d) = &self.durability else { return };
        if self.is_deleted() {
            return;
        }
        // Captured before the ingest/WAL locks: the trust lock must never
        // be taken under the WAL lock (trust → wal is the documented
        // order). A decision racing the rebuild re-appends on the next
        // refresh — the record is a full replacement, so that is benign.
        let quarantine = self.quarantine_entries();
        let result: Result<(), String> = (|| {
            let log = lock_recover(&self.ingest);
            let mut wal = lock_recover(&d.wal);
            if !wal.is_poisoned() {
                // Already healthy (e.g. a racing repair, or the failure was
                // an fsync refused by a poisoned WAL that a restart fixed).
                return Ok(());
            }
            let policy = wal.fsync_policy();
            remove_snapshot(&d.dir).map_err(|e| format!("stale snapshot removal: {e}"))?;
            let pos = rewrite_wal(&d.dir, &d.meta, log.all(), &quarantine, &d.io)
                .map_err(|e| format!("log rewrite: {e}"))?;
            debug_assert_eq!(pos.answers as usize, log.len());
            let fresh =
                Wal::open_for_append_with_io(d.dir.join(WAL_FILE), pos, policy, d.io.clone())
                    .map_err(|e| format!("rebuilt log reopen: {e}"))?;
            *wal = fresh;
            // Reset the durable mark under the same ingest-lock hold: the
            // rewritten log's byte layout replaces the old one, and `pos`
            // covers exactly the in-memory (acked) prefix.
            d.mark.set(pos);
            *lock_recover(&d.chain) = SnapChain::fresh();
            Ok(())
        })();
        match result {
            Ok(()) => {
                eprintln!("tcrowd-service: table '{}' WAL rebuilt; ingest re-enabled", self.id);
                self.obs.event(
                    "wal_rebuilt",
                    "log rewritten from the acknowledged prefix; ingest re-enabled".to_string(),
                    None,
                );
                // The rewrite collapses the chain to a single segment.
                self.obs.store_sink().wal_segments(count_segments(&d.dir));
                self.mutate_health(|h| {
                    h.wal_broken = false;
                    // The chain was reset — persist a fresh base on the next
                    // tick (immediately due).
                    h.persist_pending = true;
                    h.backoff_ms = 0;
                    h.retry_at = Some(Instant::now());
                });
            }
            Err(msg) => self.record_wal_failure(format!("WAL rebuild failed: {msg}")),
        }
    }
}

/// The `tcrowd_table_health` gauge code for a health state (recovering
/// wins over degraded, matching [`TableState::health`]).
fn health_code_of(h: &HealthState) -> i64 {
    if h.recovering {
        HEALTH_RECOVERING
    } else if h.degraded() {
        HEALTH_DEGRADED
    } else {
        HEALTH_HEALTHY
    }
}

/// Best-effort panic payload → message (panics carry `&str` or `String`
/// nearly always).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{generate_dataset, Dataset, GeneratorConfig, Value, WorkerId};

    fn make_table(refit_every: usize) -> (Arc<TableState>, Dataset) {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 12,
                columns: 3,
                num_workers: 8,
                answers_per_task: 3,
                ..Default::default()
            },
            5,
        );
        let config = TableConfig {
            refit_every,
            refresh_interval: Duration::from_millis(10),
            ..Default::default()
        };
        let t = TableState::create("t".into(), d.schema.clone(), d.rows(), config, None);
        (t, d)
    }

    /// `GET /healthz` is served from the observability health gauges, so it
    /// must answer while a table's ingest AND fitter locks are both held
    /// (a wedged refit or a stalled ingest cannot wedge the health probe).
    #[test]
    fn healthz_answers_with_ingest_and_fitter_locks_held() {
        let reg = Arc::new(crate::registry::TableRegistry::new());
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 4,
                columns: 2,
                num_workers: 3,
                answers_per_task: 1,
                ..Default::default()
            },
            1,
        );
        let t = reg
            .create(Some("wedged".into()), d.schema.clone(), d.rows(), TableConfig::default())
            .unwrap();
        // Wedge the table the way a stuck refit + stuck ingest would.
        let _ingest = t.ingest.lock().unwrap();
        let _fitter = t.fitter.lock().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let probe_reg = Arc::clone(&reg);
        std::thread::spawn(move || {
            let req = crate::http::Request {
                method: "GET".into(),
                path: "/healthz".into(),
                query: Vec::new(),
                body: Vec::new(),
                keep_alive: false,
                request_id: "probe".into(),
            };
            tx.send(crate::api::route(&probe_reg, &req)).ok();
        });
        let resp = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("/healthz must not block on table locks");
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        drop(_fitter);
        drop(_ingest);
        reg.shutdown();
    }

    #[test]
    fn ingest_refresh_and_read_paths_agree() {
        let (t, d) = make_table(usize::MAX);
        assert_eq!(t.snapshot().epoch, 0);
        assert!(!t.durable());
        t.submit(d.answers.all()).unwrap();
        assert_eq!(t.ingested() as usize, d.answers.len());
        // Synchronous refresh publishes everything.
        assert!(t.refresh_now());
        let snap = t.snapshot();
        assert_eq!(snap.epoch, d.answers.len());
        assert_eq!(snap.matrix.len(), d.answers.len());
        assert_eq!(snap.log.to_vec(), d.answers.all());
        assert_eq!(t.pending(), 0);
        // Quiescent refresh: nothing arrived mid-fit, so the published state
        // is exactly the cold batch fit.
        assert_eq!(snap.catchup_merged, 0);
        assert_eq!(snap.fitted_epoch, snap.epoch);
        let batch = TCrowd::default_full().infer(&d.schema, &d.answers);
        assert_eq!(snap.result.estimates(), batch.estimates());
        // Assignment works off the snapshot (and its cached correlation
        // model: same picks as a per-request fit).
        let (used, picks, name) = t.assign(WorkerId(999), 3, None).unwrap();
        assert_eq!(used.epoch, snap.epoch);
        assert_eq!(picks.len(), 3);
        assert_eq!(name, "structure-aware");
        let mut fresh = crate::policy::make_policy("structure-aware", t.rows(), 1).unwrap();
        let uncached_ctx = AssignmentContext {
            schema: &d.schema,
            answers: snap.matrix.as_ref(),
            freeze: snap.matrix.freeze_view(),
            inference: Some(&snap.result),
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        assert_eq!(picks, fresh.select(WorkerId(999), 3, &uncached_ctx));
        t.stop_refresher();
    }

    #[test]
    fn background_refresher_publishes_on_threshold() {
        let (t, d) = make_table(4);
        t.submit(&d.answers.all()[..8]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        while t.snapshot().epoch < 8 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(t.snapshot().epoch, 8, "refresher should publish pending answers");
        assert!(t.snapshot().refreshes >= 1);
        t.stop_refresher();
    }

    #[test]
    fn submit_rejects_bad_batches_atomically() {
        let (t, d) = make_table(usize::MAX);
        let good = d.answers.all()[0];
        let bad_cell = Answer { cell: CellId::new(999, 0), ..good };
        let err = t.submit(&[good, bad_cell]).unwrap_err();
        assert!(err.contains("answer 1"), "{err}");
        assert_eq!(t.ingested(), 0, "a rejected batch must ingest nothing");
        // Wrong datatype for the column.
        let col0 = d.schema.column_type(0).clone();
        let wrong = Answer {
            value: if col0.is_categorical() {
                Value::Continuous(1.0)
            } else {
                Value::Categorical(0)
            },
            ..good
        };
        assert!(t.submit(&[wrong]).is_err());
        t.stop_refresher();
    }

    #[test]
    fn tombstoned_table_refuses_to_publish_mid_refit() {
        // Regression (deletion race): a refresher that is mid-refit when the
        // table is removed must not publish a snapshot for the dead table.
        // Simulated deterministically: ingest, tombstone, then drive the
        // publish path a racing refresh would run.
        let (t, d) = make_table(usize::MAX);
        t.submit(&d.answers.all()[..6]).unwrap();
        assert!(t.refresh_now());
        let epoch_before = t.snapshot().epoch;
        t.submit(&d.answers.all()[6..12]).unwrap();
        t.mark_deleted();
        assert!(!t.refresh_now(), "a tombstoned table must not publish");
        assert_eq!(t.snapshot().epoch, epoch_before, "snapshot must be unchanged");
        // Ingest after deletion is refused too.
        assert!(t.submit(&d.answers.all()[..1]).is_err());
        t.stop_refresher();
    }

    #[test]
    fn catchup_merge_folds_in_mid_fit_arrivals() {
        // Deterministic re-enactment of the mid-fit race: advance the fit
        // state to a prefix, let "mid-fit" answers land, then run the
        // refresh — the catch-up phase must fold them into the published
        // snapshot (log, freeze and epoch) without an extra refresh cycle.
        let (t, d) = make_table(usize::MAX);
        let split = d.answers.len() / 2;
        t.submit(&d.answers.all()[..split]).unwrap();
        assert!(t.refresh_now());
        assert_eq!(t.snapshot().catchup_merged, 0);
        // Answers land between the fit and the next refresh's catch-up: the
        // next refresh fits on what its phase-1 slice saw. Here everything
        // is already committed pre-refresh, so catchup_merged is 0 — the
        // race itself is exercised under real concurrency in
        // tests/concurrent.rs; this test pins the bookkeeping invariants.
        t.submit(&d.answers.all()[split..]).unwrap();
        assert!(t.refresh_now());
        let snap = t.snapshot();
        assert_eq!(snap.epoch, d.answers.len());
        assert_eq!(snap.fitted_epoch + snap.catchup_merged, snap.epoch);
        assert_eq!(snap.log.len(), snap.epoch);
        assert_eq!(snap.matrix.len(), snap.epoch);
        assert!(snap.last_refit_ms >= 0.0);
        // The shared log is the committed order.
        assert_eq!(snap.log.to_vec(), d.answers.all());
        t.stop_refresher();
    }

    #[test]
    fn config_kv_roundtrip() {
        let config = TableConfig {
            policy: "entropy".into(),
            refit_every: 17,
            refresh_interval: Duration::from_millis(321),
            warm_refits: true,
            max_answers_per_cell: Some(9),
            seed: 42,
            max_pending: Some(1_000),
            trust_auto: true,
            trust: tcrowd_trust::TrustConfig {
                min_answers: 5,
                suspect_enter: 0.61,
                suspect_exit: 0.77,
                quarantine_enter: 0.33,
                quarantine_exit: 0.52,
                collusion_min_overlap: 4,
                collusion_agreement: 0.875,
                collusion_value_collisions: 6,
            },
            worker_rate: 12.5,
            worker_burst: 7,
        };
        let back = TableConfig::from_kv(&config.to_kv());
        assert_eq!(back.policy, config.policy);
        assert_eq!(back.refit_every, config.refit_every);
        assert_eq!(back.refresh_interval, config.refresh_interval);
        assert_eq!(back.warm_refits, config.warm_refits);
        assert_eq!(back.max_answers_per_cell, config.max_answers_per_cell);
        assert_eq!(back.seed, config.seed);
        assert_eq!(back.max_pending, config.max_pending);
        assert!(back.trust_auto);
        assert_eq!(back.trust, config.trust);
        assert_eq!(back.worker_rate, config.worker_rate);
        assert_eq!(back.worker_burst, config.worker_burst);
        // Unknown keys and absent keys degrade to defaults, not errors.
        let sparse = TableConfig::from_kv(&[("future_knob".into(), "1".into())]);
        assert_eq!(sparse.policy, TableConfig::default().policy);
        // None round-trips through the empty string.
        let none = TableConfig { max_answers_per_cell: None, ..TableConfig::default() };
        assert_eq!(TableConfig::from_kv(&none.to_kv()).max_answers_per_cell, None);
    }

    #[test]
    fn manual_quarantine_filters_the_fit_and_release_restores_it() {
        let (t, d) = make_table(usize::MAX);
        t.submit(d.answers.all()).unwrap();
        assert!(t.refresh_now());
        let baseline = t.snapshot();
        let w = d.answers.all()[0].worker;
        assert_eq!(t.set_worker_quarantine(w, true).unwrap(), TrustState::Quarantined);
        // The woken background refresher may apply the decision before this
        // synchronous refresh — either way the published state must filter.
        t.refresh_now();
        let snap = t.snapshot();
        assert_eq!(snap.trust.excluded, vec![w]);
        assert_eq!(snap.trust.quarantine.len(), 1);
        assert!(snap.trust.quarantine[0].manual);
        assert!(snap.result.quality_of(w).is_none(), "excluded worker has no fitted quality");
        // The quarantine is a fit-level filter: the log is untouched.
        assert_eq!(snap.epoch, baseline.epoch);
        assert_eq!(snap.log.to_vec(), baseline.log.to_vec());
        // The published estimates equal a batch fit of a log that never
        // contained the worker's answers.
        let batch = TCrowd::default_full().infer(&d.schema, &d.answers.without_workers(&[w]));
        assert_eq!(snap.result.estimates(), batch.estimates());
        // The worker still shows up in the trust report, with a shadow score.
        let row = snap.trust.workers.iter().find(|s| s.trust.worker == w).unwrap();
        assert_eq!(row.state, TrustState::Quarantined);
        assert!(row.trust.quality.is_none());
        // Release: bit-identical to the baseline full fit.
        assert_eq!(t.set_worker_quarantine(w, false).unwrap(), TrustState::Trusted);
        t.refresh_now();
        let back = t.snapshot();
        assert!(back.trust.excluded.is_empty());
        assert_eq!(back.result.estimates(), baseline.result.estimates());
        assert_eq!(back.result.iterations, baseline.result.iterations);
        assert!(t.trust_seq() >= 2);
        t.stop_refresher();
    }

    #[test]
    fn per_worker_rate_limit_refuses_whole_batches() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 8,
                columns: 2,
                num_workers: 4,
                answers_per_task: 2,
                ..Default::default()
            },
            11,
        );
        let config = TableConfig {
            refit_every: usize::MAX,
            worker_rate: 0.001, // effectively no refill within the test
            worker_burst: 4,
            ..Default::default()
        };
        let t = TableState::create("rl".into(), d.schema.clone(), d.rows(), config, None);
        let by_worker = |w: u32| -> Vec<Answer> {
            d.answers.all().iter().copied().filter(|a| a.worker == WorkerId(w)).collect()
        };
        let w0 = by_worker(0);
        assert!(w0.len() >= 4, "generator should give worker 0 at least burst answers");
        // Within burst: admitted.
        t.submit(&w0[..4]).unwrap();
        // Bucket drained: the whole next batch is refused with the
        // backpressure prefix (→ 429 + Retry-After at the HTTP layer).
        let err = t.submit(&w0[..1]).unwrap_err();
        assert!(err.starts_with("overloaded:"), "{err}");
        assert!(err.contains("worker 0"), "{err}");
        assert_eq!(t.rate_limited(), 1);
        // Other workers are unaffected.
        let w1 = by_worker(1);
        t.submit(&w1[..1]).unwrap();
        // A mixed batch containing the throttled worker is refused whole.
        let mixed = vec![w1[1], w0[4 % w0.len()]];
        assert!(t.submit(&mixed).unwrap_err().starts_with("overloaded:"));
        assert_eq!(t.ingested() as usize, 5, "refused batches must ingest nothing");
        t.stop_refresher();
    }

    #[test]
    fn auto_trust_quarantines_a_spammer_and_defends_accuracy() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 20,
                columns: 3,
                num_workers: 10,
                answers_per_task: 4,
                ..Default::default()
            },
            13,
        );
        let config = TableConfig {
            refit_every: usize::MAX,
            trust_auto: true,
            trust: tcrowd_trust::TrustConfig { min_answers: 8, ..Default::default() },
            ..Default::default()
        };
        let t = TableState::create("spam".into(), d.schema.clone(), d.rows(), config, None);
        t.submit(d.answers.all()).unwrap();
        // A spammer answering uniformly at random over every cell.
        let mut rng = StdRng::seed_from_u64(77);
        let spam: Vec<Answer> = (0..d.rows() as u32)
            .flat_map(|i| (0..d.schema.num_columns() as u32).map(move |j| (i, j)))
            .map(|(i, j)| Answer {
                worker: WorkerId(500),
                cell: CellId::new(i, j),
                value: match d.schema.column_type(j as usize) {
                    tcrowd_tabular::ColumnType::Categorical { labels } => {
                        Value::Categorical(rng.gen_range(0..labels.len() as u32))
                    }
                    tcrowd_tabular::ColumnType::Continuous { min, max } => {
                        Value::Continuous(rng.gen_range(*min..*max))
                    }
                },
            })
            .collect();
        t.submit(&spam).unwrap();
        // Drive refits until the hysteresis machine walks the spammer down
        // to Quarantined (Trusted → Suspect → Quarantined needs ≥2 refits).
        for _ in 0..4 {
            t.refresh_now();
        }
        let snap = t.snapshot();
        let row = snap.trust.workers.iter().find(|s| s.trust.worker == WorkerId(500)).unwrap();
        assert_eq!(
            row.state,
            TrustState::Quarantined,
            "spammer score {} should pin near chance and quarantine",
            row.trust.score
        );
        assert!(!row.manual, "auto decision must not be operator-pinned");
        assert_eq!(snap.trust.excluded, vec![WorkerId(500)]);
        // Defense: with the spammer excluded the estimates equal the fit of
        // the honest log alone.
        let honest = TCrowd::default_full().infer(&d.schema, &d.answers);
        assert_eq!(snap.result.estimates(), honest.estimates());
        // No honest worker got quarantined alongside.
        for s in &snap.trust.workers {
            if s.trust.worker != WorkerId(500) {
                assert_ne!(s.state, TrustState::Quarantined, "honest {:?}", s.trust.worker);
            }
        }
        t.stop_refresher();
    }
}
