//! Per-table service state: lock-split ingest/read paths, the background
//! refresher thread, and the durability hooks into `tcrowd-store`.
//!
//! Each hosted table runs the paper's online loop (Fig. 1 / Algorithm 2)
//! with the request path split in two:
//!
//! * **Ingest** (`POST …/answers`) appends to the [`OnlineTCrowd`] behind a
//!   `Mutex` — an `O(1)` log push plus the §5.1 incremental posterior
//!   update. On a durable table the batch is first framed into the
//!   write-ahead log (one group-committed record per batch, flushed/fsynced
//!   per the store's [`tcrowd_store::FsyncPolicy`]) **before** it enters
//!   memory or is acknowledged: an acked answer is a durable answer.
//! * **Reads** (assignment, truth, stats) share an immutable [`Snapshot`]
//!   behind an `RwLock<Arc<…>>`: the log prefix at the freeze epoch, the
//!   frozen [`AnswerMatrix`], the last published [`InferenceResult`] and a
//!   pre-fitted [`CorrelationModel`] (so `GET …/assignment` under the
//!   structure-aware policy stops re-fitting per request). Readers clone
//!   the `Arc` and never contend with ingestion.
//!
//! A per-table **refresher thread** closes the loop: on a configurable
//! cadence (or immediately once [`TableConfig::refit_every`] answers are
//! pending) it delta-merges the log tail into the evolving freeze, re-fits
//! EM (warm-started when configured), and atomically publishes the new
//! snapshot. On durable tables every publish is followed by a store
//! snapshot — `(log@epoch, fit params, WAL offset)` — so crash recovery
//! replays only the WAL tail and republishes the pre-crash fit (one E-step
//! at the stored parameters) instead of re-running EM from scratch.
//!
//! Deletion uses a **tombstone guard**: `TableRegistry::remove` marks the
//! table deleted *before* joining the refresher, so a refresh that is
//! mid-refit when the table dies can never publish (or persist a store
//! snapshot for) a dead table.
//!
//! Known tradeoff: a re-fit holds the ingest `Mutex` for its duration, so
//! `POST …/answers` landing *during* a refresh stall until it publishes
//! (reads never do — they stay on the previous snapshot). Fitting outside
//! the lock needs a merge protocol for the answers that arrive mid-fit;
//! see the ROADMAP open item.

use crate::policy::make_policy;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::time::{Duration, Instant};
use tcrowd_core::{
    AssignmentContext, CorrelationModel, FitParams, InferenceResult, OnlineTCrowd, TCrowd,
};
use tcrowd_store::{write_snapshot, Recovered, TableMeta, TableSnapshot, Wal, WalPosition};
use tcrowd_tabular::{Answer, AnswerLog, AnswerMatrix, CellId, Schema};

/// Per-table service policy knobs (the `POST /tables` request body).
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// Default assignment policy (a [`make_policy`] name).
    pub policy: String,
    /// Pending-answer threshold that wakes the refresher immediately (the
    /// service-side mirror of [`OnlineTCrowd::refit_every`]).
    pub refit_every: usize,
    /// Refresher cadence: every tick with pending answers re-fits and
    /// publishes, threshold reached or not.
    pub refresh_interval: Duration,
    /// Warm-start re-fits from the previous published fit (see
    /// `TCrowd::infer_matrix_warm`). Off by default: cold re-fits make the
    /// published state a pure function of the collected log, which the
    /// determinism tests and the bench's offline-agreement gate rely on.
    pub warm_refits: bool,
    /// Optional per-cell redundancy cap enforced at assignment time.
    pub max_answers_per_cell: Option<usize>,
    /// Seed for stochastic policies (random baseline, entity grouping).
    pub seed: u64,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            policy: "structure-aware".to_string(),
            refit_every: 64,
            refresh_interval: Duration::from_millis(200),
            warm_refits: false,
            max_answers_per_cell: None,
            seed: 1,
        }
    }
}

impl TableConfig {
    /// Serialize as the sorted key/value pairs the store's `TableMeta`
    /// persists (the WAL Create record).
    pub fn to_kv(&self) -> Vec<(String, String)> {
        let mut kv = vec![
            (
                "max_answers_per_cell".to_string(),
                self.max_answers_per_cell.map(|v| v.to_string()).unwrap_or_default(),
            ),
            ("policy".to_string(), self.policy.clone()),
            ("refit_every".to_string(), self.refit_every.to_string()),
            (
                "refresh_interval_ms".to_string(),
                (self.refresh_interval.as_millis() as u64).to_string(),
            ),
            ("seed".to_string(), self.seed.to_string()),
            ("warm_refits".to_string(), self.warm_refits.to_string()),
        ];
        kv.sort();
        kv
    }

    /// Rebuild from persisted key/value pairs. Missing keys take defaults,
    /// unknown keys are ignored — config can evolve without a WAL format
    /// change in either direction.
    pub fn from_kv(kv: &[(String, String)]) -> TableConfig {
        let mut config = TableConfig::default();
        for (k, v) in kv {
            match k.as_str() {
                "policy" if !v.is_empty() => config.policy = v.clone(),
                "refit_every" => {
                    if let Ok(n) = v.parse() {
                        config.refit_every = n;
                    }
                }
                "refresh_interval_ms" => {
                    if let Ok(ms) = v.parse() {
                        config.refresh_interval = Duration::from_millis(ms);
                    }
                }
                "warm_refits" => config.warm_refits = v == "true",
                "max_answers_per_cell" => config.max_answers_per_cell = v.parse().ok(),
                "seed" => {
                    if let Ok(s) = v.parse() {
                        config.seed = s;
                    }
                }
                _ => {}
            }
        }
        config
    }
}

/// An immutable published view of one table: everything the read endpoints
/// serve, consistent at one freeze epoch.
pub struct Snapshot {
    /// The collected answers up to [`Snapshot::epoch`], in arrival order.
    pub log: AnswerLog,
    /// The frozen columnar store of [`Snapshot::log`].
    pub matrix: AnswerMatrix,
    /// The inference result published with this freeze.
    pub result: InferenceResult,
    /// The structure-aware correlation model fitted from this freeze + fit
    /// (a pure function of the two, cached here so assignment requests stop
    /// re-fitting it per call).
    pub correlation: CorrelationModel,
    /// Number of log answers this snapshot covers.
    pub epoch: usize,
    /// How many refreshes this table has published (0 = the initial empty
    /// fit).
    pub refreshes: u64,
    /// When this snapshot was published.
    pub published_at: Instant,
}

/// The durable half of a table: its open WAL, its snapshot directory and
/// the metadata the store persists. Lock order: the ingest `Mutex` is always
/// taken before [`Durability::wal`].
pub struct Durability {
    wal: Mutex<Wal>,
    dir: PathBuf,
    meta: TableMeta,
    last_snapshot_epoch: AtomicU64,
    /// Serialises check-watermark → write → advance-watermark so a slow
    /// writer can never rename an older snapshot over a newer one (the
    /// refresher and a synchronous `POST …/refresh` can race here).
    snapshot_gate: Mutex<()>,
}

impl Durability {
    /// Wrap an open WAL. `snapshot_epoch` is the epoch of the store snapshot
    /// already on disk (0 when none) — earlier snapshots are never written
    /// over later ones.
    pub fn new(wal: Wal, dir: PathBuf, meta: TableMeta, snapshot_epoch: u64) -> Durability {
        Durability {
            wal: Mutex::new(wal),
            dir,
            meta,
            last_snapshot_epoch: AtomicU64::new(snapshot_epoch),
            snapshot_gate: Mutex::new(()),
        }
    }
}

/// Refresher wake/stop channel.
struct RefreshCtl {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// One hosted table.
pub struct TableState {
    /// Table id (registry key).
    pub id: String,
    /// The table schema.
    pub schema: Schema,
    /// Service configuration.
    pub config: TableConfig,
    rows: usize,
    ingest: Mutex<OnlineTCrowd>,
    published: RwLock<Arc<Snapshot>>,
    ingested: AtomicU64,
    /// Deletion tombstone: set by the registry before the refresher is
    /// joined, checked before every publish and store-snapshot write.
    deleted: AtomicBool,
    durability: Option<Durability>,
    ctl: Arc<RefreshCtl>,
    refresher: Mutex<Option<std::thread::JoinHandle<()>>>,
    created_at: Instant,
}

impl TableState {
    /// Create a table (empty log, initial fit published) and start its
    /// refresher thread. `durability` carries the freshly-created WAL for
    /// durable tables, `None` keeps the table memory-only.
    pub fn create(
        id: String,
        schema: Schema,
        rows: usize,
        config: TableConfig,
        durability: Option<Durability>,
    ) -> Arc<TableState> {
        let online = OnlineTCrowd::empty(TCrowd::default_full(), schema.clone(), rows);
        Self::spawn(id, schema, rows, config, online, durability)
    }

    /// Resurrect a table from its recovered durable state: the WAL-replayed
    /// log, and — when a snapshot survived — the persisted fit parameters.
    ///
    /// Three cases, strongest first:
    ///
    /// 1. **Snapshot covers the whole log** (the steady state — a snapshot
    ///    follows every publish): the pre-crash *published* state is
    ///    republished verbatim via [`TCrowd::evaluate_seeded`] — one E-step
    ///    at the stored parameters, **no EM**. Recovered served truth ≡
    ///    pre-crash served truth ≡ offline `TCrowd::infer` on the log, to
    ///    float rounding.
    /// 2. **A WAL tail extends past the snapshot**: the same refit the
    ///    refresher would have run for those pending answers — cold by
    ///    default (published state stays a pure function of the log),
    ///    warm-seeded from the snapshot fit when the table is configured
    ///    with `warm_refits`.
    /// 3. **No usable snapshot**: a cold fit of the replayed log.
    pub fn recover(rec: Recovered, config: TableConfig) -> Arc<TableState> {
        let Recovered { id, meta, log, fit, wal, replayed_tail, snapshot_epoch, .. } = rec;
        let schema = meta.schema.clone();
        let rows = meta.rows;
        let model = TCrowd::default_full();
        let matrix = log.to_matrix();
        let result = match &fit {
            Some(seed) if replayed_tail == 0 && seed.shape_matches(rows, schema.num_columns()) => {
                model.evaluate_seeded(&schema, &matrix, seed)
            }
            Some(seed) if config.warm_refits => model.infer_matrix_seeded(&schema, &matrix, seed),
            _ => model.infer_matrix(&schema, &matrix),
        };
        let mut online = OnlineTCrowd::from_fit(model, schema.clone(), log, matrix, result);
        online.warm_refits = config.warm_refits;
        let wal = wal.expect("recovered live table carries an open WAL");
        let dir = wal.path().parent().expect("wal lives in a table dir").to_path_buf();
        // Seed the persisted-epoch watermark with the on-disk snapshot when
        // it already covers everything recovered: the follow-up
        // persist_store_snapshot is then a no-op instead of rewriting a
        // byte-identical snapshot on every restart.
        let persisted = if replayed_tail == 0 { snapshot_epoch.unwrap_or(0) } else { 0 };
        let durability = Durability::new(wal, dir, meta, persisted);
        let table = Self::spawn(id, schema, rows, config, online, Some(durability));
        // Persist a fresh store snapshot at the recovered epoch right away:
        // the recovery fit is exactly what a next crash would want to seed
        // from, and it re-establishes the fast path after the pre-crash
        // snapshot was consumed.
        table.persist_store_snapshot();
        table
    }

    fn spawn(
        id: String,
        schema: Schema,
        rows: usize,
        config: TableConfig,
        mut online: OnlineTCrowd,
        durability: Option<Durability>,
    ) -> Arc<TableState> {
        // The refresher (not the ingest path) owns refit timing.
        online.refit_every = usize::MAX;
        online.warm_refits = config.warm_refits;
        let correlation = CorrelationModel::fit_matrix(&schema, online.matrix(), online.result());
        let ingested = online.answers().len() as u64;
        let snapshot = Arc::new(Snapshot {
            log: online.answers().clone(),
            matrix: online.matrix().clone(),
            result: online.result().clone(),
            correlation,
            epoch: online.answers().len(),
            refreshes: 0,
            published_at: Instant::now(),
        });
        let table = Arc::new(TableState {
            id,
            schema,
            config,
            rows,
            ingest: Mutex::new(online),
            published: RwLock::new(snapshot),
            ingested: AtomicU64::new(ingested),
            deleted: AtomicBool::new(false),
            durability,
            ctl: Arc::new(RefreshCtl { stop: Mutex::new(false), wake: Condvar::new() }),
            refresher: Mutex::new(None),
            created_at: Instant::now(),
        });
        let weak: Weak<TableState> = Arc::downgrade(&table);
        let ctl = Arc::clone(&table.ctl);
        let interval = table.config.refresh_interval;
        let handle = std::thread::spawn(move || loop {
            {
                let guard = ctl.stop.lock().expect("refresher ctl");
                if *guard {
                    return;
                }
                // Only sleep while below the wake threshold: a notify_one
                // that fires while a refresh is running (not while we wait)
                // would otherwise be lost and the burst would sit for a full
                // interval.
                let over_threshold = match weak.upgrade() {
                    Some(t) => t.pending() >= t.config.refit_every,
                    None => return,
                };
                if !over_threshold {
                    let (guard, _) =
                        ctl.wake.wait_timeout(guard, interval).expect("refresher wait");
                    if *guard {
                        return;
                    }
                }
            }
            let Some(table) = weak.upgrade() else { return };
            if table.pending() > 0 {
                table.refresh_now();
            }
        });
        *table.refresher.lock().expect("refresher handle") = Some(handle);
        table
    }

    /// Number of table rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of table columns.
    pub fn cols(&self) -> usize {
        self.schema.num_columns()
    }

    /// Total answers accepted since creation (including recovered ones).
    pub fn ingested(&self) -> u64 {
        self.ingested.load(Ordering::SeqCst)
    }

    /// Answers accepted but not yet covered by the published snapshot.
    pub fn pending(&self) -> usize {
        (self.ingested() as usize).saturating_sub(self.snapshot().epoch)
    }

    /// Whether this table persists to a WAL.
    pub fn durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Epoch of the last store snapshot written for this table (`None` for
    /// memory-only tables, `Some(0)` before the first write).
    pub fn last_store_snapshot_epoch(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.last_snapshot_epoch.load(Ordering::SeqCst))
    }

    /// Whether the deletion tombstone is set.
    pub fn is_deleted(&self) -> bool {
        self.deleted.load(Ordering::SeqCst)
    }

    /// Set the deletion tombstone: no snapshot (in-memory or on-disk) will
    /// be published from this point on, even by a refresh already running.
    pub fn mark_deleted(&self) {
        self.deleted.store(true, Ordering::SeqCst);
    }

    /// Durably append the deletion tombstone to the WAL (no-op for
    /// memory-only tables). Call after [`Self::mark_deleted`]. Takes the
    /// ingest lock first (the documented ingest→wal order): an in-flight
    /// `submit` that already passed its tombstone check finishes its append
    /// before the Delete frame lands, so no acknowledged batch can ever sit
    /// *after* the tombstone in the WAL.
    pub(crate) fn append_tombstone(&self) -> Result<(), String> {
        if let Some(d) = &self.durability {
            let _online = self.ingest.lock().expect("ingest lock");
            let mut wal = d.wal.lock().expect("wal lock");
            wal.append_delete().map_err(|e| format!("tombstone append failed: {e}"))?;
        }
        Ok(())
    }

    /// The current published snapshot (cheap: one `Arc` clone).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.published.read().expect("published lock"))
    }

    /// Validate and ingest a batch of answers. The whole batch is rejected
    /// (nothing ingested) if any answer is malformed, so callers can safely
    /// retry verbatim. On durable tables the batch is group-committed to the
    /// WAL **before** it is applied or acknowledged — under the same lock
    /// that orders the in-memory log, so WAL order ≡ memory order and
    /// recovery replays exactly the acknowledged sequence. Returns the
    /// number accepted.
    pub fn submit(&self, answers: &[Answer]) -> Result<usize, String> {
        for (i, a) in answers.iter().enumerate() {
            if a.cell.row as usize >= self.rows || a.cell.col as usize >= self.cols() {
                return Err(format!(
                    "answer {i}: cell ({}, {}) outside the {}x{} table",
                    a.cell.row,
                    a.cell.col,
                    self.rows,
                    self.cols()
                ));
            }
            if !self.schema.column_type(a.cell.col as usize).accepts(&a.value) {
                return Err(format!(
                    "answer {i}: value does not match column {} ({})",
                    a.cell.col, self.schema.columns[a.cell.col as usize].name
                ));
            }
        }
        if self.is_deleted() {
            return Err(format!("table '{}' was deleted", self.id));
        }
        // Nothing to commit: don't write a zero-answer WAL record (13 bytes
        // plus a flush/fsync per policy) or wake the refresher for it.
        if answers.is_empty() {
            return Ok(0);
        }
        {
            let mut online = self.ingest.lock().expect("ingest lock");
            if self.is_deleted() {
                return Err(format!("table '{}' was deleted", self.id));
            }
            if let Some(d) = &self.durability {
                let mut wal = d.wal.lock().expect("wal lock");
                wal.append_answers(answers)
                    .map_err(|e| format!("storage: WAL append failed: {e}"))?;
            }
            for &a in answers {
                online.add_answer(a);
            }
        }
        self.ingested.fetch_add(answers.len() as u64, Ordering::SeqCst);
        if self.pending() >= self.config.refit_every {
            // Notify while holding the refresher's mutex: this serialises
            // against the refresher's below-threshold check, so the wake
            // either lands while it waits or the re-check sees the new
            // pending count — never lost in the check→wait window.
            let _guard = self.ctl.stop.lock().expect("refresher ctl");
            self.ctl.wake.notify_one();
        }
        Ok(answers.len())
    }

    /// Re-fit on everything ingested so far and publish a fresh snapshot
    /// (plus, on durable tables, a store snapshot). No-op (returns `false`)
    /// when the published snapshot is already current or the table has been
    /// tombstoned. Runs on the refresher thread normally; `POST …/refresh`
    /// calls it synchronously.
    pub fn refresh_now(&self) -> bool {
        let (parts, wal_pos) = {
            let mut online = self.ingest.lock().expect("ingest lock");
            if !online.flush_refit() && online.answers().len() == self.snapshot().epoch {
                return false;
            }
            // Capture the WAL position matching this epoch and make those
            // bytes at least as durable as the snapshot that will refer to
            // them. Appends happen under the ingest lock too, so the pair is
            // exact.
            let wal_pos = self.durability.as_ref().map(|d| {
                let mut wal = d.wal.lock().expect("wal lock");
                if let Err(e) = wal.sync() {
                    eprintln!("tcrowd-service: WAL sync failed for table '{}': {e}", self.id);
                }
                wal.position()
            });
            if let Some(pos) = wal_pos {
                debug_assert_eq!(pos.answers as usize, online.answers().len());
            }
            ((online.answers().clone(), online.matrix().clone(), online.result().clone()), wal_pos)
        };
        // Fit the snapshot's correlation cache outside the ingest lock: it
        // reads only the cloned freeze + fit.
        let (log, matrix, result) = parts;
        let correlation = CorrelationModel::fit_matrix(&self.schema, &matrix, &result);
        let snapshot = Snapshot {
            epoch: log.len(),
            log,
            matrix,
            result,
            correlation,
            refreshes: self.snapshot().refreshes + 1,
            published_at: Instant::now(),
        };
        // Tombstone guard: a refresh that was mid-refit when the table was
        // removed must not publish a snapshot for a dead table.
        if self.is_deleted() {
            return false;
        }
        let published = {
            let mut slot = self.published.write().expect("published lock");
            // Publishes can race (refresher tick vs synchronous
            // `POST …/refresh` that already dropped the ingest lock); never
            // replace a newer snapshot with an older one.
            if snapshot.epoch >= slot.epoch {
                *slot = Arc::new(snapshot);
                true
            } else {
                false
            }
        };
        if published {
            if let Some(pos) = wal_pos {
                self.write_store_snapshot(pos);
            }
        }
        true
    }

    /// Persist the current published snapshot to the store, synchronising
    /// the WAL position first. Used by recovery to re-establish the
    /// snapshot fast path.
    pub fn persist_store_snapshot(&self) {
        let Some(d) = &self.durability else { return };
        let pos = {
            let _online = self.ingest.lock().expect("ingest lock");
            let mut wal = d.wal.lock().expect("wal lock");
            if let Err(e) = wal.sync() {
                eprintln!("tcrowd-service: WAL sync failed for table '{}': {e}", self.id);
            }
            wal.position()
        };
        self.write_store_snapshot(pos);
    }

    /// Write the published snapshot to disk if it advances the persisted
    /// epoch and matches `pos`. Failures are logged, not fatal: the store
    /// snapshot is a recovery accelerator, the WAL already holds the data.
    fn write_store_snapshot(&self, pos: WalPosition) {
        let Some(d) = &self.durability else { return };
        if self.is_deleted() {
            return;
        }
        let snap = self.snapshot();
        if snap.epoch as u64 != pos.answers {
            // A racing refresh published a different epoch; its own call
            // will persist the matching pair.
            return;
        }
        // Hold the gate across check → write → advance: without it a slow
        // writer could rename an older snapshot over a newer one after the
        // newer writer already advanced the watermark.
        let _gate = d.snapshot_gate.lock().expect("snapshot gate");
        if d.last_snapshot_epoch.load(Ordering::SeqCst) >= snap.epoch as u64 && snap.epoch != 0 {
            return;
        }
        let table_snap = TableSnapshot {
            epoch: snap.epoch as u64,
            wal_offset: pos.offset,
            meta: d.meta.clone(),
            log: snap.log.clone(),
            fit: Some(FitParams::of(&snap.result)),
        };
        match write_snapshot(&d.dir, &table_snap) {
            Ok(()) => d.last_snapshot_epoch.store(snap.epoch as u64, Ordering::SeqCst),
            Err(e) => {
                eprintln!("tcrowd-service: snapshot write failed for table '{}': {e}", self.id)
            }
        }
    }

    /// Select up to `k` cells for `worker` from the published snapshot,
    /// using `policy` (or the table's configured default). Returns the
    /// snapshot the decision was made from alongside the picks, so callers
    /// can report the decision epoch.
    pub fn assign(
        &self,
        worker: tcrowd_tabular::WorkerId,
        k: usize,
        policy: Option<&str>,
    ) -> Result<(Arc<Snapshot>, Vec<CellId>, String), String> {
        let name = policy.unwrap_or(&self.config.policy).to_string();
        let mut policy = make_policy(&name, self.rows, self.config.seed)?;
        let snap = self.snapshot();
        let ctx = AssignmentContext {
            schema: &self.schema,
            answers: &snap.log,
            freeze: snap.matrix.freeze_view(),
            inference: Some(&snap.result),
            max_answers_per_cell: self.config.max_answers_per_cell,
            terminated: None,
            correlation: Some(&snap.correlation),
        };
        let picks = policy.select(worker, k, &ctx);
        Ok((snap, picks, name))
    }

    /// Milliseconds since this table was created.
    pub fn age_ms(&self) -> u128 {
        self.created_at.elapsed().as_millis()
    }

    /// Stop and join the refresher thread (idempotent). The registry calls
    /// this on removal/shutdown; a table dropped without it would leave the
    /// thread parked until its weak upgrade fails on the next tick.
    pub fn stop_refresher(&self) {
        *self.ctl.stop.lock().expect("refresher ctl") = true;
        self.ctl.wake.notify_all();
        if let Some(handle) = self.refresher.lock().expect("refresher handle").take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{generate_dataset, Dataset, GeneratorConfig, Value, WorkerId};

    fn make_table(refit_every: usize) -> (Arc<TableState>, Dataset) {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 12,
                columns: 3,
                num_workers: 8,
                answers_per_task: 3,
                ..Default::default()
            },
            5,
        );
        let config = TableConfig {
            refit_every,
            refresh_interval: Duration::from_millis(10),
            ..Default::default()
        };
        let t = TableState::create("t".into(), d.schema.clone(), d.rows(), config, None);
        (t, d)
    }

    #[test]
    fn ingest_refresh_and_read_paths_agree() {
        let (t, d) = make_table(usize::MAX);
        assert_eq!(t.snapshot().epoch, 0);
        assert!(!t.durable());
        t.submit(d.answers.all()).unwrap();
        assert_eq!(t.ingested() as usize, d.answers.len());
        // Synchronous refresh publishes everything.
        assert!(t.refresh_now());
        let snap = t.snapshot();
        assert_eq!(snap.epoch, d.answers.len());
        assert_eq!(snap.matrix.len(), d.answers.len());
        assert_eq!(t.pending(), 0);
        // Published estimates equal the batch fit (cold refits).
        let batch = TCrowd::default_full().infer(&d.schema, &d.answers);
        assert_eq!(snap.result.estimates(), batch.estimates());
        // Assignment works off the snapshot (and its cached correlation
        // model: same picks as a per-request fit).
        let (used, picks, name) = t.assign(WorkerId(999), 3, None).unwrap();
        assert_eq!(used.epoch, snap.epoch);
        assert_eq!(picks.len(), 3);
        assert_eq!(name, "structure-aware");
        let mut fresh = crate::policy::make_policy("structure-aware", t.rows(), 1).unwrap();
        let uncached_ctx = AssignmentContext {
            schema: &d.schema,
            answers: &snap.log,
            freeze: snap.matrix.freeze_view(),
            inference: Some(&snap.result),
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        assert_eq!(picks, fresh.select(WorkerId(999), 3, &uncached_ctx));
        t.stop_refresher();
    }

    #[test]
    fn background_refresher_publishes_on_threshold() {
        let (t, d) = make_table(4);
        t.submit(&d.answers.all()[..8]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        while t.snapshot().epoch < 8 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(t.snapshot().epoch, 8, "refresher should publish pending answers");
        assert!(t.snapshot().refreshes >= 1);
        t.stop_refresher();
    }

    #[test]
    fn submit_rejects_bad_batches_atomically() {
        let (t, d) = make_table(usize::MAX);
        let good = d.answers.all()[0];
        let bad_cell = Answer { cell: CellId::new(999, 0), ..good };
        let err = t.submit(&[good, bad_cell]).unwrap_err();
        assert!(err.contains("answer 1"), "{err}");
        assert_eq!(t.ingested(), 0, "a rejected batch must ingest nothing");
        // Wrong datatype for the column.
        let col0 = d.schema.column_type(0).clone();
        let wrong = Answer {
            value: if col0.is_categorical() {
                Value::Continuous(1.0)
            } else {
                Value::Categorical(0)
            },
            ..good
        };
        assert!(t.submit(&[wrong]).is_err());
        t.stop_refresher();
    }

    #[test]
    fn tombstoned_table_refuses_to_publish_mid_refit() {
        // Regression (deletion race): a refresher that is mid-refit when the
        // table is removed must not publish a snapshot for the dead table.
        // Simulated deterministically: ingest, tombstone, then drive the
        // publish path a racing refresh would run.
        let (t, d) = make_table(usize::MAX);
        t.submit(&d.answers.all()[..6]).unwrap();
        assert!(t.refresh_now());
        let epoch_before = t.snapshot().epoch;
        t.submit(&d.answers.all()[6..12]).unwrap();
        t.mark_deleted();
        assert!(!t.refresh_now(), "a tombstoned table must not publish");
        assert_eq!(t.snapshot().epoch, epoch_before, "snapshot must be unchanged");
        // Ingest after deletion is refused too.
        assert!(t.submit(&d.answers.all()[..1]).is_err());
        t.stop_refresher();
    }

    #[test]
    fn config_kv_roundtrip() {
        let config = TableConfig {
            policy: "entropy".into(),
            refit_every: 17,
            refresh_interval: Duration::from_millis(321),
            warm_refits: true,
            max_answers_per_cell: Some(9),
            seed: 42,
        };
        let back = TableConfig::from_kv(&config.to_kv());
        assert_eq!(back.policy, config.policy);
        assert_eq!(back.refit_every, config.refit_every);
        assert_eq!(back.refresh_interval, config.refresh_interval);
        assert_eq!(back.warm_refits, config.warm_refits);
        assert_eq!(back.max_answers_per_cell, config.max_answers_per_cell);
        assert_eq!(back.seed, config.seed);
        // Unknown keys and absent keys degrade to defaults, not errors.
        let sparse = TableConfig::from_kv(&[("future_knob".into(), "1".into())]);
        assert_eq!(sparse.policy, TableConfig::default().policy);
        // None round-trips through the empty string.
        let none = TableConfig { max_answers_per_cell: None, ..TableConfig::default() };
        assert_eq!(TableConfig::from_kv(&none.to_kv()).max_answers_per_cell, None);
    }
}
