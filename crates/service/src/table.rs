//! Per-table service state: lock-split ingest/read paths and the background
//! refresher thread.
//!
//! Each hosted table runs the paper's online loop (Fig. 1 / Algorithm 2)
//! with the request path split in two:
//!
//! * **Ingest** (`POST …/answers`) appends to the [`OnlineTCrowd`] behind a
//!   `Mutex` — an `O(1)` log push plus the §5.1 incremental posterior
//!   update. No EM runs on this path.
//! * **Reads** (assignment, truth, stats) share an immutable [`Snapshot`]
//!   behind an `RwLock<Arc<…>>`: the log prefix at the freeze epoch, the
//!   frozen [`AnswerMatrix`] and the last published [`InferenceResult`].
//!   Readers clone the `Arc` and never contend with ingestion.
//!
//! A per-table **refresher thread** closes the loop: on a configurable
//! cadence (or immediately once [`TableConfig::refit_every`] answers are
//! pending) it delta-merges the log tail into the evolving freeze, re-fits
//! EM (warm-started when configured), and atomically publishes the new
//! snapshot. This mirrors [`OnlineTCrowd`]'s `refit_every` contract, moved
//! off the request path.
//!
//! Known tradeoff: a re-fit holds the ingest `Mutex` for its duration, so
//! `POST …/answers` landing *during* a refresh stall until it publishes
//! (reads never do — they stay on the previous snapshot). Fitting outside
//! the lock needs a merge protocol for the answers that arrive mid-fit;
//! see the ROADMAP open item.

use crate::policy::make_policy;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::time::{Duration, Instant};
use tcrowd_core::{AssignmentContext, InferenceResult, OnlineTCrowd, TCrowd};
use tcrowd_tabular::{Answer, AnswerLog, AnswerMatrix, CellId, Schema};

/// Per-table service policy knobs (the `POST /tables` request body).
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// Default assignment policy (a [`make_policy`] name).
    pub policy: String,
    /// Pending-answer threshold that wakes the refresher immediately (the
    /// service-side mirror of [`OnlineTCrowd::refit_every`]).
    pub refit_every: usize,
    /// Refresher cadence: every tick with pending answers re-fits and
    /// publishes, threshold reached or not.
    pub refresh_interval: Duration,
    /// Warm-start re-fits from the previous published fit (see
    /// `TCrowd::infer_matrix_warm`). Off by default: cold re-fits make the
    /// published state a pure function of the collected log, which the
    /// determinism tests and the bench's offline-agreement gate rely on.
    pub warm_refits: bool,
    /// Optional per-cell redundancy cap enforced at assignment time.
    pub max_answers_per_cell: Option<usize>,
    /// Seed for stochastic policies (random baseline, entity grouping).
    pub seed: u64,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            policy: "structure-aware".to_string(),
            refit_every: 64,
            refresh_interval: Duration::from_millis(200),
            warm_refits: false,
            max_answers_per_cell: None,
            seed: 1,
        }
    }
}

/// An immutable published view of one table: everything the read endpoints
/// serve, consistent at one freeze epoch.
pub struct Snapshot {
    /// The collected answers up to [`Snapshot::epoch`], in arrival order.
    pub log: AnswerLog,
    /// The frozen columnar store of [`Snapshot::log`].
    pub matrix: AnswerMatrix,
    /// The inference result published with this freeze.
    pub result: InferenceResult,
    /// Number of log answers this snapshot covers.
    pub epoch: usize,
    /// How many refreshes this table has published (0 = the initial empty
    /// fit).
    pub refreshes: u64,
    /// When this snapshot was published.
    pub published_at: Instant,
}

/// Refresher wake/stop channel.
struct RefreshCtl {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// One hosted table.
pub struct TableState {
    /// Table id (registry key).
    pub id: String,
    /// The table schema.
    pub schema: Schema,
    /// Service configuration.
    pub config: TableConfig,
    rows: usize,
    ingest: Mutex<OnlineTCrowd>,
    published: RwLock<Arc<Snapshot>>,
    ingested: AtomicU64,
    ctl: Arc<RefreshCtl>,
    refresher: Mutex<Option<std::thread::JoinHandle<()>>>,
    created_at: Instant,
}

impl TableState {
    /// Create a table (empty log, initial fit published) and start its
    /// refresher thread.
    pub fn create(id: String, schema: Schema, rows: usize, config: TableConfig) -> Arc<TableState> {
        let mut online = OnlineTCrowd::empty(TCrowd::default_full(), schema.clone(), rows);
        // The refresher (not the ingest path) owns refit timing.
        online.refit_every = usize::MAX;
        online.warm_refits = config.warm_refits;
        let snapshot = Arc::new(Snapshot {
            log: online.answers().clone(),
            matrix: online.matrix().clone(),
            result: online.result().clone(),
            epoch: 0,
            refreshes: 0,
            published_at: Instant::now(),
        });
        let table = Arc::new(TableState {
            id,
            schema,
            config,
            rows,
            ingest: Mutex::new(online),
            published: RwLock::new(snapshot),
            ingested: AtomicU64::new(0),
            ctl: Arc::new(RefreshCtl { stop: Mutex::new(false), wake: Condvar::new() }),
            refresher: Mutex::new(None),
            created_at: Instant::now(),
        });
        let weak: Weak<TableState> = Arc::downgrade(&table);
        let ctl = Arc::clone(&table.ctl);
        let interval = table.config.refresh_interval;
        let handle = std::thread::spawn(move || loop {
            {
                let guard = ctl.stop.lock().expect("refresher ctl");
                if *guard {
                    return;
                }
                // Only sleep while below the wake threshold: a notify_one
                // that fires while a refresh is running (not while we wait)
                // would otherwise be lost and the burst would sit for a full
                // interval.
                let over_threshold = match weak.upgrade() {
                    Some(t) => t.pending() >= t.config.refit_every,
                    None => return,
                };
                if !over_threshold {
                    let (guard, _) =
                        ctl.wake.wait_timeout(guard, interval).expect("refresher wait");
                    if *guard {
                        return;
                    }
                }
            }
            let Some(table) = weak.upgrade() else { return };
            if table.pending() > 0 {
                table.refresh_now();
            }
        });
        *table.refresher.lock().expect("refresher handle") = Some(handle);
        table
    }

    /// Number of table rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of table columns.
    pub fn cols(&self) -> usize {
        self.schema.num_columns()
    }

    /// Total answers accepted since creation.
    pub fn ingested(&self) -> u64 {
        self.ingested.load(Ordering::SeqCst)
    }

    /// Answers accepted but not yet covered by the published snapshot.
    pub fn pending(&self) -> usize {
        (self.ingested() as usize).saturating_sub(self.snapshot().epoch)
    }

    /// The current published snapshot (cheap: one `Arc` clone).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.published.read().expect("published lock"))
    }

    /// Validate and ingest a batch of answers. The whole batch is rejected
    /// (nothing ingested) if any answer is malformed, so callers can safely
    /// retry verbatim. Returns the number accepted.
    pub fn submit(&self, answers: &[Answer]) -> Result<usize, String> {
        for (i, a) in answers.iter().enumerate() {
            if a.cell.row as usize >= self.rows || a.cell.col as usize >= self.cols() {
                return Err(format!(
                    "answer {i}: cell ({}, {}) outside the {}x{} table",
                    a.cell.row,
                    a.cell.col,
                    self.rows,
                    self.cols()
                ));
            }
            if !self.schema.column_type(a.cell.col as usize).accepts(&a.value) {
                return Err(format!(
                    "answer {i}: value does not match column {} ({})",
                    a.cell.col, self.schema.columns[a.cell.col as usize].name
                ));
            }
        }
        {
            let mut online = self.ingest.lock().expect("ingest lock");
            for &a in answers {
                online.add_answer(a);
            }
        }
        self.ingested.fetch_add(answers.len() as u64, Ordering::SeqCst);
        if self.pending() >= self.config.refit_every {
            // Notify while holding the refresher's mutex: this serialises
            // against the refresher's below-threshold check, so the wake
            // either lands while it waits or the re-check sees the new
            // pending count — never lost in the check→wait window.
            let _guard = self.ctl.stop.lock().expect("refresher ctl");
            self.ctl.wake.notify_one();
        }
        Ok(answers.len())
    }

    /// Re-fit on everything ingested so far and publish a fresh snapshot.
    /// No-op (returns `false`) when the published snapshot is already
    /// current. Runs on the refresher thread normally; `POST …/refresh`
    /// calls it synchronously.
    pub fn refresh_now(&self) -> bool {
        let snapshot = {
            let mut online = self.ingest.lock().expect("ingest lock");
            if !online.flush_refit() && online.answers().len() == self.snapshot().epoch {
                return false;
            }
            Snapshot {
                log: online.answers().clone(),
                matrix: online.matrix().clone(),
                result: online.result().clone(),
                epoch: online.answers().len(),
                refreshes: self.snapshot().refreshes + 1,
                published_at: Instant::now(),
            }
        };
        let mut slot = self.published.write().expect("published lock");
        // Publishes can race (refresher tick vs synchronous `POST …/refresh`
        // that already dropped the ingest lock); never replace a newer
        // snapshot with an older one.
        if snapshot.epoch >= slot.epoch {
            *slot = Arc::new(snapshot);
        }
        true
    }

    /// Select up to `k` cells for `worker` from the published snapshot,
    /// using `policy` (or the table's configured default). Returns the
    /// snapshot the decision was made from alongside the picks, so callers
    /// can report the decision epoch.
    pub fn assign(
        &self,
        worker: tcrowd_tabular::WorkerId,
        k: usize,
        policy: Option<&str>,
    ) -> Result<(Arc<Snapshot>, Vec<CellId>, String), String> {
        let name = policy.unwrap_or(&self.config.policy).to_string();
        let mut policy = make_policy(&name, self.rows, self.config.seed)?;
        let snap = self.snapshot();
        let ctx = AssignmentContext {
            schema: &self.schema,
            answers: &snap.log,
            freeze: snap.matrix.freeze_view(),
            inference: Some(&snap.result),
            max_answers_per_cell: self.config.max_answers_per_cell,
            terminated: None,
        };
        let picks = policy.select(worker, k, &ctx);
        Ok((snap, picks, name))
    }

    /// Milliseconds since this table was created.
    pub fn age_ms(&self) -> u128 {
        self.created_at.elapsed().as_millis()
    }

    /// Stop and join the refresher thread (idempotent). The registry calls
    /// this on removal/shutdown; a table dropped without it would leave the
    /// thread parked until its weak upgrade fails on the next tick.
    pub fn stop_refresher(&self) {
        *self.ctl.stop.lock().expect("refresher ctl") = true;
        self.ctl.wake.notify_all();
        if let Some(handle) = self.refresher.lock().expect("refresher handle").take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, Value, WorkerId};

    fn make_table(refit_every: usize) -> (Arc<TableState>, tcrowd_tabular::Dataset) {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 12,
                columns: 3,
                num_workers: 8,
                answers_per_task: 3,
                ..Default::default()
            },
            5,
        );
        let config = TableConfig {
            refit_every,
            refresh_interval: Duration::from_millis(10),
            ..Default::default()
        };
        let t = TableState::create("t".into(), d.schema.clone(), d.rows(), config);
        (t, d)
    }

    #[test]
    fn ingest_refresh_and_read_paths_agree() {
        let (t, d) = make_table(usize::MAX);
        assert_eq!(t.snapshot().epoch, 0);
        t.submit(d.answers.all()).unwrap();
        assert_eq!(t.ingested() as usize, d.answers.len());
        // Synchronous refresh publishes everything.
        assert!(t.refresh_now());
        let snap = t.snapshot();
        assert_eq!(snap.epoch, d.answers.len());
        assert_eq!(snap.matrix.len(), d.answers.len());
        assert_eq!(t.pending(), 0);
        // Published estimates equal the batch fit (cold refits).
        let batch = TCrowd::default_full().infer(&d.schema, &d.answers);
        assert_eq!(snap.result.estimates(), batch.estimates());
        // Assignment works off the snapshot.
        let (used, picks, name) = t.assign(WorkerId(999), 3, None).unwrap();
        assert_eq!(used.epoch, snap.epoch);
        assert_eq!(picks.len(), 3);
        assert_eq!(name, "structure-aware");
        t.stop_refresher();
    }

    #[test]
    fn background_refresher_publishes_on_threshold() {
        let (t, d) = make_table(4);
        t.submit(&d.answers.all()[..8]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        while t.snapshot().epoch < 8 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(t.snapshot().epoch, 8, "refresher should publish pending answers");
        assert!(t.snapshot().refreshes >= 1);
        t.stop_refresher();
    }

    #[test]
    fn submit_rejects_bad_batches_atomically() {
        let (t, d) = make_table(usize::MAX);
        let good = d.answers.all()[0];
        let bad_cell = Answer { cell: CellId::new(999, 0), ..good };
        let err = t.submit(&[good, bad_cell]).unwrap_err();
        assert!(err.contains("answer 1"), "{err}");
        assert_eq!(t.ingested(), 0, "a rejected batch must ingest nothing");
        // Wrong datatype for the column.
        let col0 = d.schema.column_type(0).clone();
        let wrong = Answer {
            value: if col0.is_categorical() {
                Value::Continuous(1.0)
            } else {
                Value::Categorical(0)
            },
            ..good
        };
        assert!(t.submit(&[wrong]).is_err());
        t.stop_refresher();
    }
}
