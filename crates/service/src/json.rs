//! Minimal JSON tree, parser and serializer.
//!
//! The offline container has no `serde`, and the service's wire format is a
//! handful of small, flat documents — a hand-rolled recursive-descent parser
//! over bytes is ~200 lines and keeps the crate std-only. Objects preserve
//! insertion order (serialization is deterministic), numbers are `f64`
//! (every quantity the API carries — ids, counts, labels, cell values — fits
//! exactly), and strings support the standard escapes including `\uXXXX`
//! with surrogate pairs.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered (serialization is deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions,
    /// negatives and anything beyond 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if x.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&x) {
            Some(x as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                // JSON has no NaN/Inf; the API never produces them, but a
                // defensive `null` beats emitting an unparsable token.
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialization (no insignificant whitespace); `Json::to_string()`
/// comes with it.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(x as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\x08' => out.push_str("\\b"),
            '\x0c' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document; the whole input must be one value (trailing
/// whitespace allowed). Errors carry the byte offset.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: runs of plain UTF-8 move in one slice append.
            while !matches!(self.peek(), Some(b'"' | b'\\') | None)
                && self.peek().is_some_and(|c| c >= 0x20)
            {
                self.pos += 1;
            }
            // The scan advances byte-wise but only stops on ASCII markers, so
            // the boundary is always a char boundary.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\x08'),
                        b'f' => out.push('\x0c'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let src =
            r#"{"id":"t1","rows":3,"flag":true,"none":null,"xs":[1,-2.5,3e2],"nest":{"a":"b c"}}"#;
        let doc = parse(src).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("t1"));
        assert_eq!(doc.get("rows").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("none"), Some(&Json::Null));
        let xs: Vec<f64> = doc
            .get("xs")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        assert_eq!(xs, vec![1.0, -2.5, 300.0]);
        // Serialize → parse is the identity.
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["plain", "tab\there", "quote\"back\\slash", "unicode: é ∑ 🙂", "ctrl\u{1}"] {
            let doc = Json::Str(s.to_string());
            assert_eq!(parse(&doc.to_string()).unwrap(), doc, "{s:?}");
        }
        // Escaped input forms, including a surrogate pair.
        assert_eq!(parse(r#""aA🙂b""#).unwrap(), Json::Str("aA🙂b".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "nan",
            r#""\ud800x""#,
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("\"3\"").unwrap().as_u64(), None);
    }

    #[test]
    fn object_order_is_preserved() {
        let doc = Json::obj([("z", Json::from(1usize)), ("a", Json::from(2usize))]);
        assert_eq!(doc.to_string(), "{\"z\":1,\"a\":2}");
    }
}
