//! Assignment-policy factory shared by every table.
//!
//! The same name set the CLI's `simulate`/`compare` commands accept, so a
//! policy tuned offline can be deployed to a served table verbatim.

use tcrowd_baselines::{EntropyPolicy, LoopingPolicy, QascaPolicy, RandomPolicy};
use tcrowd_core::{
    AssignmentPolicy, EntityAwarePolicy, InherentGainPolicy, RowGrouping, StructureAwarePolicy,
};

/// Every accepted policy name, in display order.
pub const POLICY_NAMES: &[&str] =
    &["structure-aware", "inherent", "entity", "qasca", "random", "looping", "entropy"];

/// Build a named assignment policy. `rows` sizes the entity grouping; `seed`
/// fixes the stochastic policies.
pub fn make_policy(
    name: &str,
    rows: usize,
    seed: u64,
) -> Result<Box<dyn AssignmentPolicy>, String> {
    Ok(match name {
        "structure-aware" => Box::new(StructureAwarePolicy::default()),
        "inherent" => Box::new(InherentGainPolicy::default()),
        "entity" => Box::new(EntityAwarePolicy::new(RowGrouping::Learned {
            groups: (rows / 10).clamp(2, 8),
            seed,
        })),
        "qasca" => Box::new(QascaPolicy),
        "random" => Box::new(RandomPolicy::seeded(seed)),
        "looping" => Box::new(LoopingPolicy::default()),
        "entropy" => Box::new(EntropyPolicy),
        other => {
            return Err(format!(
                "unknown policy '{other}' (expected one of {})",
                POLICY_NAMES.join(", ")
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_policy_constructs() {
        for name in POLICY_NAMES {
            assert!(make_policy(name, 40, 1).is_ok(), "{name}");
        }
        assert!(make_policy("nope", 40, 1).is_err());
    }
}
