//! The multi-table registry: the service hosts many independent tables,
//! each with its own schema, policy configuration, ingest state and
//! refresher thread.

use crate::table::{TableConfig, TableState};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;
use tcrowd_tabular::Schema;

/// All hosted tables. Cheap to share (`Arc`); the HTTP handler holds one.
pub struct TableRegistry {
    tables: RwLock<BTreeMap<String, Arc<TableState>>>,
    next_id: AtomicU64,
    started_at: Instant,
}

impl Default for TableRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl TableRegistry {
    /// An empty registry.
    pub fn new() -> TableRegistry {
        TableRegistry {
            tables: RwLock::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            started_at: Instant::now(),
        }
    }

    /// Create and register a table. `id: None` allocates `table-N`.
    /// Fails (leaving the registry unchanged) if the id is taken or empty.
    pub fn create(
        &self,
        id: Option<String>,
        schema: Schema,
        rows: usize,
        config: TableConfig,
    ) -> Result<Arc<TableState>, String> {
        if rows == 0 {
            return Err("a table needs at least one row".into());
        }
        let id = match id {
            // Ids travel inside URL path segments; restricting them to
            // URL-safe characters keeps every created table addressable
            // (a '/', '%', '+' or space would be split or percent-decoded
            // away by the router before matching).
            Some(id) => {
                if id.is_empty() || id.len() > 64 {
                    return Err("table id must be 1..=64 characters".into());
                }
                if !id.chars().all(|c| c.is_ascii_alphanumeric() || "._-".contains(c)) {
                    return Err(format!(
                        "table id '{id}' may only contain ASCII letters, digits, '.', '_', '-'"
                    ));
                }
                id
            }
            None => format!("table-{}", self.next_id.fetch_add(1, Ordering::SeqCst)),
        };
        let mut tables = self.tables.write().expect("registry lock");
        if tables.contains_key(&id) {
            return Err(format!("table '{id}' already exists"));
        }
        let table = TableState::create(id.clone(), schema, rows, config);
        tables.insert(id, Arc::clone(&table));
        Ok(table)
    }

    /// Look up a table.
    pub fn get(&self, id: &str) -> Option<Arc<TableState>> {
        self.tables.read().expect("registry lock").get(id).cloned()
    }

    /// Remove a table, stopping its refresher. Returns whether it existed.
    pub fn remove(&self, id: &str) -> bool {
        let removed = self.tables.write().expect("registry lock").remove(id);
        match removed {
            Some(t) => {
                t.stop_refresher();
                true
            }
            None => false,
        }
    }

    /// Ids of every hosted table, sorted.
    pub fn list(&self) -> Vec<String> {
        self.tables.read().expect("registry lock").keys().cloned().collect()
    }

    /// Number of hosted tables.
    pub fn len(&self) -> usize {
        self.tables.read().expect("registry lock").len()
    }

    /// True when no tables are hosted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Milliseconds since the registry was created (≈ service uptime).
    pub fn uptime_ms(&self) -> u128 {
        self.started_at.elapsed().as_millis()
    }

    /// Stop every table's refresher thread (joins them). Call before
    /// dropping the registry in tests and on server shutdown; without it the
    /// threads exit lazily on their next tick.
    pub fn shutdown(&self) {
        for table in self.tables.read().expect("registry lock").values() {
            table.stop_refresher();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(
            "t",
            "k",
            vec![
                Column::new("a", ColumnType::categorical_with_cardinality(3)),
                Column::new("b", ColumnType::Continuous { min: 0.0, max: 1.0 }),
            ],
        )
    }

    #[test]
    fn create_get_list_remove() {
        let reg = TableRegistry::new();
        assert!(reg.is_empty());
        let t1 = reg.create(Some("one".into()), schema(), 5, TableConfig::default()).unwrap();
        let t2 = reg.create(None, schema(), 5, TableConfig::default()).unwrap();
        assert_eq!(t1.id, "one");
        assert_eq!(t2.id, "table-1");
        assert_eq!(reg.list(), vec!["one".to_string(), "table-1".to_string()]);
        assert!(reg.get("one").is_some());
        assert!(reg.get("nope").is_none());
        // Duplicate and invalid ids are rejected.
        assert!(reg.create(Some("one".into()), schema(), 5, TableConfig::default()).is_err());
        assert!(reg.create(Some("".into()), schema(), 5, TableConfig::default()).is_err());
        assert!(reg.create(None, schema(), 0, TableConfig::default()).is_err());
        // Ids that would not survive the HTTP router's path split/decoding.
        for bad in ["a/b", "a b", "a+b", "a%2Fb", "é", &"x".repeat(65)] {
            assert!(
                reg.create(Some(bad.to_string()), schema(), 5, TableConfig::default()).is_err(),
                "{bad:?} should be rejected"
            );
        }
        assert!(reg.create(Some("ok-id_1.v2".into()), schema(), 5, TableConfig::default()).is_ok());
        assert!(reg.remove("ok-id_1.v2"));
        assert!(reg.remove("one"));
        assert!(!reg.remove("one"));
        assert_eq!(reg.len(), 1);
        reg.shutdown();
    }
}
