//! The multi-table registry: the service hosts many independent tables,
//! each with its own schema, policy configuration, ingest state and
//! refresher thread — and, when the registry is backed by a
//! [`tcrowd_store::Store`], its own WAL + snapshot directory with
//! recover-on-boot.

use crate::obs::ServiceObs;
use crate::table::{Durability, TableConfig, TableState};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;
use tcrowd_store::{Store, TableMeta};
use tcrowd_tabular::Schema;

/// What [`TableRegistry::recover`] found on boot.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Tables brought back to life.
    pub tables: usize,
    /// Answers reconstructed across all tables.
    pub answers: u64,
    /// Tables whose recovery was snapshot-assisted (WAL-tail replay +
    /// warm-started EM).
    pub with_snapshot: usize,
    /// Answers replayed from WAL tails (everything, for tables without a
    /// usable snapshot).
    pub replayed: u64,
    /// Tables whose WAL had a torn tail truncated.
    pub torn_tails: usize,
}

/// All hosted tables. Cheap to share (`Arc`); the HTTP handler holds one.
pub struct TableRegistry {
    tables: RwLock<BTreeMap<String, Arc<TableState>>>,
    next_id: AtomicU64,
    store: Option<Arc<Store>>,
    started_at: Instant,
    /// Server-wide backpressure default applied to tables created without
    /// an explicit `max_pending` (0 = unbounded; set from `serve
    /// --max-pending`).
    default_max_pending: AtomicUsize,
    /// Registry-wide observability: the metrics registry `/metrics`
    /// renders and the per-table event rings.
    obs: Arc<ServiceObs>,
}

impl Default for TableRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl TableRegistry {
    /// An empty, memory-only registry (tables die with the process).
    pub fn new() -> TableRegistry {
        TableRegistry {
            tables: RwLock::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            store: None,
            started_at: Instant::now(),
            default_max_pending: AtomicUsize::new(0),
            obs: Arc::new(ServiceObs::new()),
        }
    }

    /// The registry-wide observability handle (metrics + event rings).
    pub fn obs(&self) -> &Arc<ServiceObs> {
        &self.obs
    }

    /// Set the backpressure default for tables created without an explicit
    /// `max_pending` (0 clears it). Tables already hosted keep their bound.
    pub fn set_default_max_pending(&self, bound: usize) {
        self.default_max_pending.store(bound, Ordering::SeqCst);
    }

    /// The server-wide `max_pending` default, if set.
    pub fn default_max_pending(&self) -> Option<usize> {
        match self.default_max_pending.load(Ordering::SeqCst) {
            0 => None,
            n => Some(n),
        }
    }

    /// An empty registry whose tables persist into `store`. Call
    /// [`Self::recover`] to bring previously-persisted tables back.
    pub fn with_store(store: Arc<Store>) -> TableRegistry {
        TableRegistry { store: Some(store), ..Self::new() }
    }

    /// The backing store, if any.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Recover every table persisted in the backing store: WAL replay
    /// (snapshot-assisted where possible, torn tails truncated), a fit
    /// seeded from the snapshot's parameters, refresher threads restarted.
    /// Idempotent per id (already-hosted ids are left alone); errors abort —
    /// a durable service must not come up silently missing tables.
    pub fn recover(&self) -> Result<RecoveryReport, String> {
        let store = self.store.as_ref().ok_or("registry has no backing store to recover from")?;
        let mut report = RecoveryReport::default();
        for rec in store.recover_all().map_err(|e| format!("recovery failed: {e}"))? {
            let mut tables = self.tables.write().unwrap_or_else(|p| p.into_inner());
            if tables.contains_key(&rec.id) {
                continue;
            }
            let config = TableConfig::from_kv(&rec.meta.config);
            report.tables += 1;
            report.answers += rec.log.len() as u64;
            report.replayed += rec.replayed_tail;
            report.with_snapshot += usize::from(rec.snapshot_epoch.is_some());
            report.torn_tails += usize::from(rec.torn.is_some());
            let id = rec.id.clone();
            let table = TableState::recover(rec, config, store.io_handle(), self.obs.table(&id));
            tables.insert(id, table);
        }
        Ok(report)
    }

    /// Create and register a table. `id: None` allocates `table-N`.
    /// Fails (leaving the registry unchanged) if the id is taken or empty.
    /// On a store-backed registry the table's WAL Create record is durable
    /// before this returns.
    pub fn create(
        &self,
        id: Option<String>,
        schema: Schema,
        rows: usize,
        mut config: TableConfig,
    ) -> Result<Arc<TableState>, String> {
        if rows == 0 {
            return Err("a table needs at least one row".into());
        }
        if config.max_pending.is_none() {
            config.max_pending = self.default_max_pending();
        }
        let id = match id {
            // Ids travel inside URL path segments; restricting them to
            // URL-safe characters keeps every created table addressable
            // (a '/', '%', '+' or space would be split or percent-decoded
            // away by the router before matching). The same charset keeps
            // them safe as store directory names.
            Some(id) => {
                if id.is_empty() || id.len() > 64 {
                    return Err("table id must be 1..=64 characters".into());
                }
                if !id.chars().all(|c| c.is_ascii_alphanumeric() || "._-".contains(c))
                    || id == "."
                    || id == ".."
                {
                    return Err(format!(
                        "table id '{id}' may only contain ASCII letters, digits, '.', '_', '-'"
                    ));
                }
                id
            }
            None => format!("table-{}", self.next_id.fetch_add(1, Ordering::SeqCst)),
        };
        let mut tables = self.tables.write().unwrap_or_else(|p| p.into_inner());
        if tables.contains_key(&id) {
            return Err(format!("table '{id}' already exists"));
        }
        let durability = match &self.store {
            Some(store) => {
                let meta = TableMeta { rows, schema: schema.clone(), config: config.to_kv() };
                let wal = store
                    .create_table(&id, &meta)
                    .map_err(|e| format!("cannot persist table '{id}': {e}"))?;
                Some(Durability::new(wal, store.table_dir(&id), meta, store.io_handle()))
            }
            None => None,
        };
        let table = TableState::create_with_obs(
            id.clone(),
            schema,
            rows,
            config,
            durability,
            self.obs.table(&id),
        );
        tables.insert(id, Arc::clone(&table));
        Ok(table)
    }

    /// Look up a table.
    pub fn get(&self, id: &str) -> Option<Arc<TableState>> {
        self.tables.read().unwrap_or_else(|p| p.into_inner()).get(id).cloned()
    }

    /// Remove a table. The tombstone is set *before* the refresher is
    /// stopped, so a refresh that is already mid-refit cannot publish a
    /// snapshot for the dead table; on durable tables the tombstone is also
    /// fsynced into the WAL before the directory is removed, so a crash in
    /// between cannot resurrect it. Returns whether it existed.
    pub fn remove(&self, id: &str) -> bool {
        let removed = self.tables.write().unwrap_or_else(|p| p.into_inner()).remove(id);
        match removed {
            Some(t) => {
                t.mark_deleted();
                if let Err(e) = t.append_tombstone() {
                    eprintln!("tcrowd-service: {e}");
                }
                t.stop_refresher();
                if let Some(store) = &self.store {
                    if let Err(e) = store.remove_table_dir(id) {
                        eprintln!(
                            "tcrowd-service: cannot remove table dir for '{id}': {e} \
                             (tombstone is durable; recovery will finish the cleanup)"
                        );
                    }
                }
                self.obs.remove_table(id);
                true
            }
            None => false,
        }
    }

    /// Ids of every hosted table, sorted.
    pub fn list(&self) -> Vec<String> {
        self.tables.read().unwrap_or_else(|p| p.into_inner()).keys().cloned().collect()
    }

    /// Number of hosted tables.
    pub fn len(&self) -> usize {
        self.tables.read().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Per-table health, sorted by table id: `(id, health string)` where
    /// the health string is `"healthy"`, `"degraded"` or `"recovering"`.
    /// Read from the observability health gauges, so `GET /healthz` never
    /// takes any table's ingest or fitter lock — a wedged table cannot
    /// wedge the health probe.
    pub fn health(&self) -> Vec<(String, &'static str)> {
        self.obs.table_health()
    }

    /// True when no tables are hosted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Milliseconds since the registry was created (≈ service uptime).
    pub fn uptime_ms(&self) -> u128 {
        self.started_at.elapsed().as_millis()
    }

    /// Stop every table's refresher thread (joins them) and flush every
    /// WAL. Call before dropping the registry in tests and on server
    /// shutdown; without it the threads exit lazily on their next tick.
    pub fn shutdown(&self) {
        for table in self.tables.read().unwrap_or_else(|p| p.into_inner()).values() {
            table.stop_refresher();
            // Drain + join the commit thread first so every queued batch is
            // committed before the snapshot pins the durable mark.
            table.shutdown_committer();
            table.persist_store_snapshot();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(
            "t",
            "k",
            vec![
                Column::new("a", ColumnType::categorical_with_cardinality(3)),
                Column::new("b", ColumnType::Continuous { min: 0.0, max: 1.0 }),
            ],
        )
    }

    #[test]
    fn create_get_list_remove() {
        let reg = TableRegistry::new();
        assert!(reg.is_empty());
        let t1 = reg.create(Some("one".into()), schema(), 5, TableConfig::default()).unwrap();
        let t2 = reg.create(None, schema(), 5, TableConfig::default()).unwrap();
        assert_eq!(t1.id, "one");
        assert_eq!(t2.id, "table-1");
        assert_eq!(reg.list(), vec!["one".to_string(), "table-1".to_string()]);
        assert!(reg.get("one").is_some());
        assert!(reg.get("nope").is_none());
        // Duplicate and invalid ids are rejected.
        assert!(reg.create(Some("one".into()), schema(), 5, TableConfig::default()).is_err());
        assert!(reg.create(Some("".into()), schema(), 5, TableConfig::default()).is_err());
        assert!(reg.create(None, schema(), 0, TableConfig::default()).is_err());
        // Ids that would not survive the HTTP router's path split/decoding
        // (or would escape the store's tables/ directory).
        for bad in ["a/b", "a b", "a+b", "a%2Fb", "é", ".", "..", &"x".repeat(65)] {
            assert!(
                reg.create(Some(bad.to_string()), schema(), 5, TableConfig::default()).is_err(),
                "{bad:?} should be rejected"
            );
        }
        assert!(reg.create(Some("ok-id_1.v2".into()), schema(), 5, TableConfig::default()).is_ok());
        assert!(reg.remove("ok-id_1.v2"));
        assert!(reg.remove("one"));
        assert!(!reg.remove("one"));
        assert_eq!(reg.len(), 1);
        reg.shutdown();
    }

    #[test]
    fn removing_a_table_mid_refit_cannot_resurrect_it() {
        // The deletion race, end to end at the registry level: a handle the
        // refresher (or any other thread) still holds must become inert the
        // moment `remove` runs — no publish, no ingest.
        let reg = TableRegistry::new();
        let t = reg.create(Some("doomed".into()), schema(), 5, TableConfig::default()).unwrap();
        t.submit(&[tcrowd_tabular::Answer {
            worker: tcrowd_tabular::WorkerId(1),
            cell: tcrowd_tabular::CellId::new(0, 0),
            value: tcrowd_tabular::Value::Categorical(1),
        }])
        .unwrap();
        let epoch_before = t.snapshot().epoch;
        assert!(reg.remove("doomed"));
        assert!(t.is_deleted());
        assert!(!t.refresh_now(), "dead table must not publish");
        assert_eq!(t.snapshot().epoch, epoch_before);
        assert!(t.submit(&[]).is_err(), "dead table must not ingest");
        reg.shutdown();
    }
}
