//! Hand-rolled HTTP/1.1 front end: request parsing, response writing, and a
//! blocking worker-thread-pool server over [`std::net::TcpListener`].
//!
//! Scope is deliberately the subset a JSON API needs — `Content-Length`
//! bodies (no chunked transfer), persistent connections (HTTP/1.1 keep-alive
//! is what makes the closed-loop benchmark measure the service rather than
//! TCP handshakes), and `%xx` query decoding. Requests are capped at
//! [`MAX_BODY`] bytes; anything malformed is answered with `400` and the
//! connection is dropped, so a confused peer cannot wedge a worker thread.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Upper bound on request bodies (1 MiB of JSON ≈ 20k batched answers).
pub const MAX_BODY: usize = 1 << 20;

/// Per-connection socket read timeout; a stalled peer frees its worker
/// thread after this long.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string (e.g. `/tables/t1/truth`).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should be kept open after responding.
    pub keep_alive: bool,
    /// Correlation id: the sanitized `X-Request-Id` header when the client
    /// sent one, otherwise a server-generated `req-<hex>`. Echoed back on
    /// the response and threaded into event traces.
    pub request_id: String,
}

impl Request {
    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// One response; the server adds the framing headers.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (`Retry-After` on 429/503 responses), written verbatim
    /// after the framing headers.
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl std::fmt::Display) -> Response {
        Response {
            status,
            body: body.to_string().into_bytes(),
            content_type: "application/json",
            headers: Vec::new(),
        }
    }

    /// Attach an extra header (builder-style).
    pub fn with_header(mut self, name: &'static str, value: impl std::fmt::Display) -> Response {
        self.headers.push((name, value.to_string()));
        self
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

fn decode_percent(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 3 <= bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (decode_percent(k), decode_percent(v)),
            None => (decode_percent(kv), String::new()),
        })
        .collect()
}

/// Longest accepted request/header line; `read_line` grows its buffer until
/// a newline arrives, so without this cap a peer streaming newline-free
/// bytes would allocate without bound (`MAX_BODY` only limits the body).
const MAX_LINE: u64 = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 100;

/// Longest accepted `X-Request-Id` value; anything longer is truncated so a
/// hostile client cannot bloat event traces.
const MAX_REQUEST_ID: usize = 64;

/// Source of server-generated correlation ids.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Keep a client-supplied correlation id loggable: URL/label-safe charset,
/// bounded length. Returns `None` when nothing usable remains.
fn sanitize_request_id(raw: &str) -> Option<String> {
    let id: String = raw
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || "._-".contains(*c))
        .take(MAX_REQUEST_ID)
        .collect();
    if id.is_empty() {
        None
    } else {
        Some(id)
    }
}

/// `read_line` with the [`MAX_LINE`] allocation cap.
fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> std::io::Result<usize> {
    let n = reader.by_ref().take(MAX_LINE).read_line(line)?;
    if n as u64 >= MAX_LINE && !line.ends_with('\n') {
        return Err(bad("line too long"));
    }
    Ok(n)
}

/// Read one request off the connection. `Ok(None)` means the peer closed
/// cleanly between requests; `Err` covers malformed input and timeouts.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    if read_line_capped(reader, &mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_uppercase(), t.to_string(), v.to_string()),
        _ => return Err(bad("malformed request line")),
    };
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length = 0usize;
    let mut request_id: Option<String> = None;
    for header_count in 0usize.. {
        if header_count >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let mut header = String::new();
        if read_line_capped(reader, &mut header)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad("malformed header"));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| bad("unparsable Content-Length"))?;
                if content_length > MAX_BODY {
                    return Err(bad("body too large"));
                }
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "x-request-id" => request_id = sanitize_request_id(value),
            _ => {}
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (decode_percent(p), parse_query(q)),
        None => (decode_percent(&target), Vec::new()),
    };
    let request_id = request_id
        .unwrap_or_else(|| format!("req-{:x}", NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)));
    Ok(Some(Request { method, path, query, body, keep_alive, request_id }))
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Write a response with framing headers.
pub fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// The request handler the server dispatches to.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (the actual port when started on port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the worker pool and join every thread.
    /// In-flight requests finish. A worker parked on an **idle keep-alive
    /// connection** only returns at its read timeout, so close client
    /// connections before calling this when prompt shutdown matters.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Start serving `handler` on `addr` (use port 0 for an ephemeral port) with
/// `threads` worker threads.
pub fn serve(addr: &str, threads: usize, handler: Handler) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let workers: Vec<_> = (0..threads.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            std::thread::spawn(move || loop {
                // Holding the receiver lock only while popping keeps the pool
                // work-stealing: whichever thread is free takes the next
                // connection.
                let stream = match rx.lock().expect("rx lock").recv() {
                    Ok(s) => s,
                    Err(_) => return, // sender dropped: shutting down
                };
                handle_connection(stream, &handler);
            })
        })
        .collect();

    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = stream {
                // Dropped sender (impossible while this loop runs) would mean
                // the pool is gone; just stop accepting then.
                if tx.send(stream).is_err() {
                    break;
                }
            }
        }
        // `tx` drops here, draining the worker pool.
    });

    Ok(ServerHandle { addr: local, stop, accept_thread: Some(accept_thread), workers })
}

fn handle_connection(stream: TcpStream, handler: &Handler) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                let keep = req.keep_alive;
                let mut resp = handler(&req);
                // Echo the correlation id so clients can match responses to
                // their own ids (or learn the server-generated one).
                resp.headers.push(("X-Request-Id", req.request_id.clone()));
                if write_response(&mut writer, &resp, keep).is_err() || !keep {
                    return;
                }
            }
            Ok(None) => return,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let resp = Response::json(
                    400,
                    format!("{{\"error\":\"{}\"}}", e.to_string().replace('"', "'")),
                );
                let _ = write_response(&mut writer, &resp, false);
                return;
            }
            Err(_) => return, // timeout or reset
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> ServerHandle {
        serve(
            "127.0.0.1:0",
            2,
            Arc::new(|req: &Request| {
                let body = format!(
                    "{{\"method\":\"{}\",\"path\":\"{}\",\"q\":{},\"len\":{}}}",
                    req.method,
                    req.path,
                    req.query.len(),
                    req.body.len()
                );
                Response::json(200, body)
            }),
        )
        .expect("bind")
    }

    fn roundtrip(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_requests_and_shuts_down() {
        let server = echo_server();
        let addr = server.addr();
        let reply = roundtrip(
            addr,
            "GET /x/y?a=1&b=two%20words HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("\"path\":\"/x/y\""), "{reply}");
        assert!(reply.contains("\"q\":2"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let server = echo_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        for i in 0..3 {
            let body = format!("ping{i}");
            let req = format!(
                "POST /echo HTTP/1.1\r\nHost: h\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            );
            s.write_all(req.as_bytes()).unwrap();
            // Read the response head + body off the shared connection.
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("HTTP/1.1 200"), "{line}");
            let mut len = 0usize;
            loop {
                let mut h = String::new();
                reader.read_line(&mut h).unwrap();
                if h.trim_end().is_empty() {
                    break;
                }
                if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                    len = v.trim().parse().unwrap();
                }
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).unwrap();
            assert!(String::from_utf8(body).unwrap().contains("\"len\":5"));
        }
        // Close the keep-alive connection before shutting down: shutdown
        // joins the workers, and a worker parked on an idle connection only
        // returns at its read timeout.
        drop(s);
        server.shutdown();
    }

    #[test]
    fn rejects_oversized_and_malformed_requests() {
        let server = echo_server();
        let addr = server.addr();
        let huge =
            format!("POST / HTTP/1.1\r\nHost: h\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(roundtrip(addr, &huge).starts_with("HTTP/1.1 400"), "oversized body");
        assert!(roundtrip(addr, "NONSENSE\r\n\r\n").starts_with("HTTP/1.1 400"), "bad line");
        // Abusive inputs (over-long line, header flood) must get the peer
        // cut off, not buffered without bound. The server closes with the
        // peer's data still in flight, so the client may see the 400 or a
        // plain reset — both prove the cutoff; an echo of the request would
        // mean the flood was accepted.
        let abusive = |raw: &str| -> String {
            let mut s = TcpStream::connect(addr).unwrap();
            let _ = s.write_all(raw.as_bytes());
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            out
        };
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(16 * 1024));
        let reply = abusive(&long_line);
        assert!(reply.is_empty() || reply.starts_with("HTTP/1.1 400"), "unbounded line: {reply}");
        let many = format!("GET / HTTP/1.1\r\n{}\r\n", "X-H: v\r\n".repeat(150));
        let reply = abusive(&many);
        assert!(reply.is_empty() || reply.starts_with("HTTP/1.1 400"), "header flood: {reply}");
        server.shutdown();
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(decode_percent("a%20b+c%2Fd"), "a b c/d");
        assert_eq!(decode_percent("100%"), "100%"); // truncated escape passes through
    }
}
