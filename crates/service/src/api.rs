//! Route dispatch and the JSON wire format (documented in the crate docs).

use crate::http::{Request, Response};
use crate::json::{parse, Json};
use crate::registry::TableRegistry;
use crate::table::{Snapshot, TableConfig, TableState};
use std::sync::Arc;
use std::time::Duration;
use tcrowd_core::TruthDist;
use tcrowd_tabular::{Answer, CellId, Column, ColumnType, Schema, Value, WorkerId};

fn err_json(status: u16, msg: impl Into<String>) -> Response {
    Response::json(status, Json::obj([("error", Json::Str(msg.into()))]))
}

fn ok_json(body: Json) -> Response {
    Response::json(200, body)
}

/// Dispatch one request against the registry. Infallible: every failure
/// becomes a JSON error response.
pub fn route(registry: &TableRegistry, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => healthz(registry),
        ("GET", ["metrics"]) => metrics(registry),
        ("GET", ["tables"]) => ok_json(Json::obj([(
            "tables",
            Json::Arr(registry.list().into_iter().map(Json::from).collect()),
        )])),
        ("POST", ["tables"]) => create_table(registry, req),
        (_, ["tables"] | ["healthz"] | ["metrics"]) => err_json(405, "method not allowed"),
        (method, ["tables", id, rest @ ..]) => {
            let Some(table) = registry.get(id) else {
                return err_json(404, format!("no table '{id}'"));
            };
            match (method, rest) {
                ("GET", ["assignment"]) => assignment(&table, req),
                ("POST", ["answers"]) => post_answers(&table, req),
                ("GET", ["answers"]) => get_answers(&table),
                ("GET", ["truth"]) => truth(&table, req),
                ("GET", ["stats"]) => stats(&table),
                ("GET", ["events"]) => events(&table, req),
                ("POST", ["refresh"]) => refresh(&table),
                ("GET", ["workers"]) => workers(&table),
                ("POST", ["workers", w, "quarantine"]) => set_quarantine(&table, w, true),
                ("POST", ["workers", w, "release"]) => set_quarantine(&table, w, false),
                ("DELETE", []) => {
                    registry.remove(id);
                    ok_json(Json::obj([("deleted", Json::from(id.to_string()))]))
                }
                _ => err_json(404, "unknown endpoint"),
            }
        }
        _ => err_json(404, "unknown endpoint"),
    }
}

/// Service health: `"ok"` only when every hosted table is `healthy`;
/// otherwise `"degraded"` with the unhealthy tables listed so an operator
/// (or load balancer) can see at a glance which tables are limping.
fn healthz(registry: &TableRegistry) -> Response {
    let health = registry.health();
    let unhealthy: Vec<Json> = health
        .iter()
        .filter(|(_, h)| *h != "healthy")
        .map(|(id, h)| Json::obj([("id", Json::from(id.clone())), ("health", Json::from(*h))]))
        .collect();
    let status = if unhealthy.is_empty() { "ok" } else { "degraded" };
    ok_json(Json::obj([
        ("status", Json::from(status)),
        ("tables", Json::from(registry.len())),
        ("degraded_tables", Json::Arr(unhealthy)),
        ("uptime_ms", Json::from(registry.uptime_ms() as f64)),
    ]))
}

/// Prometheus text exposition of every registered series.
fn metrics(registry: &TableRegistry) -> Response {
    Response {
        status: 200,
        body: registry.obs().render().into_bytes(),
        content_type: tcrowd_obs::render::CONTENT_TYPE,
        headers: Vec::new(),
    }
}

/// Replay the table's lifecycle event ring: `?since=S` resumes after
/// sequence `S` (0 = from the oldest retained event), `&max=N` caps the
/// page (default 100, max 1000). `truncated: true` warns that events
/// between `since` and the oldest retained one were overwritten.
fn events(table: &Arc<TableState>, req: &Request) -> Response {
    let since = match req.query_param("since").map(str::parse::<u64>).transpose() {
        Ok(s) => s.unwrap_or(0),
        Err(_) => return err_json(400, "'since' must be an unsigned integer"),
    };
    let max = match req.query_param("max").map(str::parse::<usize>).transpose() {
        Ok(m) => m.unwrap_or(100).clamp(1, 1000),
        Err(_) => return err_json(400, "'max' must be an unsigned integer"),
    };
    let page = table.obs().events().since(since, max);
    let events: Vec<Json> = page
        .events
        .iter()
        .map(|e| {
            let mut fields = vec![
                ("seq", Json::from(e.seq as f64)),
                ("at_ms", Json::from(e.at_ms as f64)),
                ("kind", Json::from(e.kind)),
                ("detail", Json::from(e.detail.clone())),
            ];
            if let Some(rid) = &e.request_id {
                fields.push(("request_id", Json::from(rid.clone())));
            }
            Json::obj(fields)
        })
        .collect();
    ok_json(Json::obj([
        ("table", Json::from(table.id.clone())),
        ("next_since", Json::from(page.next_since as f64)),
        ("truncated", Json::from(page.truncated)),
        ("events", Json::Arr(events)),
    ]))
}

// ---- schema and value codecs ----

/// Parse a schema document: `{"name"?, "key"?, "columns": [...]}` with each
/// column `{"name", "type": "categorical", "labels": [...]}` (or
/// `"cardinality": k`) or `{"name", "type": "continuous", "min", "max"}`.
fn schema_from_json(doc: &Json) -> Result<Schema, String> {
    let columns =
        doc.get("columns").and_then(Json::as_array).ok_or("schema needs a 'columns' array")?;
    if columns.is_empty() {
        return Err("schema needs at least one column".into());
    }
    let mut out = Vec::with_capacity(columns.len());
    for (j, col) in columns.iter().enumerate() {
        let name = col
            .get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| format!("col{j}"));
        let ty = match col.get("type").and_then(Json::as_str) {
            Some("categorical") => {
                if let Some(labels) = col.get("labels").and_then(Json::as_array) {
                    let labels: Option<Vec<String>> =
                        labels.iter().map(|l| l.as_str().map(str::to_string)).collect();
                    let labels = labels.ok_or(format!("column {j}: labels must be strings"))?;
                    if labels.is_empty() {
                        return Err(format!("column {j}: empty label set"));
                    }
                    ColumnType::Categorical { labels }
                } else if let Some(k) = col.get("cardinality").and_then(Json::as_u64) {
                    if k == 0 || k > u32::MAX as u64 {
                        return Err(format!("column {j}: bad cardinality"));
                    }
                    ColumnType::categorical_with_cardinality(k as u32)
                } else {
                    return Err(format!("column {j}: categorical needs 'labels' or 'cardinality'"));
                }
            }
            Some("continuous") => {
                let min = col.get("min").and_then(Json::as_f64).unwrap_or(0.0);
                let max = col.get("max").and_then(Json::as_f64).unwrap_or(1.0);
                if !min.is_finite() || !max.is_finite() || min >= max {
                    return Err(format!("column {j}: continuous needs finite min < max"));
                }
                ColumnType::Continuous { min, max }
            }
            _ => return Err(format!("column {j}: type must be 'categorical' or 'continuous'")),
        };
        out.push(Column::new(name, ty));
    }
    Ok(Schema::new(
        doc.get("name").and_then(Json::as_str).unwrap_or("table").to_string(),
        doc.get("key").and_then(Json::as_str).unwrap_or("key").to_string(),
        out,
    ))
}

fn schema_to_json(schema: &Schema) -> Json {
    Json::obj([
        ("name", Json::from(schema.name.clone())),
        ("key", Json::from(schema.key.clone())),
        (
            "columns",
            Json::Arr(
                schema
                    .columns
                    .iter()
                    .map(|c| match &c.ty {
                        ColumnType::Categorical { labels } => Json::obj([
                            ("name", Json::from(c.name.clone())),
                            ("type", Json::from("categorical")),
                            (
                                "labels",
                                Json::Arr(labels.iter().map(|l| Json::from(l.clone())).collect()),
                            ),
                        ]),
                        ColumnType::Continuous { min, max } => Json::obj([
                            ("name", Json::from(c.name.clone())),
                            ("type", Json::from("continuous")),
                            ("min", Json::from(*min)),
                            ("max", Json::from(*max)),
                        ]),
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decode a cell value against its column type: a number for continuous
/// columns; a label index (number) or label name (string) for categorical.
fn value_from_json(ty: &ColumnType, v: &Json) -> Result<Value, String> {
    match ty {
        ColumnType::Continuous { .. } => {
            let x = v.as_f64().ok_or("continuous column expects a number")?;
            if !x.is_finite() {
                return Err("continuous value must be finite".into());
            }
            Ok(Value::Continuous(x))
        }
        ColumnType::Categorical { labels } => {
            if let Some(idx) = v.as_u64() {
                if (idx as usize) < labels.len() {
                    Ok(Value::Categorical(idx as u32))
                } else {
                    Err(format!("label index {idx} out of range (cardinality {})", labels.len()))
                }
            } else if let Some(name) = v.as_str() {
                labels
                    .iter()
                    .position(|l| l == name)
                    .map(|i| Value::Categorical(i as u32))
                    .ok_or_else(|| format!("unknown label '{name}'"))
            } else {
                Err("categorical column expects a label index or label string".into())
            }
        }
    }
}

/// Encode a cell value: continuous as a number, categorical as its label
/// string (round-trips through [`value_from_json`]).
fn value_to_json(ty: &ColumnType, v: &Value) -> Json {
    match (ty, v) {
        (ColumnType::Categorical { labels }, Value::Categorical(l)) => {
            Json::from(labels[*l as usize].clone())
        }
        (_, Value::Continuous(x)) => Json::from(*x),
        // Type-mismatched pairs cannot come out of a validated table; encode
        // the raw index rather than panicking a worker thread.
        (_, Value::Categorical(l)) => Json::from(*l),
    }
}

// ---- handlers ----

fn create_table(registry: &TableRegistry, req: &Request) -> Response {
    let body = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(parse)
    {
        Ok(doc) => doc,
        Err(e) => return err_json(400, format!("invalid JSON: {e}")),
    };
    let rows = match body.get("rows").and_then(Json::as_u64) {
        Some(r) if r > 0 && r <= 10_000_000 => r as usize,
        _ => return err_json(400, "'rows' must be a positive integer"),
    };
    let schema =
        match body.get("schema").ok_or("missing 'schema'".to_string()).and_then(schema_from_json) {
            Ok(s) => s,
            Err(e) => return err_json(400, e),
        };
    let mut config = TableConfig::default();
    if let Some(p) = body.get("policy").and_then(Json::as_str) {
        if let Err(e) = crate::policy::make_policy(p, rows, config.seed) {
            return err_json(400, e);
        }
        config.policy = p.to_string();
    }
    if let Some(n) = body.get("refit_every").and_then(Json::as_u64) {
        config.refit_every = (n as usize).max(1);
    }
    if let Some(ms) = body.get("refresh_interval_ms").and_then(Json::as_u64) {
        config.refresh_interval = Duration::from_millis(ms.clamp(1, 60_000));
    }
    if let Some(w) = body.get("warm_refits").and_then(Json::as_bool) {
        config.warm_refits = w;
    }
    if let Some(cap) = body.get("max_answers_per_cell").and_then(Json::as_u64) {
        config.max_answers_per_cell = Some(cap as usize);
    }
    if let Some(seed) = body.get("seed").and_then(Json::as_u64) {
        config.seed = seed;
    }
    if let Some(bound) = body.get("max_pending").and_then(Json::as_u64) {
        if bound == 0 {
            return err_json(400, "'max_pending' must be a positive integer");
        }
        config.max_pending = Some(bound as usize);
    }
    if let Some(auto) = body.get("trust_auto").and_then(Json::as_bool) {
        config.trust_auto = auto;
    }
    if let Some(n) = body.get("trust_min_answers").and_then(Json::as_u64) {
        config.trust.min_answers = n as usize;
    }
    if let Some(x) = body.get("trust_suspect_enter").and_then(Json::as_f64) {
        config.trust.suspect_enter = x;
    }
    if let Some(x) = body.get("trust_suspect_exit").and_then(Json::as_f64) {
        config.trust.suspect_exit = x;
    }
    if let Some(x) = body.get("trust_quarantine_enter").and_then(Json::as_f64) {
        config.trust.quarantine_enter = x;
    }
    if let Some(x) = body.get("trust_quarantine_exit").and_then(Json::as_f64) {
        config.trust.quarantine_exit = x;
    }
    if let Some(n) = body.get("trust_collusion_overlap").and_then(Json::as_u64) {
        config.trust.collusion_min_overlap = n as usize;
    }
    if let Some(x) = body.get("trust_collusion_agreement").and_then(Json::as_f64) {
        config.trust.collusion_agreement = x;
    }
    if let Some(n) = body.get("trust_collusion_collisions").and_then(Json::as_u64) {
        config.trust.collusion_value_collisions = n as usize;
    }
    if let Err(e) = config.trust.validate() {
        return err_json(400, format!("trust config: {e}"));
    }
    if let Some(rate) = body.get("worker_rate").and_then(Json::as_f64) {
        if !rate.is_finite() || rate < 0.0 {
            return err_json(400, "'worker_rate' must be a finite non-negative number");
        }
        config.worker_rate = rate;
    }
    if let Some(burst) = body.get("worker_burst").and_then(Json::as_u64) {
        if burst == 0 || burst > u32::MAX as u64 {
            return err_json(400, "'worker_burst' must be a positive u32");
        }
        config.worker_burst = burst as u32;
    }
    let id = body.get("id").and_then(Json::as_str).map(str::to_string);
    match registry.create(id, schema, rows, config) {
        Ok(table) => Response::json(
            201,
            Json::obj([
                ("id", Json::from(table.id.clone())),
                ("rows", Json::from(table.rows())),
                ("cols", Json::from(table.cols())),
                ("policy", Json::from(table.config.policy.clone())),
                ("schema", schema_to_json(&table.schema)),
            ]),
        ),
        Err(e) if e.contains("already exists") => err_json(409, e),
        Err(e) => err_json(400, e),
    }
}

fn assignment(table: &Arc<TableState>, req: &Request) -> Response {
    let Some(worker) = req.query_param("worker").and_then(|w| w.parse::<u32>().ok()) else {
        return err_json(400, "query parameter 'worker' (u32) is required");
    };
    let k = match req.query_param("k") {
        None => table.cols(),
        Some(k) => match k.parse::<usize>() {
            Ok(k) if k >= 1 => k,
            _ => return err_json(400, "'k' must be a positive integer"),
        },
    };
    match table.assign(WorkerId(worker), k, req.query_param("policy")) {
        Ok((snap, picks, policy)) => ok_json(Json::obj([
            ("worker", Json::from(worker)),
            ("policy", Json::from(policy)),
            ("epoch", Json::from(snap.epoch)),
            (
                "cells",
                Json::Arr(
                    picks
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("row", Json::from(c.row)),
                                ("col", Json::from(c.col)),
                                (
                                    "column",
                                    Json::from(table.schema.columns[c.col as usize].name.clone()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])),
        Err(e) => err_json(400, e),
    }
}

/// Decode one answer object `{"worker", "row", "col", "value"}`; `col` may
/// be a column index or a column name.
fn answer_from_json(schema: &Schema, doc: &Json) -> Result<Answer, String> {
    let worker = doc.get("worker").and_then(Json::as_u64).ok_or("missing 'worker'")?;
    if worker > u32::MAX as u64 {
        return Err("'worker' out of range".into());
    }
    let row = doc.get("row").and_then(Json::as_u64).ok_or("missing 'row'")?;
    let col = match doc.get("col") {
        Some(Json::Str(name)) => schema
            .columns
            .iter()
            .position(|c| &c.name == name)
            .ok_or_else(|| format!("unknown column '{name}'"))?,
        Some(v) => v.as_u64().ok_or("'col' must be an index or column name")? as usize,
        None => return Err("missing 'col'".into()),
    };
    if col >= schema.num_columns() || row > u32::MAX as u64 {
        return Err(format!("cell ({row}, {col}) out of range"));
    }
    let value =
        value_from_json(schema.column_type(col), doc.get("value").ok_or("missing 'value'")?)?;
    Ok(Answer { worker: WorkerId(worker as u32), cell: CellId::new(row as u32, col as u32), value })
}

fn post_answers(table: &Arc<TableState>, req: &Request) -> Response {
    let body = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(parse)
    {
        Ok(doc) => doc,
        Err(e) => return err_json(400, format!("invalid JSON: {e}")),
    };
    // Either a batch `{"answers": [...]}` or one bare answer object.
    let docs: Vec<&Json> = match body.get("answers").and_then(Json::as_array) {
        Some(arr) => arr.iter().collect(),
        None => vec![&body],
    };
    let mut answers = Vec::with_capacity(docs.len());
    for (i, doc) in docs.iter().enumerate() {
        match answer_from_json(&table.schema, doc) {
            Ok(a) => answers.push(a),
            Err(e) => return err_json(400, format!("answer {i}: {e}")),
        }
    }
    match table.submit_traced(&answers, Some(&req.request_id)) {
        Ok(accepted) => ok_json(Json::obj([
            ("accepted", Json::from(accepted)),
            ("ingested_total", Json::from(table.ingested() as f64)),
            ("pending", Json::from(table.pending())),
        ])),
        // A WAL failure is the server's problem, not the client's — and the
        // batch was NOT acknowledged, so the client may retry verbatim.
        // `Retry-After` hints at the table's next repair attempt.
        Err(e) if e.starts_with("storage:") => {
            err_json(503, e).with_header("Retry-After", table.retry_after_secs())
        }
        // Backpressure: the refresher has fallen behind the `max_pending`
        // bound; the batch was NOT acknowledged — retry after a refresh.
        Err(e) if e.starts_with("overloaded:") => {
            err_json(429, e).with_header("Retry-After", table.retry_after_secs())
        }
        Err(e) => err_json(400, e),
    }
}

fn get_answers(table: &Arc<TableState>) -> Response {
    let snap = table.snapshot();
    let answers: Vec<Json> = snap
        .log
        .iter()
        .map(|a| {
            Json::obj([
                ("worker", Json::from(a.worker.0)),
                ("row", Json::from(a.cell.row)),
                ("col", Json::from(a.cell.col)),
                ("value", value_to_json(table.schema.column_type(a.cell.col as usize), &a.value)),
            ])
        })
        .collect();
    ok_json(Json::obj([("epoch", Json::from(snap.epoch)), ("answers", Json::Arr(answers))]))
}

fn truth(table: &Arc<TableState>, req: &Request) -> Response {
    let snap = table.snapshot();
    let z_space = matches!(req.query_param("z"), Some("1" | "true"));
    let rows: Vec<Json> = (0..table.rows() as u32)
        .map(|i| {
            Json::Arr(
                (0..table.cols() as u32)
                    .map(|j| {
                        let cell = CellId::new(i, j);
                        if z_space {
                            match snap.result.truth_z(cell) {
                                TruthDist::Categorical(p) => Json::obj([(
                                    "probs",
                                    Json::Arr(p.iter().map(|&x| Json::from(x)).collect()),
                                )]),
                                TruthDist::Continuous(n) => Json::obj([
                                    ("mean", Json::from(n.mean)),
                                    ("var", Json::from(n.var)),
                                ]),
                            }
                        } else {
                            value_to_json(
                                table.schema.column_type(j as usize),
                                &snap.result.estimate(cell),
                            )
                        }
                    })
                    .collect(),
            )
        })
        .collect();
    ok_json(Json::obj([
        ("epoch", Json::from(snap.epoch)),
        (if z_space { "truth_z" } else { "estimates" }, Json::Arr(rows)),
    ]))
}

fn snapshot_stats(table: &Arc<TableState>, snap: &Snapshot) -> Json {
    let health = table.health();
    Json::obj([
        ("id", Json::from(table.id.clone())),
        ("rows", Json::from(table.rows())),
        ("cols", Json::from(table.cols())),
        ("policy", Json::from(table.config.policy.clone())),
        ("answers", Json::from(table.ingested() as f64)),
        ("epoch", Json::from(snap.epoch)),
        ("pending", Json::from(table.pending())),
        // The refresh lag in answers: log epoch − published epoch (the
        // quantity the ingest-stall CI gate watches), plus what the last
        // refit cost and how many mid-fit arrivals its catch-up merge
        // folded in.
        ("refresh_lag_answers", Json::from(table.pending())),
        ("last_refit_ms", Json::from(snap.last_refit_ms)),
        // Kernel-phase breakdown of the EM inside that refit (E-step
        // posteriors vs M-step gradient ascent), from the fit's own timers.
        ("last_estep_ms", Json::from(snap.result.timings.estep_ns as f64 / 1e6)),
        ("last_mstep_ms", Json::from(snap.result.timings.mstep_ns as f64 / 1e6)),
        ("em_threads", Json::from(snap.result.timings.threads)),
        ("catchup_merged", Json::from(snap.catchup_merged)),
        ("fitted_epoch", Json::from(snap.fitted_epoch)),
        ("workers", Json::from(snap.matrix.num_workers())),
        ("refreshes", Json::from(snap.refreshes as f64)),
        ("refresh_age_ms", Json::from(snap.published_at.elapsed().as_millis() as f64)),
        ("em_iterations", Json::from(snap.result.iterations)),
        ("em_converged", Json::from(snap.result.converged)),
        ("uptime_ms", Json::from(table.age_ms() as f64)),
        ("durable", Json::from(table.durable())),
        (
            "store_snapshot_epoch",
            match table.last_store_snapshot_epoch() {
                Some(e) => Json::from(e as f64),
                None => Json::Null,
            },
        ),
        (
            "store_snapshot_links",
            match table.store_snapshot_links() {
                Some(l) => Json::from(l as f64),
                None => Json::Null,
            },
        ),
        // Group-commit coalescing counters and the live WAL segment count
        // (null for memory-only tables; the commit counters are also null
        // once the committer has shut down on the deletion path).
        (
            "commit_groups",
            match table.commit_stats() {
                Some(s) => Json::from(s.groups as f64),
                None => Json::Null,
            },
        ),
        (
            "commit_frames",
            match table.commit_stats() {
                Some(s) => Json::from(s.frames as f64),
                None => Json::Null,
            },
        ),
        (
            "wal_segments",
            match table.wal_segments() {
                Some(n) => Json::from(n as f64),
                None => Json::Null,
            },
        ),
        ("health", Json::from(health.health)),
        (
            "health_reason",
            match health.reason {
                Some(r) => Json::from(r),
                None => Json::Null,
            },
        ),
        (
            "degraded_since_ms",
            match health.degraded_since_ms {
                Some(ms) => Json::from(ms as f64),
                None => Json::Null,
            },
        ),
        ("refit_failures", Json::from(health.refit_failures as f64)),
        ("persist_failures", Json::from(health.persist_failures as f64)),
        (
            "last_error",
            match health.last_error {
                Some(e) => Json::from(e),
                None => Json::Null,
            },
        ),
        (
            "max_pending",
            match table.config.max_pending {
                Some(b) => Json::from(b),
                None => Json::Null,
            },
        ),
        // Trust subsystem counters: the state-machine census at the last
        // publish, the decision sequence number, and how many batches the
        // per-worker rate limit refused.
        ("trust_auto", Json::from(table.config.trust_auto)),
        ("trust_seq", Json::from(table.trust_seq() as f64)),
        (
            "suspect_workers",
            Json::from(
                snap.trust
                    .workers
                    .iter()
                    .filter(|s| s.state == tcrowd_trust::TrustState::Suspect)
                    .count(),
            ),
        ),
        ("quarantined_workers", Json::from(snap.trust.quarantine.len())),
        (
            "manual_quarantines",
            Json::from(snap.trust.quarantine.iter().filter(|q| q.manual).count()),
        ),
        ("rate_limited_batches", Json::from(table.rate_limited() as f64)),
        ("worker_rate", Json::from(table.config.worker_rate)),
    ])
}

fn stats(table: &Arc<TableState>) -> Response {
    ok_json(snapshot_stats(table, &table.snapshot()))
}

fn refresh(table: &Arc<TableState>) -> Response {
    let refitted = table.refresh_now();
    let snap = table.snapshot();
    ok_json(Json::obj([
        ("refitted", Json::from(refitted)),
        ("stats", snapshot_stats(table, &snap)),
    ]))
}

/// `GET …/workers`: the per-worker trust report from the published
/// snapshot (one `Arc` clone — no trust or fitter lock taken).
fn workers(table: &Arc<TableState>) -> Response {
    let snap = table.snapshot();
    let rows: Vec<Json> = snap
        .trust
        .workers
        .iter()
        .map(|s| {
            Json::obj([
                ("worker", Json::from(s.trust.worker.0)),
                ("answers", Json::from(s.trust.answers)),
                (
                    "quality",
                    match s.trust.quality {
                        Some(q) => Json::from(q),
                        None => Json::Null,
                    },
                ),
                ("trust_score", Json::from(s.trust.score)),
                ("max_agreement", Json::from(s.trust.max_agreement)),
                ("value_collisions", Json::from(s.trust.value_collisions)),
                (
                    "collusion_partner",
                    match s.trust.partner {
                        Some(p) => Json::from(p.0),
                        None => Json::Null,
                    },
                ),
                ("state", Json::from(s.state.name())),
                ("manual", Json::from(s.manual)),
            ])
        })
        .collect();
    ok_json(Json::obj([
        ("epoch", Json::from(snap.epoch)),
        ("trust_seq", Json::from(snap.trust.seq as f64)),
        ("quarantined", Json::from(snap.trust.quarantine.len())),
        ("workers", Json::Arr(rows)),
    ]))
}

/// `POST …/workers/:w/{quarantine,release}`: a manual trust decision. The
/// decision is WAL-durable before it is acknowledged and reaches inference
/// at the next refresh (`POST …/refresh` forces it).
fn set_quarantine(table: &Arc<TableState>, worker: &str, quarantined: bool) -> Response {
    let Ok(worker) = worker.parse::<u32>() else {
        return err_json(400, "worker id must be a u32");
    };
    match table.set_worker_quarantine(WorkerId(worker), quarantined) {
        Ok(state) => ok_json(Json::obj([
            ("worker", Json::from(worker)),
            ("state", Json::from(state.name())),
            ("trust_seq", Json::from(table.trust_seq() as f64)),
        ])),
        Err(e) if e.starts_with("storage:") => {
            err_json(503, e).with_header("Retry-After", table.retry_after_secs())
        }
        Err(e) => err_json(400, e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_doc() -> Json {
        parse(
            r#"{"name":"demo","key":"id","columns":[
                {"name":"kind","type":"categorical","labels":["a","b","c"]},
                {"name":"size","type":"continuous","min":0,"max":10}
            ]}"#,
        )
        .unwrap()
    }

    #[test]
    fn schema_codec_round_trips() {
        let schema = schema_from_json(&schema_doc()).unwrap();
        assert_eq!(schema.num_columns(), 2);
        assert_eq!(schema.columns[0].name, "kind");
        assert_eq!(schema.column_type(0).cardinality(), Some(3));
        let again = schema_from_json(&schema_to_json(&schema)).unwrap();
        assert_eq!(again, schema);
    }

    #[test]
    fn schema_rejects_malformed_columns() {
        for bad in [
            r#"{"columns":[]}"#,
            r#"{"columns":[{"type":"categorical"}]}"#,
            r#"{"columns":[{"type":"continuous","min":5,"max":1}]}"#,
            r#"{"columns":[{"type":"weird"}]}"#,
            r#"{}"#,
        ] {
            assert!(schema_from_json(&parse(bad).unwrap()).is_err(), "{bad}");
        }
    }

    #[test]
    fn value_codec_round_trips_both_datatypes() {
        let schema = schema_from_json(&schema_doc()).unwrap();
        let cat = schema.column_type(0);
        let cont = schema.column_type(1);
        // Categorical: index and label string both decode; encode is label.
        assert_eq!(value_from_json(cat, &parse("2").unwrap()).unwrap(), Value::Categorical(2));
        assert_eq!(value_from_json(cat, &parse("\"b\"").unwrap()).unwrap(), Value::Categorical(1));
        assert!(value_from_json(cat, &parse("7").unwrap()).is_err());
        assert!(value_from_json(cat, &parse("\"zzz\"").unwrap()).is_err());
        let enc = value_to_json(cat, &Value::Categorical(1));
        assert_eq!(value_from_json(cat, &enc).unwrap(), Value::Categorical(1));
        // Continuous round-trips exactly through Display.
        let x = std::f64::consts::PI / 7.0;
        let enc = value_to_json(cont, &Value::Continuous(x));
        assert_eq!(
            value_from_json(cont, &parse(&enc.to_string()).unwrap()).unwrap(),
            Value::Continuous(x)
        );
        assert!(value_from_json(cont, &parse("\"oops\"").unwrap()).is_err());
    }

    #[test]
    fn answer_decoder_accepts_column_names() {
        let schema = schema_from_json(&schema_doc()).unwrap();
        let a = answer_from_json(
            &schema,
            &parse(r#"{"worker":7,"row":2,"col":"size","value":4.5}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(a.worker, WorkerId(7));
        assert_eq!(a.cell, CellId::new(2, 1));
        assert_eq!(a.value, Value::Continuous(4.5));
        assert!(answer_from_json(&schema, &parse(r#"{"worker":7,"row":2}"#).unwrap()).is_err());
        assert!(answer_from_json(
            &schema,
            &parse(r#"{"worker":7,"row":2,"col":"nope","value":1}"#).unwrap()
        )
        .is_err());
    }
}
