//! Service-side observability glue over [`tcrowd_obs`]: the shared metrics
//! registry the HTTP layer scrapes at `GET /metrics`, the per-table metric
//! and event-ring bundle ([`TableObs`]) the table lifecycle records into,
//! and the [`tcrowd_store::ObsSink`] adapter that routes WAL/snapshot
//! timings from the durability layer into the same histograms.
//!
//! ## Metric naming convention
//!
//! `tcrowd_<subsystem>_<what>[_<unit>][_total]` — counters end in
//! `_total`, duration histograms in `_seconds` (observed internally in
//! nanoseconds, rendered in seconds), gauges are bare nouns. Per-table
//! series carry a `table` label; HTTP series carry `method` and a
//! normalized `endpoint` label (path parameters collapsed to `:id`), so
//! series cardinality is bounded by tables × endpoints, never by ids seen
//! in requests.

use std::sync::Arc;
use std::time::Duration;

use tcrowd_obs::events::DEFAULT_EVENT_CAPACITY;
use tcrowd_obs::{Counter, EventRing, Gauge, Histogram, Registry};

/// `tcrowd_table_health` gauge value for a healthy table.
pub const HEALTH_HEALTHY: i64 = 0;
/// `tcrowd_table_health` gauge value for a degraded table.
pub const HEALTH_DEGRADED: i64 = 1;
/// `tcrowd_table_health` gauge value for a table mid-repair.
pub const HEALTH_RECOVERING: i64 = 2;

/// Map a health gauge value back to the `/healthz` string.
pub fn health_name(code: i64) -> &'static str {
    match code {
        HEALTH_DEGRADED => "degraded",
        HEALTH_RECOVERING => "recovering",
        _ => "healthy",
    }
}

/// Collapse a request path to a bounded endpoint label (ids become `:id`),
/// keeping `/metrics` series cardinality independent of table names.
pub fn endpoint_label(path: &str) -> &'static str {
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segs.as_slice() {
        [] => "/",
        ["healthz"] => "/healthz",
        ["metrics"] => "/metrics",
        ["tables"] => "/tables",
        ["tables", _] => "/tables/:id",
        ["tables", _, "assignment"] => "/tables/:id/assignment",
        ["tables", _, "answers"] => "/tables/:id/answers",
        ["tables", _, "truth"] => "/tables/:id/truth",
        ["tables", _, "stats"] => "/tables/:id/stats",
        ["tables", _, "refresh"] => "/tables/:id/refresh",
        ["tables", _, "events"] => "/tables/:id/events",
        ["tables", _, "workers", ..] => "/tables/:id/workers",
        _ => "other",
    }
}

/// The registry-wide observability handle: one per [`TableRegistry`]
/// (crate::registry::TableRegistry), shared by every table and the HTTP
/// front end.
#[derive(Debug)]
pub struct ServiceObs {
    metrics: Arc<Registry>,
}

impl Default for ServiceObs {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceObs {
    /// A fresh, enabled observability registry.
    pub fn new() -> ServiceObs {
        ServiceObs { metrics: Arc::new(Registry::new()) }
    }

    /// The underlying metrics registry.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Turn collection on/off (the no-op arm of `bench_obs`). Gauges —
    /// and therefore `/healthz` — keep working either way.
    pub fn set_enabled(&self, on: bool) {
        self.metrics.set_enabled(on);
    }

    /// Register the per-table metric/event bundle for `id`.
    pub fn table(&self, id: &str) -> Arc<TableObs> {
        Arc::new(TableObs::new(&self.metrics, id))
    }

    /// Drop every series of a deleted table.
    pub fn remove_table(&self, id: &str) {
        self.metrics.remove_where("table", id);
    }

    /// Record one served HTTP request into the per-endpoint latency
    /// histogram.
    pub fn observe_request(&self, method: &str, endpoint: &'static str, elapsed: Duration) {
        self.metrics
            .histogram("tcrowd_http_request_seconds", &[("endpoint", endpoint), ("method", method)])
            .observe(elapsed);
    }

    /// `(table id, health string)` for every live table, read from the
    /// health gauges — no table lock of any kind is taken.
    pub fn table_health(&self) -> Vec<(String, &'static str)> {
        self.metrics
            .gauge_values("tcrowd_table_health")
            .into_iter()
            .filter_map(|(labels, v)| {
                labels.into_iter().find(|(k, _)| k == "table").map(|(_, id)| (id, health_name(v)))
            })
            .collect()
    }

    /// Prometheus text exposition of every registered series.
    pub fn render(&self) -> String {
        self.metrics.render()
    }
}

/// Per-table metrics and the lifecycle event ring. Created through
/// [`ServiceObs::table`] for registry-hosted tables (shared registry) or
/// [`TableObs::standalone`] for directly-constructed ones (private
/// registry; still fully functional).
#[derive(Debug)]
pub struct TableObs {
    events: EventRing,
    ingest_answers: Arc<Counter>,
    ingest_batches: Arc<Counter>,
    refit_seconds: Arc<Histogram>,
    estep_seconds: Arc<Histogram>,
    mstep_seconds: Arc<Histogram>,
    wal_append_seconds: Arc<Histogram>,
    wal_fsync_seconds: Arc<Histogram>,
    snapshot_persist_seconds: Arc<Histogram>,
    commit_seconds: Arc<Histogram>,
    commit_groups: Arc<Counter>,
    commit_frames: Arc<Counter>,
    wal_segments: Arc<Gauge>,
    health: Arc<Gauge>,
    quarantined_workers: Arc<Gauge>,
    suspect_workers: Arc<Gauge>,
    trust_seq: Arc<Gauge>,
}

impl TableObs {
    fn new(reg: &Registry, id: &str) -> TableObs {
        let t: [(&str, &str); 1] = [("table", id)];
        TableObs {
            events: EventRing::new(DEFAULT_EVENT_CAPACITY, reg.start(), reg.enabled_flag()),
            ingest_answers: reg.counter("tcrowd_ingest_answers_total", &t),
            ingest_batches: reg.counter("tcrowd_ingest_batches_total", &t),
            refit_seconds: reg.histogram("tcrowd_refit_seconds", &t),
            estep_seconds: reg.histogram("tcrowd_em_estep_seconds", &t),
            mstep_seconds: reg.histogram("tcrowd_em_mstep_seconds", &t),
            wal_append_seconds: reg.histogram("tcrowd_wal_append_seconds", &t),
            wal_fsync_seconds: reg.histogram("tcrowd_wal_fsync_seconds", &t),
            snapshot_persist_seconds: reg.histogram("tcrowd_snapshot_persist_seconds", &t),
            commit_seconds: reg.histogram("tcrowd_commit_seconds", &t),
            commit_groups: reg.counter("tcrowd_commit_groups_total", &t),
            commit_frames: reg.counter("tcrowd_commit_frames_total", &t),
            wal_segments: reg.gauge("tcrowd_wal_segments", &t),
            health: reg.gauge("tcrowd_table_health", &t),
            quarantined_workers: reg.gauge("tcrowd_quarantined_workers", &t),
            suspect_workers: reg.gauge("tcrowd_suspect_workers", &t),
            trust_seq: reg.gauge("tcrowd_trust_seq", &t),
        }
    }

    /// A bundle over a private registry, for tables constructed outside a
    /// [`TableRegistry`](crate::registry::TableRegistry) (unit tests,
    /// embedding).
    pub fn standalone(id: &str) -> Arc<TableObs> {
        Arc::new(TableObs::new(&Registry::new(), id))
    }

    /// Record a lifecycle event.
    pub fn event(&self, kind: &'static str, detail: String, request_id: Option<&str>) {
        self.events.record(kind, detail, request_id.map(str::to_string));
    }

    /// The table's event ring (for `GET /tables/:id/events`).
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// An acknowledged ingest batch: bump counters and trace the event
    /// with the originating request's correlation id.
    pub fn ingest_committed(&self, answers: usize, request_id: Option<&str>) {
        self.ingest_batches.inc();
        self.ingest_answers.add(answers as u64);
        self.event("ingest_committed", format!("{answers} answers"), request_id);
    }

    /// A published refit: phase timings into the histograms.
    pub fn observe_refit(&self, total_ns: u64, estep_ns: u64, mstep_ns: u64) {
        self.refit_seconds.observe_ns(total_ns);
        self.estep_seconds.observe_ns(estep_ns);
        self.mstep_seconds.observe_ns(mstep_ns);
    }

    /// Update the trust gauges from a just-published snapshot.
    pub fn set_trust(&self, suspects: usize, quarantined: usize, seq: u64) {
        self.suspect_workers.set(suspects as i64);
        self.quarantined_workers.set(quarantined as i64);
        self.trust_seq.set(seq.min(i64::MAX as u64) as i64);
    }

    /// Update the health gauge (one of the `HEALTH_*` codes).
    pub fn set_health(&self, code: i64) {
        self.health.set(code);
    }

    /// Current health gauge value.
    pub fn health_code(&self) -> i64 {
        self.health.get()
    }

    /// A [`tcrowd_store::ObsSink`] routing WAL/snapshot timings from the
    /// durability layer into this bundle's histograms.
    pub fn store_sink(self: &Arc<Self>) -> tcrowd_store::ObsHandle {
        Arc::new(StoreSink { obs: Arc::clone(self) })
    }
}

/// Adapter: durability-layer timing observations → per-table histograms.
#[derive(Debug)]
struct StoreSink {
    obs: Arc<TableObs>,
}

impl tcrowd_store::ObsSink for StoreSink {
    fn wal_append_ns(&self, ns: u64) {
        self.obs.wal_append_seconds.observe_ns(ns);
    }

    fn wal_fsync_ns(&self, ns: u64) {
        self.obs.wal_fsync_seconds.observe_ns(ns);
    }

    fn snapshot_persist_ns(&self, ns: u64) {
        self.obs.snapshot_persist_seconds.observe_ns(ns);
    }

    fn commit_group(&self, frames: u64, _answers: u64, ns: u64) {
        self.obs.commit_groups.inc();
        self.obs.commit_frames.add(frames);
        self.obs.commit_seconds.observe_ns(ns);
    }

    fn wal_segments(&self, live: u64) {
        self.obs.wal_segments.set(live.min(i64::MAX as u64) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_labels_are_bounded() {
        assert_eq!(endpoint_label("/healthz"), "/healthz");
        assert_eq!(endpoint_label("/metrics"), "/metrics");
        assert_eq!(endpoint_label("/tables/any-id-here/answers"), "/tables/:id/answers");
        assert_eq!(endpoint_label("/tables/x/events"), "/tables/:id/events");
        assert_eq!(endpoint_label("/tables/x/workers/7/quarantine"), "/tables/:id/workers");
        assert_eq!(endpoint_label("/no/such/route"), "other");
    }

    #[test]
    fn table_health_reads_gauges() {
        let obs = ServiceObs::new();
        let a = obs.table("a");
        let b = obs.table("b");
        a.set_health(HEALTH_HEALTHY);
        b.set_health(HEALTH_DEGRADED);
        assert_eq!(
            obs.table_health(),
            vec![("a".to_string(), "healthy"), ("b".to_string(), "degraded")]
        );
        obs.remove_table("b");
        assert_eq!(obs.table_health(), vec![("a".to_string(), "healthy")]);
    }

    #[test]
    fn store_sink_routes_to_histograms() {
        let obs = ServiceObs::new();
        let t = obs.table("t");
        let sink = t.store_sink();
        sink.wal_append_ns(1_000);
        sink.wal_fsync_ns(2_000);
        sink.snapshot_persist_ns(3_000);
        sink.commit_group(4, 40, 5_000);
        sink.commit_group(2, 20, 6_000);
        sink.wal_segments(3);
        let text = obs.render();
        assert!(text.contains("tcrowd_wal_append_seconds_count{table=\"t\"} 1"));
        assert!(text.contains("tcrowd_wal_fsync_seconds_count{table=\"t\"} 1"));
        assert!(text.contains("tcrowd_snapshot_persist_seconds_count{table=\"t\"} 1"));
        assert!(text.contains("tcrowd_commit_groups_total{table=\"t\"} 2"));
        assert!(text.contains("tcrowd_commit_frames_total{table=\"t\"} 6"));
        assert!(text.contains("tcrowd_commit_seconds_count{table=\"t\"} 2"));
        assert!(text.contains("tcrowd_wal_segments{table=\"t\"} 3"));
    }

    #[test]
    fn ingest_committed_traces_with_correlation_id() {
        let obs = ServiceObs::new();
        let t = obs.table("t");
        t.ingest_committed(5, Some("req-42"));
        let page = t.events().since(0, 10);
        assert_eq!(page.events.len(), 1);
        assert_eq!(page.events[0].kind, "ingest_committed");
        assert_eq!(page.events[0].request_id.as_deref(), Some("req-42"));
        assert_eq!(obs.metrics().counter_sum("tcrowd_ingest_answers_total"), 5);
    }
}
