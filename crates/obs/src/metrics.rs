//! Lock-free metric primitives and the registry that names them.
//!
//! The registry map (`name` + sorted labels → metric) is behind an `RwLock`,
//! but it is touched only at registration and scrape time: callers hold the
//! returned `Arc` handles, so recording on the hot path is a couple of
//! relaxed atomic ops.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Histogram bucket upper bounds in nanoseconds: a 1-2-5 log scale from
/// 1 µs to 10 s (22 finite buckets plus the implicit `+Inf` overflow).
/// One fixed scheme for every latency series keeps `/metrics` aggregable
/// across tables and endpoints.
pub const LATENCY_BUCKETS_NS: [u64; 22] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// A monotonically increasing counter. Gated by the registry's `enabled`
/// flag: incrementing a disabled counter is a single relaxed load.
#[derive(Debug)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

impl Counter {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Counter { enabled, value: AtomicU64::new(0) }
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable gauge. **Never gated**: gauges back `/healthz`, so they must
/// stay correct even when metric collection is disabled.
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    fn new() -> Self {
        Gauge { value: AtomicI64::new(0) }
    }

    /// Set the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-boundary log-scale latency histogram over
/// [`LATENCY_BUCKETS_NS`]. Observations are nanoseconds; exposition renders
/// seconds (the Prometheus convention). Per-bucket counts are
/// non-cumulative internally and cumulated at render/quantile time. The
/// exact maximum is tracked separately so tail quantiles that land in the
/// overflow bucket still report a real number.
#[derive(Debug)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    buckets: Vec<AtomicU64>, // LATENCY_BUCKETS_NS.len() + 1 (+Inf overflow)
    sum_ns: AtomicU64,
    count: AtomicU64,
    max_ns: AtomicU64,
}

impl Histogram {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        let buckets = (0..=LATENCY_BUCKETS_NS.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            enabled,
            buckets,
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record an observation of `ns` nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let idx = LATENCY_BUCKETS_NS.partition_point(|&b| b < ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record a [`Duration`] observation.
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Largest observation in seconds (exact, not bucket-rounded).
    pub fn max_seconds(&self) -> f64 {
        self.max_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Estimate the `q`-quantile (0 < q ≤ 1) in seconds from the bucket
    /// counts: the upper bound of the first bucket whose cumulative count
    /// reaches `ceil(q * total)`. Observations in the overflow bucket
    /// report the tracked maximum. Returns 0.0 with no observations.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                if idx < LATENCY_BUCKETS_NS.len() {
                    return LATENCY_BUCKETS_NS[idx] as f64 / 1e9;
                }
                return self.max_seconds();
            }
        }
        self.max_seconds()
    }

    /// Non-cumulative per-bucket counts (last entry is the `+Inf`
    /// overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

/// Which kind of metric a series is; rendered as the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Debug)]
pub(crate) enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    pub(crate) fn kind(&self) -> Kind {
        match self {
            Metric::Counter(_) => Kind::Counter,
            Metric::Gauge(_) => Kind::Gauge,
            Metric::Histogram(_) => Kind::Histogram,
        }
    }
}

/// A fully-qualified series: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct SeriesKey {
    pub(crate) name: String,
    pub(crate) labels: Vec<(String, String)>,
}

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut labels: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    labels.sort();
    SeriesKey { name: name.to_string(), labels }
}

/// The metrics registry: names series, hands out `Arc` metric handles, and
/// renders the whole set as Prometheus text exposition
/// ([`Registry::render`]).
#[derive(Debug)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    start: Instant,
    pub(crate) series: RwLock<BTreeMap<SeriesKey, Metric>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A new, enabled registry.
    pub fn new() -> Self {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            start: Instant::now(),
            series: RwLock::new(BTreeMap::new()),
        }
    }

    /// Turn metric collection on or off. Disabling makes counter /
    /// histogram / event recording a single relaxed load; gauges keep
    /// working (see [`Gauge`]).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether collection is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The shared enabled flag (for gating [`EventRing`](crate::EventRing)s
    /// on the same switch).
    pub fn enabled_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.enabled)
    }

    /// Milliseconds of monotonic time since the registry was created; the
    /// timestamp base event rings share.
    pub fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    /// The registry's monotonic start instant.
    pub fn start(&self) -> Instant {
        self.start
    }

    /// Register (or fetch) a counter series.
    ///
    /// # Panics
    /// If the series name is already registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, labels, || {
            Metric::Counter(Arc::new(Counter::new(Arc::clone(&self.enabled))))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Register (or fetch) a gauge series.
    ///
    /// # Panics
    /// If the series name is already registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Register (or fetch) a histogram series.
    ///
    /// # Panics
    /// If the series name is already registered as a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.get_or_insert(name, labels, || {
            Metric::Histogram(Arc::new(Histogram::new(Arc::clone(&self.enabled))))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let key = series_key(name, labels);
        {
            let map = self.series.read().unwrap_or_else(|p| p.into_inner());
            if let Some(m) = map.get(&key) {
                return clone_metric(m);
            }
        }
        let mut map = self.series.write().unwrap_or_else(|p| p.into_inner());
        let entry = map.entry(key).or_insert_with(make);
        let made = clone_metric(entry);
        assert!(same_kind_for_name(&map, name), "metric {name} registered with conflicting kinds");
        made
    }

    /// Drop every series carrying the label pair `label == value` — used
    /// when a table is deleted so its metrics disappear from `/metrics`
    /// and `/healthz`.
    pub fn remove_where(&self, label: &str, value: &str) {
        let mut map = self.series.write().unwrap_or_else(|p| p.into_inner());
        map.retain(|k, _| !k.labels.iter().any(|(n, v)| n == label && v == value));
    }

    /// All gauge series under `name` as `(labels, value)` pairs, sorted by
    /// labels. Reads only the registry map and atomics — no caller locks.
    pub fn gauge_values(&self, name: &str) -> Vec<(Vec<(String, String)>, i64)> {
        let map = self.series.read().unwrap_or_else(|p| p.into_inner());
        map.iter()
            .filter(|(k, _)| k.name == name)
            .filter_map(|(k, m)| match m {
                Metric::Gauge(g) => Some((k.labels.clone(), g.get())),
                _ => None,
            })
            .collect()
    }

    /// Sum of every counter series under `name`.
    pub fn counter_sum(&self, name: &str) -> u64 {
        let map = self.series.read().unwrap_or_else(|p| p.into_inner());
        map.iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, m)| match m {
                Metric::Counter(c) => c.get(),
                _ => 0,
            })
            .sum()
    }
}

fn clone_metric(m: &Metric) -> Metric {
    match m {
        Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
        Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
        Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
    }
}

fn same_kind_for_name(map: &BTreeMap<SeriesKey, Metric>, name: &str) -> bool {
    let mut kind = None;
    for (k, m) in map.iter() {
        if k.name == name {
            match kind {
                None => kind = Some(m.kind()),
                Some(k0) => {
                    if k0 != m.kind() {
                        return false;
                    }
                }
            }
        }
    }
    true
}

impl Registry {
    /// Fetch an existing counter's value without creating it (testing aid).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = series_key(name, labels);
        let map = self.series.read().unwrap_or_else(|p| p.into_inner());
        match map.get(&key) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("c_total", &[("table", "t1")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same (name, labels) returns the same underlying series.
        assert_eq!(r.counter("c_total", &[("table", "t1")]).get(), 5);
        assert_eq!(r.counter_sum("c_total"), 5);
        assert_eq!(r.counter_value("c_total", &[("table", "t1")]), Some(5));

        let g = r.gauge("g", &[]);
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        assert_eq!(r.gauge_values("g"), vec![(vec![], 5)]);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", &[]);
        // 90 fast (≤1µs bucket), 9 at 1ms, 1 way out in the overflow.
        for _ in 0..90 {
            h.observe_ns(500);
        }
        for _ in 0..9 {
            h.observe_ns(1_000_000);
        }
        h.observe_ns(30_000_000_000);
        assert_eq!(h.count(), 100);
        assert!((h.quantile(0.50) - 1e-6).abs() < 1e-12, "p50 {}", h.quantile(0.50));
        assert!((h.quantile(0.99) - 1e-3).abs() < 1e-9, "p99 {}", h.quantile(0.99));
        // p100 lands in +Inf → exact max.
        assert!((h.quantile(1.0) - 30.0).abs() < 1e-9);
        assert!((h.max_seconds() - 30.0).abs() < 1e-9);
        let counts = h.bucket_counts();
        assert_eq!(counts.len(), LATENCY_BUCKETS_NS.len() + 1);
        assert_eq!(counts.iter().sum::<u64>(), 100);
        assert_eq!(*counts.last().unwrap(), 1);
    }

    #[test]
    fn bucket_boundary_is_inclusive() {
        let r = Registry::new();
        let h = r.histogram("b_seconds", &[]);
        h.observe_ns(1_000); // exactly the first boundary → first bucket
        assert_eq!(h.bucket_counts()[0], 1);
    }

    #[test]
    fn disabled_registry_drops_counter_and_histogram_but_not_gauge() {
        let r = Registry::new();
        let c = r.counter("c_total", &[]);
        let h = r.histogram("h_seconds", &[]);
        let g = r.gauge("g", &[]);
        r.set_enabled(false);
        c.inc();
        h.observe_ns(123);
        g.set(9);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(g.get(), 9, "gauges must keep working when disabled");
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn remove_where_drops_table_series() {
        let r = Registry::new();
        r.counter("c_total", &[("table", "a")]).inc();
        r.counter("c_total", &[("table", "b")]).inc();
        r.remove_where("table", "a");
        assert_eq!(r.counter_sum("c_total"), 1);
        assert!(r.counter_value("c_total", &[("table", "a")]).is_none());
    }

    #[test]
    #[should_panic(expected = "conflicting kinds")]
    fn conflicting_kind_panics() {
        let r = Registry::new();
        let _ = r.counter("same_name", &[("table", "a")]);
        let _ = r.gauge("same_name", &[("table", "b")]);
    }
}
