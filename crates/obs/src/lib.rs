//! # tcrowd-obs — observability primitives for the T-Crowd service
//!
//! Std-only (no external crates) building blocks the service layer threads
//! through store, core, and CLI:
//!
//! - [`metrics`] — a lock-free metrics [`Registry`] of atomic [`Counter`]s,
//!   [`Gauge`]s, and fixed-boundary log-scale latency [`Histogram`]s
//!   (p50/p90/p99/max derivable from the buckets). Handles are `Arc`s; the
//!   hot path touches only atomics, never the registry map.
//! - [`render`] — hand-rolled Prometheus text exposition (version 0.0.4):
//!   `# TYPE` discipline, `_bucket`/`_sum`/`_count` histogram expansion,
//!   label escaping, plus a [`lint`] parser used by tests and CI to keep the
//!   exposition well-formed.
//! - [`events`] — a per-table [`EventRing`]: a bounded ring buffer of
//!   structured lifecycle events (ingest committed, refit started /
//!   published / panicked, snapshot persisted / failed, WAL poisoned /
//!   rebuilt, health and quarantine transitions) with globally monotonic
//!   sequence numbers, monotonic timestamps, and an optional
//!   request-correlation id. `since(seq)` pagination stays correct across
//!   ring wraparound because sequence numbers never reset.
//!
//! ## Enable/disable semantics
//!
//! A registry carries a shared `enabled` flag. Counters, histograms, and
//! event rings check it with one relaxed atomic load and early-return when
//! disabled — the "compiled-to-no-op" arm of the overhead benchmark.
//! **Gauges are never gated**: `/healthz` is served from health gauges, so
//! they must stay correct even with metrics collection off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod render;

pub use events::{Event, EventPage, EventRing};
pub use metrics::{Counter, Gauge, Histogram, Registry, LATENCY_BUCKETS_NS};
pub use render::lint;
