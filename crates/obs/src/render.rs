//! Prometheus text exposition (format version 0.0.4), hand-rolled on std.
//!
//! [`Registry::render`] produces the scrape body: one `# TYPE` line per
//! metric name, counter/gauge samples, and the
//! `_bucket{le=}`/`_sum`/`_count` expansion for histograms, with label
//! values escaped per the spec (`\` → `\\`, `"` → `\"`, newline → `\n`).
//!
//! [`lint`] is the matching parser: it re-reads an exposition body and
//! fails on a sample without a preceding `# TYPE`, a duplicate series, or
//! a label value that does not round-trip. CI runs it against the real
//! `/metrics` output so the hand-rolled writer cannot drift from the
//! format.

use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;

use crate::metrics::{Kind, Metric, Registry, LATENCY_BUCKETS_NS};

/// Content type a `/metrics` response should carry.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escape a label value per the exposition format.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Format a nanosecond boundary as seconds the way Prometheus `le` labels
/// expect (plain decimal, no exponent for our range).
fn seconds(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    format!("{s}")
}

/// Format a float sample value (`f64` `Display` is already shortest-digits).
fn float(v: f64) -> String {
    format!("{v}")
}

impl Registry {
    /// Render every registered series as Prometheus text exposition.
    pub fn render(&self) -> String {
        let map = self.series.read().unwrap_or_else(|p| p.into_inner());
        let mut out = String::with_capacity(4096);
        let mut typed: BTreeMap<&str, Kind> = BTreeMap::new();
        for (key, metric) in map.iter() {
            let name = key.name.as_str();
            if !typed.contains_key(name) {
                typed.insert(name, metric.kind());
                let ty = match metric.kind() {
                    Kind::Counter => "counter",
                    Kind::Gauge => "gauge",
                    Kind::Histogram => "histogram",
                };
                let _ = writeln!(out, "# TYPE {name} {ty}");
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name}{} {}", render_labels(&key.labels, None), c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name}{} {}", render_labels(&key.labels, None), g.get());
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cum = 0u64;
                    for (idx, &c) in counts.iter().enumerate() {
                        cum += c;
                        let le = if idx < LATENCY_BUCKETS_NS.len() {
                            seconds(LATENCY_BUCKETS_NS[idx])
                        } else {
                            "+Inf".to_string()
                        };
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            render_labels(&key.labels, Some(("le", &le)))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        render_labels(&key.labels, None),
                        float(h.sum_seconds())
                    );
                    let _ = writeln!(out, "{name}_count{} {cum}", render_labels(&key.labels, None));
                }
            }
        }
        out
    }
}

/// Parse an exposition body and verify it is well-formed:
///
/// - every sample line's base metric name has a preceding `# TYPE`;
/// - histogram samples only use the `_bucket`/`_sum`/`_count` suffixes of a
///   declared histogram, and `_bucket` carries an `le` label;
/// - no series (name + label set) appears twice;
/// - labels parse, meaning every escape round-trips.
///
/// Returns `Err(reason)` on the first violation.
pub fn lint(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen: HashSet<String> = HashSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| format!("line {n}: TYPE without name"))?;
            let ty = it.next().ok_or_else(|| format!("line {n}: TYPE without kind"))?;
            if !matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {n}: unknown TYPE kind {ty}"));
            }
            if types.insert(name.to_string(), ty.to_string()).is_some() {
                return Err(format!("line {n}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (series, _value) = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        let base = base_name(&series.name, &types)
            .ok_or_else(|| format!("line {n}: sample {} has no preceding # TYPE", series.name))?;
        if types[&base] == "histogram" {
            let suffix = &series.name[base.len()..];
            if !matches!(suffix, "_bucket" | "_sum" | "_count") {
                return Err(format!("line {n}: bad histogram suffix {suffix}"));
            }
            if suffix == "_bucket" && !series.labels.iter().any(|(k, _)| k == "le") {
                return Err(format!("line {n}: _bucket sample without le label"));
            }
        }
        let key = format!("{} {:?}", series.name, series.labels);
        if !seen.insert(key) {
            return Err(format!("line {n}: duplicate series {}", series.name));
        }
    }
    Ok(())
}

struct Sample {
    name: String,
    labels: Vec<(String, String)>,
}

/// Resolve a sample name to its declared base name: exact match, or a
/// declared histogram name plus `_bucket`/`_sum`/`_count`.
fn base_name(sample: &str, types: &BTreeMap<String, String>) -> Option<String> {
    if types.contains_key(sample) {
        return Some(sample.to_string());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = sample.strip_suffix(suffix) {
            if types.get(stripped).map(String::as_str) == Some("histogram") {
                return Some(stripped.to_string());
            }
        }
    }
    None
}

fn parse_sample(line: &str) -> Result<(Sample, f64), String> {
    let bytes = line.as_bytes();
    let name_end = bytes
        .iter()
        .position(|&b| b == b'{' || b == b' ')
        .ok_or_else(|| "no value separator".to_string())?;
    let name = line[..name_end].to_string();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("bad metric name {name:?}"));
    }
    let mut labels = Vec::new();
    let mut rest = &line[name_end..];
    if rest.starts_with('{') {
        let mut chars = rest[1..].char_indices();
        let body_start = 1;
        loop {
            // key
            let mut key = String::new();
            for (_, c) in chars.by_ref() {
                if c == '=' {
                    break;
                }
                key.push(c);
            }
            if key.is_empty() {
                return Err("empty label key".to_string());
            }
            match chars.next() {
                Some((_, '"')) => {}
                _ => return Err("label value not quoted".to_string()),
            }
            // value, with escapes
            let mut val = String::new();
            let mut closed = false;
            while let Some((_, c)) = chars.next() {
                match c {
                    '\\' => match chars.next() {
                        Some((_, '\\')) => val.push('\\'),
                        Some((_, '"')) => val.push('"'),
                        Some((_, 'n')) => val.push('\n'),
                        other => return Err(format!("bad escape {other:?}")),
                    },
                    '"' => {
                        closed = true;
                        break;
                    }
                    c => val.push(c),
                }
            }
            if !closed {
                return Err("unterminated label value".to_string());
            }
            labels.push((key, val));
            match chars.next() {
                Some((_, ',')) => continue,
                Some((i, '}')) => {
                    rest = &rest[body_start + i + 1..];
                    break;
                }
                other => return Err(format!("bad label separator {other:?}")),
            }
        }
    }
    let value_str = rest.trim();
    let value = if value_str == "+Inf" {
        f64::INFINITY
    } else {
        value_str
            .split_whitespace()
            .next()
            .ok_or_else(|| "missing value".to_string())?
            .parse::<f64>()
            .map_err(|e| format!("bad value {value_str:?}: {e}"))?
    };
    Ok((Sample { name, labels }, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_lintable_and_escapes() {
        let r = Registry::new();
        r.counter("tc_ingest_total", &[("table", "weird\"name\\with\nstuff")]).add(3);
        r.gauge("tc_health", &[("table", "t1")]).set(1);
        r.histogram("tc_lat_seconds", &[("endpoint", "/tables/:id/answers")]).observe_ns(2_500);
        let text = r.render();
        lint(&text).unwrap();
        assert!(text.contains("# TYPE tc_ingest_total counter"));
        assert!(text.contains("# TYPE tc_lat_seconds histogram"));
        assert!(text.contains("tc_lat_seconds_bucket"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("weird\\\"name\\\\with\\nstuff"));
    }

    #[test]
    fn label_escaping_roundtrips() {
        let raw = "a\\b\"c\nd";
        let line = format!("m{{l=\"{}\"}} 1", escape_label_value(raw));
        let (sample, v) = parse_sample(&line).unwrap();
        assert_eq!(sample.labels, vec![("l".to_string(), raw.to_string())]);
        assert_eq!(v, 1.0);
    }

    #[test]
    fn lint_rejects_missing_type() {
        assert!(lint("no_type_here 1\n").is_err());
    }

    #[test]
    fn lint_rejects_duplicate_series() {
        let text = "# TYPE m counter\nm{a=\"1\"} 1\nm{a=\"1\"} 2\n";
        let err = lint(text).unwrap_err();
        assert!(err.contains("duplicate series"), "{err}");
    }

    #[test]
    fn lint_rejects_bucket_without_le() {
        let text = "# TYPE h histogram\nh_bucket{table=\"t\"} 1\n";
        assert!(lint(text).unwrap_err().contains("le label"));
    }

    #[test]
    fn histogram_bucket_counts_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("h_seconds", &[]);
        h.observe_ns(500); // first bucket
        h.observe_ns(3_000); // third bucket (le 5µs)
        let text = r.render();
        lint(&text).unwrap();
        assert!(text.contains("h_seconds_bucket{le=\"0.000001\"} 1"));
        assert!(text.contains("h_seconds_bucket{le=\"0.000005\"} 2"));
        assert!(text.contains("h_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("h_seconds_count 2"));
    }
}
