//! Per-table lifecycle event tracing: a bounded ring buffer with globally
//! monotonic sequence numbers.
//!
//! Sequence numbers start at 1 and never reset, so `since(seq)` pagination
//! stays correct across ring wraparound: a reader that falls behind sees
//! `truncated = true` and resumes from whatever is still buffered. The
//! ring is a `Mutex<VecDeque>` — events are rare (per batch / per refit /
//! per transition), never per-row, so a short critical section is cheaper
//! than a lock-free ring and keeps ordering trivially correct.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One structured lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number, 1-based, never reused.
    pub seq: u64,
    /// Milliseconds of monotonic time since the owning registry started.
    pub at_ms: u64,
    /// Machine-readable kind, e.g. `"refit_published"` or `"health"`.
    pub kind: &'static str,
    /// Human-readable detail, e.g. `"healthy -> degraded"`.
    pub detail: String,
    /// Correlation id of the HTTP request that caused the event, if any.
    pub request_id: Option<String>,
}

/// A page of events returned by [`EventRing::since`].
#[derive(Debug, Clone)]
pub struct EventPage {
    /// Events with `seq > since`, oldest first.
    pub events: Vec<Event>,
    /// True when events between `since` and the oldest buffered event were
    /// dropped by ring wraparound.
    pub truncated: bool,
    /// Cursor for the next page: the seq of the last event returned here
    /// (the caller's `since` when the page is empty). Pass back as `since`
    /// to continue — correct even when `max` cut the page short.
    pub next_since: u64,
}

/// Default ring capacity used by the service layer.
pub const DEFAULT_EVENT_CAPACITY: usize = 512;

#[derive(Debug)]
struct Inner {
    buf: VecDeque<Event>,
    next_seq: u64,
}

/// A bounded ring of [`Event`]s. Recording is gated on the shared
/// `enabled` flag; reading is not.
#[derive(Debug)]
pub struct EventRing {
    enabled: Arc<AtomicBool>,
    start: Instant,
    cap: usize,
    inner: Mutex<Inner>,
}

impl EventRing {
    /// A ring holding at most `cap` events, timestamped relative to
    /// `start`, gated by `enabled`.
    pub fn new(cap: usize, start: Instant, enabled: Arc<AtomicBool>) -> Self {
        assert!(cap > 0, "event ring capacity must be positive");
        EventRing {
            enabled,
            start,
            cap,
            inner: Mutex::new(Inner { buf: VecDeque::with_capacity(cap), next_seq: 1 }),
        }
    }

    /// A standalone always-enabled ring (tests, direct table construction).
    pub fn standalone(cap: usize) -> Self {
        Self::new(cap, Instant::now(), Arc::new(AtomicBool::new(true)))
    }

    /// Record an event; returns its sequence number (0 when disabled).
    pub fn record(&self, kind: &'static str, detail: String, request_id: Option<String>) -> u64 {
        if !self.enabled.load(Ordering::Relaxed) {
            return 0;
        }
        let at_ms = self.start.elapsed().as_millis().min(u64::MAX as u128) as u64;
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == self.cap {
            inner.buf.pop_front();
        }
        inner.buf.push_back(Event { seq, at_ms, kind, detail, request_id });
        seq
    }

    /// Events with `seq > since`, oldest first, at most `max`.
    pub fn since(&self, since: u64, max: usize) -> EventPage {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let oldest = inner.next_seq - inner.buf.len() as u64; // seq of oldest buffered
        let truncated = !inner.buf.is_empty() && since + 1 < oldest;
        let events: Vec<Event> =
            inner.buf.iter().filter(|e| e.seq > since).take(max).cloned().collect();
        let next_since = events.last().map_or(since, |e| e.seq);
        EventPage { events, truncated, next_since }
    }

    /// Highest sequence number recorded so far.
    pub fn last_seq(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.next_seq - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(cap: usize) -> EventRing {
        EventRing::standalone(cap)
    }

    #[test]
    fn records_in_order_with_monotonic_seq() {
        let r = ring(8);
        let s1 = r.record("a", "one".into(), None);
        let s2 = r.record("b", "two".into(), Some("req-1".into()));
        assert_eq!((s1, s2), (1, 2));
        let page = r.since(0, 100);
        assert!(!page.truncated);
        assert_eq!(page.next_since, 2);
        assert_eq!(page.events.len(), 2);
        assert_eq!(page.events[0].kind, "a");
        assert_eq!(page.events[1].request_id.as_deref(), Some("req-1"));
        assert!(page.events[0].at_ms <= page.events[1].at_ms);
    }

    #[test]
    fn wraparound_drops_oldest_and_reports_truncation() {
        let r = ring(4);
        for i in 0..10 {
            r.record("e", format!("{i}"), None);
        }
        // Buffer holds seqs 7..=10.
        let page = r.since(0, 100);
        assert!(page.truncated, "reader from 0 must see truncation after wrap");
        assert_eq!(page.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![7, 8, 9, 10]);
        assert_eq!(page.next_since, 10);

        // A reader that kept up (since = 6) sees no truncation.
        let page = r.since(6, 100);
        assert!(!page.truncated);
        assert_eq!(page.events.first().unwrap().seq, 7);

        // since = 5 means seq 6 was dropped → truncated.
        assert!(r.since(5, 100).truncated);
    }

    #[test]
    fn pagination_across_wrap() {
        let r = ring(4);
        for i in 0..6 {
            r.record("e", format!("{i}"), None);
        }
        // Page through with max = 2 starting from the oldest buffered.
        let p1 = r.since(2, 2);
        assert_eq!(p1.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![3, 4]);
        let p2 = r.since(4, 2);
        assert!(!p2.truncated);
        assert_eq!(p2.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![5, 6]);
        let p3 = r.since(6, 2);
        assert!(p3.events.is_empty());
        assert_eq!(p3.next_since, 6);

        // More events wrap the ring between pages; the reader detects the gap.
        for i in 6..12 {
            r.record("e", format!("{i}"), None);
        }
        let p4 = r.since(6, 100);
        assert!(p4.truncated, "seqs 7,8 dropped while paging");
        assert_eq!(p4.events.first().unwrap().seq, 9);
    }

    #[test]
    fn caught_up_reader_is_not_truncated() {
        let r = ring(2);
        for _ in 0..8 {
            r.record("e", String::new(), None);
        }
        let page = r.since(8, 10);
        assert!(page.events.is_empty());
        assert!(!page.truncated, "a fully caught-up reader missed nothing");
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let enabled = Arc::new(AtomicBool::new(false));
        let r = EventRing::new(4, Instant::now(), Arc::clone(&enabled));
        assert_eq!(r.record("e", String::new(), None), 0);
        assert_eq!(r.last_seq(), 0);
        enabled.store(true, Ordering::Relaxed);
        assert_eq!(r.record("e", String::new(), None), 1);
    }

    #[test]
    fn empty_ring_since_zero() {
        let r = ring(4);
        let page = r.since(0, 10);
        assert!(page.events.is_empty());
        assert!(!page.truncated);
        assert_eq!(page.next_since, 0);
    }
}
