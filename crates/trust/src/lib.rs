//! # tcrowd-trust
//!
//! Worker **trust scoring** and the **quarantine state machine**: the
//! adversarial-worker defense layered on top of T-Crowd's unified worker
//! model (paper §4). The paper's own result — the fitted per-worker quality
//! `q_u = erf(ε/√(2φ_u))` identifies bad workers better than heuristic
//! filters — is already computed on every refit; this crate turns it into a
//! serving-layer defense:
//!
//! * [`score_workers`] derives one [`WorkerTrust`] per worker from a fit and
//!   its freeze: the fitted quality where the worker participated in the fit,
//!   and a *shadow* quality (the same erf link, evaluated against the
//!   published truth estimates) for workers excluded from it — so a
//!   quarantined worker keeps earning a score and can be released when it
//!   recovers.
//! * A pairwise-agreement **collusion signal** over the freeze's cell-major
//!   payload: workers who answer identically on many shared cells without
//!   the quality to explain it are flagged ([`WorkerTrust::max_agreement`]).
//! * [`advance`] runs the hysteresis state machine
//!   `Trusted → Suspect → Quarantined`: entry and exit thresholds are
//!   deliberately separated ([`TrustConfig`]) so scores hovering at a
//!   boundary do not flap a worker in and out of quarantine between refits.
//!
//! The crate is pure computation — deterministic, no clocks, no I/O. Who
//! acts on the scores (filtered refits, WAL persistence, rate limits, HTTP
//! endpoints) is `tcrowd-service`'s business; how the exclusion is applied
//! without touching the log is `tcrowd-tabular::quarantine`'s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use tcrowd_core::model::quality_from_variance;
use tcrowd_core::{InferenceResult, TruthDist};
use tcrowd_tabular::{AnswerMatrix, CellId, Value, WorkerId};

/// Thresholds and evidence bounds of the trust subsystem.
///
/// All score thresholds live on the quality scale `[0, 1]`. Hysteresis
/// invariant (checked by [`TrustConfig::validate`]): every exit threshold is
/// strictly above its entry threshold, so a score must *recover*, not merely
/// wobble, to leave a worse state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrustConfig {
    /// Minimum answers before any automatic transition — below this the
    /// evidence is too thin to move a worker in either direction.
    pub min_answers: usize,
    /// Score below which a `Trusted` worker becomes `Suspect`.
    pub suspect_enter: f64,
    /// Score a `Suspect` must exceed to return to `Trusted` (> `suspect_enter`).
    pub suspect_exit: f64,
    /// Score below which a worker is quarantined outright.
    pub quarantine_enter: f64,
    /// Score an auto-quarantined worker must exceed to re-enter `Suspect`
    /// (> `quarantine_enter`).
    pub quarantine_exit: f64,
    /// Minimum shared cells before a pairwise agreement rate counts as a
    /// collusion signal.
    pub collusion_min_overlap: usize,
    /// Pairwise agreement rate at or above which a pair is collusion-suspect.
    pub collusion_agreement: f64,
    /// Bit-identical **continuous** answers shared with a single partner at
    /// which the pair is treated as script-copying outright, regardless of
    /// fitted score. Honest continuous answers essentially never collide
    /// bit-for-bit, so this signal stays valid even when a large collusion
    /// ring has *captured* the fit and awarded itself a perfect quality —
    /// the case the score-based carve-out in [`WorkerTrust::colluding`] is
    /// blind to.
    pub collusion_value_collisions: usize,
}

impl Default for TrustConfig {
    fn default() -> Self {
        TrustConfig {
            min_answers: 16,
            suspect_enter: 0.55,
            suspect_exit: 0.70,
            quarantine_enter: 0.40,
            quarantine_exit: 0.60,
            collusion_min_overlap: 8,
            collusion_agreement: 0.95,
            collusion_value_collisions: 4,
        }
    }
}

impl TrustConfig {
    /// Check the hysteresis and range invariants, returning what is wrong.
    pub fn validate(&self) -> Result<(), String> {
        let in_unit = |name: &str, v: f64| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} = {v} is outside [0, 1]"))
            }
        };
        in_unit("suspect_enter", self.suspect_enter)?;
        in_unit("suspect_exit", self.suspect_exit)?;
        in_unit("quarantine_enter", self.quarantine_enter)?;
        in_unit("quarantine_exit", self.quarantine_exit)?;
        in_unit("collusion_agreement", self.collusion_agreement)?;
        if self.suspect_exit <= self.suspect_enter {
            return Err(format!(
                "suspect_exit ({}) must exceed suspect_enter ({}) — hysteresis",
                self.suspect_exit, self.suspect_enter
            ));
        }
        if self.quarantine_exit <= self.quarantine_enter {
            return Err(format!(
                "quarantine_exit ({}) must exceed quarantine_enter ({}) — hysteresis",
                self.quarantine_exit, self.quarantine_enter
            ));
        }
        if self.quarantine_enter > self.suspect_enter {
            return Err(format!(
                "quarantine_enter ({}) must not exceed suspect_enter ({})",
                self.quarantine_enter, self.suspect_enter
            ));
        }
        if self.collusion_value_collisions < 2 {
            return Err(format!(
                "collusion_value_collisions ({}) must be at least 2 — a single identical \
                 continuous answer is not evidence of copying",
                self.collusion_value_collisions
            ));
        }
        Ok(())
    }
}

/// The per-worker quarantine state machine's states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrustState {
    /// Full standing: the worker's answers feed truth inference.
    #[default]
    Trusted,
    /// Flagged but still contributing: the score dipped below the suspect
    /// threshold (or a collusion signal fired) and has not recovered.
    Suspect,
    /// Excluded from truth inference (the quarantine filter view hides the
    /// worker's answers); the log keeps everything, so release is exact.
    Quarantined,
}

impl TrustState {
    /// The canonical wire/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            TrustState::Trusted => "trusted",
            TrustState::Suspect => "suspect",
            TrustState::Quarantined => "quarantined",
        }
    }

    /// Parse a canonical name.
    pub fn parse(name: &str) -> Result<TrustState, String> {
        match name {
            "trusted" => Ok(TrustState::Trusted),
            "suspect" => Ok(TrustState::Suspect),
            "quarantined" => Ok(TrustState::Quarantined),
            other => {
                Err(format!("unknown trust state '{other}' (expected trusted|suspect|quarantined)"))
            }
        }
    }
}

impl std::fmt::Display for TrustState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One worker's trust evidence at a refit, as computed by [`score_workers`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerTrust {
    /// The worker.
    pub worker: WorkerId,
    /// Answers the worker has contributed (quarantined answers included —
    /// they are in the log and the freeze, just not in the fit).
    pub answers: usize,
    /// The fitted quality `q_u` when the worker participated in the fit;
    /// `None` for workers the fit excluded (quarantined) or never saw.
    pub quality: Option<f64>,
    /// The trust score driving the state machine: the fitted quality when
    /// available, otherwise the shadow quality against the published
    /// estimates (same scale, so thresholds apply uniformly).
    pub score: f64,
    /// Highest pairwise agreement rate with any single other worker over at
    /// least [`TrustConfig::collusion_min_overlap`] shared cells (0 when no
    /// pair clears the overlap bound).
    pub max_agreement: f64,
    /// The partner achieving [`Self::max_agreement`] (lowest id on ties).
    pub partner: Option<WorkerId>,
    /// Bit-identical continuous answers shared with the single
    /// most-matching partner. Honest continuous answers essentially never
    /// collide exactly, so this counts script copies — and unlike the
    /// fitted score it cannot be laundered by a ring large enough to
    /// capture the fit.
    pub value_collisions: usize,
}

impl WorkerTrust {
    /// Whether the collusion signal fires under `cfg`. Two routes:
    ///
    /// * **Agreement + low score** — near-identical answers on enough
    ///   shared cells, without the score to explain it (two excellent
    ///   workers agree because both are right — that is consensus, not
    ///   collusion).
    /// * **Value collisions** — enough bit-identical continuous answers
    ///   with one partner, *regardless of score*. A ring big enough to
    ///   capture the fit awards itself a perfect fitted quality, which
    ///   defeats the score carve-out above; exact continuous collisions
    ///   are the capture-proof tell (honest gaussian answers never match
    ///   bit-for-bit).
    pub fn colluding(&self, cfg: &TrustConfig) -> bool {
        self.value_collisions >= cfg.collusion_value_collisions
            || (self.max_agreement >= cfg.collusion_agreement && self.score < cfg.suspect_exit)
    }
}

/// Score every worker in `matrix` against `result` (the current published
/// fit, which may exclude quarantined workers). Returns one [`WorkerTrust`]
/// per worker in ascending id order — deterministic run to run.
pub fn score_workers(
    result: &InferenceResult,
    matrix: &AnswerMatrix,
    cfg: &TrustConfig,
) -> Vec<WorkerTrust> {
    let agreement = pairwise_agreement(matrix, cfg.collusion_min_overlap);
    (0..matrix.num_workers())
        .map(|i| {
            let worker = matrix.worker_id(i);
            let answers = matrix.worker_answer_indices(i).len();
            let quality = result.quality_of(worker);
            let score = quality.unwrap_or_else(|| shadow_quality(result, matrix, i));
            let (max_agreement, partner, value_collisions) = agreement[i];
            WorkerTrust {
                worker,
                answers,
                quality,
                score,
                max_agreement,
                partner,
                value_collisions,
            }
        })
        .collect()
}

/// The shadow quality of worker index `i`: the model's erf quality link
/// evaluated against the *published* truth estimates instead of a fitted
/// `φ_u`. Categorical answers contribute their empirical hit rate against
/// the estimated label; continuous answers contribute
/// `erf(ε/√(2·φ̂))` with `φ̂` the difficulty-deflated mean squared z-residual.
/// Both are model-consistent estimators of `q_u`, so the score lands on the
/// same scale as the fitted quality and the thresholds apply uniformly.
fn shadow_quality(result: &InferenceResult, matrix: &AnswerMatrix, i: usize) -> f64 {
    let (mut cat_n, mut cat_hits) = (0usize, 0usize);
    let (mut cont_n, mut cont_sq) = (0usize, 0.0f64);
    for &k in matrix.worker_answer_indices(i) {
        let k = k as usize;
        let cell = CellId::new(matrix.answer_rows()[k], matrix.answer_cols()[k]);
        if matrix.is_categorical(k) {
            cat_n += 1;
            if let Value::Categorical(label) = result.estimate(cell) {
                if label == matrix.answer_labels()[k] {
                    cat_hits += 1;
                }
            }
        } else if let TruthDist::Continuous(n) = result.truth_z(cell) {
            if let Some((m, s)) = result.scaler(cell.col as usize) {
                let az = (matrix.answer_values()[k] - m) / s;
                let difficulty = result.alpha[cell.row as usize] * result.beta[cell.col as usize];
                cont_n += 1;
                cont_sq += (az - n.mean).powi(2) / difficulty.max(tcrowd_stat::EPS);
            }
        }
    }
    let total = cat_n + cont_n;
    if total == 0 {
        return 1.0; // no evidence; min_answers keeps this from mattering
    }
    let cat_q = if cat_n > 0 { cat_hits as f64 / cat_n as f64 } else { 0.0 };
    let cont_q = if cont_n > 0 {
        quality_from_variance(result.epsilon, cont_sq / cont_n as f64)
    } else {
        0.0
    };
    (cat_n as f64 * cat_q + cont_n as f64 * cont_q) / total as f64
}

/// For every worker index: the highest pairwise agreement rate with any
/// other worker over at least `min_overlap` shared cells with the partner
/// achieving it (lowest partner id on ties), plus the highest count of
/// bit-identical **continuous** answers shared with any single partner
/// (counted without the overlap gate — three exact f64 collisions over
/// three shared cells are already damning). One pass over the cell-major
/// payload — cells have few answers each, so the per-cell pair loop is
/// cheap; the pair table is accumulated in a hash map and folded in sorted
/// order so the result is deterministic.
fn pairwise_agreement(
    matrix: &AnswerMatrix,
    min_overlap: usize,
) -> Vec<(f64, Option<WorkerId>, usize)> {
    /// `(shared, agree, collide)` tallies for one unordered worker pair.
    type PairStats = (u32, u32, u32);
    let workers = matrix.answer_workers();
    let mut pairs: HashMap<(u32, u32), PairStats> = HashMap::new();
    let offsets = matrix.cell_offsets();
    for slot in 0..offsets.len().saturating_sub(1) {
        let (lo, hi) = (offsets[slot] as usize, offsets[slot + 1] as usize);
        for a in lo..hi {
            for b in (a + 1)..hi {
                let (wa, wb) = (workers[a], workers[b]);
                if wa == wb {
                    continue; // repeat answers by one worker are not a pair
                }
                let key = (wa.min(wb), wa.max(wb));
                let agree = answers_match(matrix, a, b);
                let collide = agree && !matrix.is_categorical(a);
                let e = pairs.entry(key).or_insert((0, 0, 0));
                e.0 += 1;
                e.1 += agree as u32;
                e.2 += collide as u32;
            }
        }
    }
    let mut sorted: Vec<((u32, u32), PairStats)> = pairs.into_iter().collect();
    sorted.sort_unstable_by_key(|&(k, _)| k);
    let mut best: Vec<(f64, Option<WorkerId>, usize)> = vec![(0.0, None, 0); matrix.num_workers()];
    for ((wa, wb), (shared, agree, collide)) in sorted {
        for (me, other) in [(wa, wb), (wb, wa)] {
            let slot = &mut best[me as usize];
            if (shared as usize) >= min_overlap {
                let rate = agree as f64 / shared as f64;
                if rate > slot.0 {
                    slot.0 = rate;
                    slot.1 = Some(matrix.worker_id(other as usize));
                }
            }
            slot.2 = slot.2.max(collide as usize);
        }
    }
    best
}

/// Whether two answers on the same cell agree: identical labels for
/// categorical cells, identical values for continuous ones (script colluders
/// copy values verbatim; honest continuous answers essentially never collide
/// bit-for-bit).
fn answers_match(matrix: &AnswerMatrix, a: usize, b: usize) -> bool {
    if matrix.is_categorical(a) != matrix.is_categorical(b) {
        return false;
    }
    if matrix.is_categorical(a) {
        matrix.answer_labels()[a] == matrix.answer_labels()[b]
    } else {
        matrix.answer_values()[a] == matrix.answer_values()[b]
    }
}

/// One automatic step of the hysteresis state machine for a worker whose
/// evidence is `t`. Manual quarantines are pinned by the caller and never
/// pass through here. With fewer than [`TrustConfig::min_answers`] answers
/// the state holds — thin evidence moves nobody in either direction.
pub fn advance(prev: TrustState, t: &WorkerTrust, cfg: &TrustConfig) -> TrustState {
    if t.answers < cfg.min_answers {
        return prev;
    }
    let colluding = t.colluding(cfg);
    match prev {
        TrustState::Trusted => {
            if t.score < cfg.quarantine_enter {
                TrustState::Quarantined
            } else if t.score < cfg.suspect_enter || colluding {
                TrustState::Suspect
            } else {
                TrustState::Trusted
            }
        }
        TrustState::Suspect => {
            if t.score < cfg.quarantine_enter || colluding {
                TrustState::Quarantined
            } else if t.score > cfg.suspect_exit {
                TrustState::Trusted
            } else {
                TrustState::Suspect
            }
        }
        TrustState::Quarantined => {
            if t.score > cfg.quarantine_exit && !colluding {
                TrustState::Suspect
            } else {
                TrustState::Quarantined
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use tcrowd_core::TCrowd;
    use tcrowd_tabular::{generate_dataset, Answer, AnswerLog, GeneratorConfig};

    /// A generated table plus one injected spammer (uniform answers on every
    /// cell) and one colluding pair (identical wrong labels on every cell).
    fn adversarial_log() -> (tcrowd_tabular::Schema, AnswerLog, WorkerId, (WorkerId, WorkerId)) {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 30,
                columns: 4,
                num_workers: 12,
                answers_per_task: 5,
                ..Default::default()
            },
            7,
        );
        let mut log = AnswerLog::new(d.rows(), d.cols());
        for a in d.answers.all() {
            log.push(*a);
        }
        let spammer = WorkerId(900);
        let colluders = (WorkerId(901), WorkerId(902));
        let mut rng = StdRng::seed_from_u64(99);
        for row in 0..d.rows() as u32 {
            for col in 0..d.cols() as u32 {
                let cell = CellId::new(row, col);
                let spam = |rng: &mut StdRng| match d.schema.column_type(col as usize) {
                    tcrowd_tabular::ColumnType::Categorical { labels } => {
                        Value::Categorical(rng.gen_range(0..labels.len() as u32))
                    }
                    tcrowd_tabular::ColumnType::Continuous { min, max } => {
                        Value::Continuous(rng.gen_range(*min..*max))
                    }
                };
                log.push(Answer { worker: spammer, cell, value: spam(&mut rng) });
                let script = spam(&mut rng);
                log.push(Answer { worker: colluders.0, cell, value: script });
                log.push(Answer { worker: colluders.1, cell, value: script });
            }
        }
        (d.schema.clone(), log, spammer, colluders)
    }

    #[test]
    fn spammer_and_colluders_score_at_the_bottom() {
        let (schema, log, spammer, colluders) = adversarial_log();
        let matrix = log.to_matrix();
        let result = TCrowd::default_full().infer_matrix(&schema, &matrix);
        let cfg = TrustConfig::default();
        let trust = score_workers(&result, &matrix, &cfg);
        let of = |w: WorkerId| *trust.iter().find(|t| t.worker == w).unwrap();
        let honest_min = trust
            .iter()
            .filter(|t| ![spammer, colluders.0, colluders.1].contains(&t.worker))
            .map(|t| t.score)
            .fold(f64::INFINITY, f64::min);
        assert!(
            of(spammer).score < honest_min,
            "spammer score {} >= honest floor {honest_min}",
            of(spammer).score
        );
        // The colluding pair is each other's top-agreement partner at ~1.0.
        assert!(of(colluders.0).max_agreement > 0.99);
        assert_eq!(of(colluders.0).partner, Some(colluders.1));
        assert_eq!(of(colluders.1).partner, Some(colluders.0));
        assert!(of(colluders.0).colluding(&cfg));
        // Honest workers do not fire the collusion signal.
        for t in trust.iter().filter(|t| t.worker.0 < 900) {
            assert!(!t.colluding(&cfg), "honest {} flagged as colluding", t.worker);
        }
        // Scoring is deterministic.
        assert_eq!(trust, score_workers(&result, &matrix, &cfg));
    }

    #[test]
    fn shadow_quality_tracks_excluded_workers() {
        let (schema, log, spammer, _) = adversarial_log();
        let matrix = log.to_matrix();
        // Fit WITHOUT the spammer (the quarantine filter path), then score
        // over the full freeze: the spammer must get a shadow score, and it
        // must stay in quarantine territory.
        let filtered = matrix.without_workers(&[spammer]);
        let result = TCrowd::default_full().infer_matrix(&schema, &filtered);
        let cfg = TrustConfig::default();
        let trust = score_workers(&result, &matrix, &cfg);
        let t = trust.iter().find(|t| t.worker == spammer).unwrap();
        assert_eq!(t.quality, None, "excluded worker has no fitted quality");
        assert!(t.score < cfg.quarantine_exit, "spammer shadow score {} too high", t.score);
        // Honest workers keep fitted qualities above the suspect band.
        let honest = trust.iter().filter(|t| t.worker.0 < 900).collect::<Vec<_>>();
        assert!(honest.iter().all(|t| t.quality.is_some()));
        assert!(honest.iter().filter(|t| t.score > cfg.suspect_enter).count() >= honest.len() / 2);
    }

    #[test]
    fn state_machine_has_hysteresis_and_evidence_bounds() {
        let cfg = TrustConfig::default();
        cfg.validate().unwrap();
        let t = |answers: usize, score: f64| WorkerTrust {
            worker: WorkerId(1),
            answers,
            quality: Some(score),
            score,
            max_agreement: 0.0,
            partner: None,
            value_collisions: 0,
        };
        use TrustState::*;
        // Thin evidence never moves anyone.
        assert_eq!(advance(Trusted, &t(3, 0.0), &cfg), Trusted);
        assert_eq!(advance(Quarantined, &t(3, 1.0), &cfg), Quarantined);
        // Entry thresholds.
        assert_eq!(advance(Trusted, &t(40, 0.50), &cfg), Suspect);
        assert_eq!(advance(Trusted, &t(40, 0.30), &cfg), Quarantined);
        // Hysteresis: a score in the dead band between enter and exit holds.
        assert_eq!(advance(Suspect, &t(40, 0.60), &cfg), Suspect);
        assert_eq!(advance(Suspect, &t(40, 0.75), &cfg), Trusted);
        assert_eq!(advance(Quarantined, &t(40, 0.50), &cfg), Quarantined);
        assert_eq!(advance(Quarantined, &t(40, 0.65), &cfg), Suspect);
        // A flapping score at the entry threshold does not oscillate.
        let mut state = Trusted;
        for score in [0.54, 0.56, 0.54, 0.56] {
            state = advance(state, &t(40, score), &cfg);
            assert_eq!(state, Suspect, "score {score} must hold Suspect in the dead band");
        }
        // Collusion escalates even at a mid-band score.
        let colluder = WorkerTrust { max_agreement: 0.99, ..t(40, 0.60) };
        assert_eq!(advance(Trusted, &colluder, &cfg), Suspect);
        assert_eq!(advance(Suspect, &colluder, &cfg), Quarantined);
        assert_eq!(advance(Quarantined, &colluder, &cfg), Quarantined);
        // A high fitted score exempts plain agreement (consensus carve-out)…
        let consensus = WorkerTrust { max_agreement: 0.99, ..t(40, 0.90) };
        assert!(!consensus.colluding(&cfg));
        assert_eq!(advance(Trusted, &consensus, &cfg), Trusted);
        // …but NOT value collisions: a ring that captured the fit and
        // awarded itself a perfect quality is still caught by bit-identical
        // continuous answers.
        let captured = WorkerTrust { max_agreement: 1.0, value_collisions: 10, ..t(40, 1.0) };
        assert!(captured.colluding(&cfg));
        assert_eq!(advance(Trusted, &captured, &cfg), Suspect);
        assert_eq!(advance(Suspect, &captured, &cfg), Quarantined);
        // Bad hysteresis configs are rejected.
        assert!(TrustConfig { suspect_exit: 0.5, ..cfg }.validate().is_err());
        assert!(TrustConfig { quarantine_exit: 0.3, ..cfg }.validate().is_err());
        assert!(TrustConfig { quarantine_enter: 0.9, ..cfg }.validate().is_err());
        assert!(TrustConfig { collusion_value_collisions: 1, ..cfg }.validate().is_err());
    }
}
