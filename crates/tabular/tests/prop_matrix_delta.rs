//! Differential property suite for the incremental freeze pipeline:
//! `merge_delta(build(log[..k]), log[k..])` must equal `build(log)`
//! **field-for-field** — same cell offsets, same payload order, same worker
//! table — across random logs, random split points, and chained deltas.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcrowd_tabular::{Answer, AnswerLog, AnswerMatrix, CellId, Value, WorkerId};

/// A random mixed-type answer log: shape from the strategy, contents from a
/// seeded RNG (workers repeat, cells repeat, both value kinds appear).
fn random_log(rows: usize, cols: usize, n: usize, seed: u64) -> AnswerLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log = AnswerLog::new(rows, cols);
    for _ in 0..n {
        let cell = CellId::new(rng.gen_range(0..rows as u32), rng.gen_range(0..cols as u32));
        let value = if cell.col % 2 == 0 {
            Value::Categorical(rng.gen_range(0..4))
        } else {
            Value::Continuous(rng.gen_range(-5.0..5.0))
        };
        log.push(Answer { worker: WorkerId(rng.gen_range(0..10)), cell, value });
    }
    log
}

/// Rebuild the prefix `log[..k]` as its own log.
fn prefix_log(log: &AnswerLog, k: usize) -> AnswerLog {
    let mut out = AnswerLog::new(log.rows(), log.cols());
    for a in &log.all()[..k] {
        out.push(*a);
    }
    out
}

/// Field-for-field comparison with readable failure messages before the
/// final whole-struct equality (which covers every private lane).
fn assert_matrices_equal(
    merged: &AnswerMatrix,
    rebuilt: &AnswerMatrix,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(merged.len(), rebuilt.len(), "payload length");
    prop_assert_eq!(merged.cell_offsets(), rebuilt.cell_offsets(), "cell offsets");
    prop_assert_eq!(merged.worker_ids(), rebuilt.worker_ids(), "worker table");
    prop_assert_eq!(merged.answer_rows(), rebuilt.answer_rows(), "row lane");
    prop_assert_eq!(merged.answer_cols(), rebuilt.answer_cols(), "col lane");
    prop_assert_eq!(merged.answer_workers(), rebuilt.answer_workers(), "worker index lane");
    prop_assert_eq!(merged.answer_labels(), rebuilt.answer_labels(), "label lane");
    prop_assert_eq!(merged.answer_values(), rebuilt.answer_values(), "value lane");
    for k in 0..merged.len() {
        prop_assert_eq!(merged.log_position(k), rebuilt.log_position(k), "log position {}", k);
    }
    for w in 0..merged.num_workers() {
        prop_assert_eq!(
            merged.worker_answer_indices(w),
            rebuilt.worker_answer_indices(w),
            "worker view {}",
            w
        );
    }
    // The derived PartialEq sweeps every remaining private field.
    prop_assert_eq!(merged, rebuilt);
    Ok(())
}

proptest! {
    #[test]
    fn merge_delta_equals_rebuild_at_every_split(
        (rows, cols) in (1usize..6, 1usize..5),
        n in 0usize..80,
        split in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let log = random_log(rows, cols, n, seed);
        let k = ((log.len() as f64) * split).round() as usize;
        let base = AnswerMatrix::build(&prefix_log(&log, k));
        prop_assert_eq!(base.epoch(), k);
        let merged = base.merge_delta(&log.all()[k..]);
        prop_assert_eq!(merged.epoch(), log.len());
        prop_assert!(!merged.is_stale(&log));
        assert_matrices_equal(&merged, &AnswerMatrix::build(&log))?;
    }

    #[test]
    fn chained_small_deltas_equal_one_rebuild(
        (rows, cols) in (1usize..6, 1usize..5),
        n in 1usize..60,
        step in 1usize..7,
        seed in any::<u64>(),
    ) {
        // The simulator's steady state: many tiny merges, one after another.
        let log = random_log(rows, cols, n, seed);
        let mut m = AnswerMatrix::build(&AnswerLog::new(rows, cols));
        let mut at = 0usize;
        while at < log.len() {
            let next = (at + step).min(log.len());
            m = m.merge_delta(&log.all()[at..next]);
            at = next;
        }
        assert_matrices_equal(&m, &AnswerMatrix::build(&log))?;
    }

    /// The worker-view splice (old `worker_order` moved through the per-slot
    /// shift map) must reproduce the counting-sort views exactly, including
    /// when the delta is dominated by workers the base freeze never saw
    /// (the remap + fresh-worker interleave paths). Checked at the finest
    /// granularity — every (worker, row) slice — on top of the whole-array
    /// equality of `assert_matrices_equal`.
    #[test]
    fn spliced_worker_views_match_rebuild_under_worker_churn(
        (rows, cols) in (1usize..6, 1usize..5),
        n_base in 0usize..40,
        n_delta in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut log = random_log(rows, cols, n_base, seed);
        // Delta drawn from a mostly-disjoint worker population: ids 5..25
        // overlap the base's 0..10 only partially, so most merges exercise
        // the fresh-worker remap.
        let base = AnswerMatrix::build(&log);
        for _ in 0..n_delta {
            let cell = CellId::new(rng.gen_range(0..rows as u32), rng.gen_range(0..cols as u32));
            let value = if cell.col % 2 == 0 {
                Value::Categorical(rng.gen_range(0..4))
            } else {
                Value::Continuous(rng.gen_range(-5.0..5.0))
            };
            log.push(Answer { worker: WorkerId(rng.gen_range(5..25)), cell, value });
        }
        let merged = base.refresh(&log);
        let rebuilt = AnswerMatrix::build(&log);
        for w in 0..rebuilt.num_workers() {
            prop_assert_eq!(
                merged.worker_answer_indices(w),
                rebuilt.worker_answer_indices(w),
                "worker view {}", w
            );
            for row in 0..rows as u32 {
                prop_assert_eq!(
                    merged.worker_row_answer_indices(w, row),
                    rebuilt.worker_row_answer_indices(w, row),
                    "worker {} row {}", w, row
                );
            }
        }
        assert_matrices_equal(&merged, &rebuilt)?;
    }

    #[test]
    fn refresh_is_idempotent_and_tracks_epoch(
        (rows, cols) in (1usize..6, 1usize..5),
        n in 0usize..40,
        extra in 0usize..20,
        seed in any::<u64>(),
    ) {
        let log = random_log(rows, cols, n + extra, seed);
        let frozen = AnswerMatrix::build(&prefix_log(&log, n));
        let refreshed = frozen.refresh(&log);
        prop_assert!(!refreshed.is_stale(&log));
        assert_matrices_equal(&refreshed, &AnswerMatrix::build(&log))?;
        // A second refresh from the same log is the identity.
        assert_matrices_equal(&refreshed.refresh(&log), &refreshed)?;
    }
}
