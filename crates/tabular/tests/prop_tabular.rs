//! Property-based tests for the tabular substrate.

use proptest::prelude::*;
use tcrowd_tabular::{
    evaluate, generate_dataset, Answer, AnswerLog, CellId, ColumnType, GeneratorConfig, Value,
    WorkerId,
};

fn small_cfg() -> impl Strategy<Value = GeneratorConfig> {
    (2usize..8, 1usize..5, 0.0f64..=1.0, 1usize..4, 4usize..9).prop_map(
        |(rows, columns, ratio, ans, workers)| GeneratorConfig {
            rows,
            columns,
            categorical_ratio: ratio,
            answers_per_task: ans,
            num_workers: workers,
            ..Default::default()
        },
    )
}

proptest! {
    #[test]
    fn answer_log_indexes_are_consistent(
        cfg in small_cfg(),
        seed in any::<u64>(),
    ) {
        let d = generate_dataset(&cfg, seed);
        let log = &d.answers;
        // Sum over per-cell index equals total length.
        let by_cell_total: usize = log.cells().map(|c| log.count_for_cell(c)).sum();
        prop_assert_eq!(by_cell_total, log.len());
        // Sum over per-worker index equals total length.
        let workers: Vec<WorkerId> = log.workers().collect();
        let by_worker_total: usize = workers.iter().map(|&w| log.for_worker(w).count()).sum();
        prop_assert_eq!(by_worker_total, log.len());
        // Per-worker-row index partitions per-worker answers.
        for &w in &workers {
            let rows_total: usize = (0..log.rows() as u32)
                .map(|i| log.for_worker_row(w, i).count())
                .sum();
            prop_assert_eq!(rows_total, log.for_worker(w).count());
        }
    }

    #[test]
    fn every_answer_matches_its_column_type(cfg in small_cfg(), seed in any::<u64>()) {
        let d = generate_dataset(&cfg, seed);
        prop_assert_eq!(d.answers.validate(&d.schema), Ok(()));
        for a in d.answers.all() {
            match d.schema.column_type(a.cell.col as usize) {
                ColumnType::Categorical { labels } => {
                    prop_assert!((a.value.expect_categorical() as usize) < labels.len());
                }
                ColumnType::Continuous { .. } => {
                    prop_assert!(a.value.expect_continuous().is_finite());
                }
            }
        }
    }

    #[test]
    fn evaluation_error_rate_counts_exact_mismatches(
        cfg in small_cfg(),
        seed in any::<u64>(),
        flips in prop::collection::vec(any::<u16>(), 1..8),
    ) {
        let d = generate_dataset(&cfg, seed);
        let cats = d.schema.categorical_columns();
        prop_assume!(!cats.is_empty());
        // Corrupt a known set of categorical cells and verify the metric.
        let mut est = d.truth.clone();
        let mut corrupted = std::collections::HashSet::new();
        for f in flips {
            let i = f as usize % d.rows();
            let j = cats[f as usize % cats.len()];
            let card = d.schema.column_type(j).cardinality().unwrap();
            if card < 2 {
                continue;
            }
            let t = d.truth[i][j].expect_categorical();
            est[i][j] = Value::Categorical((t + 1) % card);
            corrupted.insert((i, j));
        }
        let rep = evaluate(&d.schema, &d.truth, &est);
        let expect = corrupted.len() as f64 / (d.rows() * cats.len()) as f64;
        prop_assert!((rep.error_rate.unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn statistics_are_internally_consistent(cfg in small_cfg(), seed in any::<u64>()) {
        let d = generate_dataset(&cfg, seed);
        let s = d.statistics();
        prop_assert_eq!(s.cells, s.rows * s.columns);
        prop_assert_eq!(s.categorical_columns + s.continuous_columns, s.columns);
        prop_assert!((s.answers_per_task - cfg.answers_per_task as f64).abs() < 1e-12);
        prop_assert!(s.workers <= cfg.num_workers);
    }
}

#[test]
fn answer_log_push_order_is_preserved() {
    let mut log = AnswerLog::new(2, 2);
    for k in 0..4u32 {
        log.push(Answer {
            worker: WorkerId(k),
            cell: CellId::new(k / 2, k % 2),
            value: Value::Categorical(0),
        });
    }
    let order: Vec<u32> = log.all().iter().map(|a| a.worker.0).collect();
    assert_eq!(order, vec![0, 1, 2, 3]);
}
