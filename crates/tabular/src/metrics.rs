//! Evaluation metrics (paper §6.2) and case-study error matrices (Fig. 3).
//!
//! * **Error Rate** — fraction of categorical cells whose estimated label
//!   mismatches the ground truth.
//! * **MNAD** — per continuous column, the RMSE between estimate and ground
//!   truth normalised by the column's standard deviation, averaged over
//!   columns. The paper normalises by the standard deviation of the *answers*
//!   in the column (explicitly stated in §6.5.2); [`evaluate`] falls back to
//!   the ground-truth std when no answers are supplied.

#![allow(clippy::needless_range_loop)] // index loops here walk several parallel arrays
use crate::answer::AnswerLog;
use crate::dataset::Dataset;
use crate::schema::Schema;
use crate::value::Value;
use tcrowd_stat::describe::{rmse, std_dev};

/// Per-column quality of a set of estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnQuality {
    /// Column name.
    pub name: String,
    /// Error rate (categorical columns only).
    pub error_rate: Option<f64>,
    /// Raw RMSE (continuous columns only).
    pub rmse: Option<f64>,
    /// Normalised absolute distance = RMSE / denominator (continuous only).
    pub nad: Option<f64>,
}

/// Aggregate quality of a set of estimates against ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Error rate over all categorical cells, `None` if there are none.
    pub error_rate: Option<f64>,
    /// Mean normalised absolute distance over continuous columns, `None` if
    /// there are none.
    pub mnad: Option<f64>,
    /// Per-column breakdown.
    pub columns: Vec<ColumnQuality>,
}

fn column_denominators_from_truth(schema: &Schema, truth: &[Vec<Value>]) -> Vec<f64> {
    (0..schema.num_columns())
        .map(|j| {
            if schema.column_type(j).is_categorical() {
                1.0
            } else {
                let col: Vec<f64> = truth.iter().map(|r| r[j].expect_continuous()).collect();
                std_dev(&col).max(tcrowd_stat::EPS)
            }
        })
        .collect()
}

fn column_denominators_from_answers(schema: &Schema, answers: &AnswerLog) -> Vec<f64> {
    (0..schema.num_columns())
        .map(|j| {
            if schema.column_type(j).is_categorical() {
                1.0
            } else {
                let col: Vec<f64> = answers
                    .all()
                    .iter()
                    .filter(|a| a.cell.col as usize == j)
                    .map(|a| a.value.expect_continuous())
                    .collect();
                std_dev(&col).max(tcrowd_stat::EPS)
            }
        })
        .collect()
}

fn evaluate_with_denominators(
    schema: &Schema,
    truth: &[Vec<Value>],
    estimates: &[Vec<Value>],
    denoms: &[f64],
) -> QualityReport {
    assert_eq!(truth.len(), estimates.len(), "row count mismatch");
    let m = schema.num_columns();
    let mut columns = Vec::with_capacity(m);
    let mut cat_wrong = 0usize;
    let mut cat_total = 0usize;
    let mut nads = Vec::new();
    for j in 0..m {
        if schema.column_type(j).is_categorical() {
            let mut wrong = 0usize;
            for (t_row, e_row) in truth.iter().zip(estimates) {
                if t_row[j].expect_categorical() != e_row[j].expect_categorical() {
                    wrong += 1;
                }
            }
            cat_wrong += wrong;
            cat_total += truth.len();
            columns.push(ColumnQuality {
                name: schema.columns[j].name.clone(),
                error_rate: Some(wrong as f64 / truth.len().max(1) as f64),
                rmse: None,
                nad: None,
            });
        } else {
            let t: Vec<f64> = truth.iter().map(|r| r[j].expect_continuous()).collect();
            let e: Vec<f64> = estimates.iter().map(|r| r[j].expect_continuous()).collect();
            let col_rmse = rmse(&e, &t);
            let nad = col_rmse / denoms[j];
            nads.push(nad);
            columns.push(ColumnQuality {
                name: schema.columns[j].name.clone(),
                error_rate: None,
                rmse: Some(col_rmse),
                nad: Some(nad),
            });
        }
    }
    QualityReport {
        error_rate: (cat_total > 0).then(|| cat_wrong as f64 / cat_total as f64),
        mnad: (!nads.is_empty()).then(|| nads.iter().sum::<f64>() / nads.len() as f64),
        columns,
    }
}

/// Evaluate estimates against ground truth, normalising continuous RMSE by
/// the *ground-truth* column standard deviation.
pub fn evaluate(schema: &Schema, truth: &[Vec<Value>], estimates: &[Vec<Value>]) -> QualityReport {
    let denoms = column_denominators_from_truth(schema, truth);
    evaluate_with_denominators(schema, truth, estimates, &denoms)
}

/// Evaluate estimates, normalising continuous RMSE by the standard deviation
/// of the collected *answers* per column — the paper's exact MNAD definition
/// (it is what makes MNAD decline under added noise in Fig. 10).
pub fn evaluate_with_answers(
    schema: &Schema,
    truth: &[Vec<Value>],
    estimates: &[Vec<Value>],
    answers: &AnswerLog,
) -> QualityReport {
    let denoms = column_denominators_from_answers(schema, answers);
    evaluate_with_denominators(schema, truth, estimates, &denoms)
}

/// Per-worker per-attribute error matrix (paper Fig. 3).
///
/// For each of the `top_k` workers with the most answers, compute per column:
/// the fraction of wrong answers (categorical) or the standard deviation of
/// the answer−truth differences (continuous), optionally normalised by the
/// column's truth std so the two datatypes share a colour scale.
pub fn worker_attribute_errors(
    dataset: &Dataset,
    top_k: usize,
    normalize_continuous: bool,
) -> (Vec<crate::answer::WorkerId>, Vec<Vec<f64>>) {
    let mut by_count: Vec<(crate::answer::WorkerId, usize)> =
        dataset.answers.workers().map(|w| (w, dataset.answers.for_worker(w).count())).collect();
    by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    by_count.truncate(top_k);
    let workers: Vec<_> = by_count.into_iter().map(|(w, _)| w).collect();
    let denoms = column_denominators_from_truth(&dataset.schema, &dataset.truth);

    let m = dataset.cols();
    let mut matrix = Vec::with_capacity(workers.len());
    for &w in &workers {
        let mut row = Vec::with_capacity(m);
        for j in 0..m {
            let answers: Vec<_> =
                dataset.answers.for_worker(w).filter(|a| a.cell.col as usize == j).collect();
            if answers.is_empty() {
                row.push(f64::NAN);
                continue;
            }
            if dataset.schema.column_type(j).is_categorical() {
                let wrong = answers
                    .iter()
                    .filter(|a| {
                        a.value.expect_categorical()
                            != dataset.truth_of(a.cell).expect_categorical()
                    })
                    .count();
                row.push(wrong as f64 / answers.len() as f64);
            } else {
                let diffs: Vec<f64> = answers
                    .iter()
                    .map(|a| {
                        a.value.expect_continuous() - dataset.truth_of(a.cell).expect_continuous()
                    })
                    .collect();
                let sd = std_dev(&diffs);
                row.push(if normalize_continuous { sd / denoms[j] } else { sd });
            }
        }
        matrix.push(row);
    }
    (workers, matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::{Answer, CellId, WorkerId};
    use crate::schema::{Column, ColumnType};
    use std::collections::HashMap;

    fn schema2() -> Schema {
        Schema::new(
            "t",
            "k",
            vec![
                Column::new("cat", ColumnType::categorical_with_cardinality(3)),
                Column::new("num", ColumnType::Continuous { min: 0.0, max: 10.0 }),
            ],
        )
    }

    #[test]
    fn perfect_estimates_score_zero() {
        let schema = schema2();
        let truth = vec![
            vec![Value::Categorical(1), Value::Continuous(4.0)],
            vec![Value::Categorical(0), Value::Continuous(8.0)],
        ];
        let rep = evaluate(&schema, &truth, &truth);
        assert_eq!(rep.error_rate, Some(0.0));
        assert_eq!(rep.mnad, Some(0.0));
    }

    #[test]
    fn error_rate_counts_mismatches() {
        let schema = schema2();
        let truth = vec![
            vec![Value::Categorical(1), Value::Continuous(4.0)],
            vec![Value::Categorical(0), Value::Continuous(8.0)],
        ];
        let mut est = truth.clone();
        est[0][0] = Value::Categorical(2);
        let rep = evaluate(&schema, &truth, &est);
        assert_eq!(rep.error_rate, Some(0.5));
        assert_eq!(rep.columns[0].error_rate, Some(0.5));
    }

    #[test]
    fn mnad_normalised_by_truth_std() {
        let schema = schema2();
        let truth = vec![
            vec![Value::Categorical(0), Value::Continuous(0.0)],
            vec![Value::Categorical(0), Value::Continuous(10.0)],
        ];
        let mut est = truth.clone();
        est[0][1] = Value::Continuous(1.0);
        est[1][1] = Value::Continuous(9.0);
        // RMSE = 1, truth std = 5 → NAD = 0.2.
        let rep = evaluate(&schema, &truth, &est);
        assert!((rep.mnad.unwrap() - 0.2).abs() < 1e-12);
        assert!((rep.columns[1].rmse.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn answer_denominator_differs_from_truth_denominator() {
        let schema = schema2();
        let truth = vec![
            vec![Value::Categorical(0), Value::Continuous(0.0)],
            vec![Value::Categorical(0), Value::Continuous(10.0)],
        ];
        let mut answers = AnswerLog::new(2, 2);
        // Answers with a huge spread inflate the denominator and shrink MNAD.
        for (i, v) in [(0u32, -50.0), (1u32, 60.0)] {
            answers.push(Answer {
                worker: WorkerId(0),
                cell: CellId::new(i, 1),
                value: Value::Continuous(v),
            });
        }
        let est = truth.clone();
        let a = evaluate_with_answers(&schema, &truth, &est, &answers);
        assert_eq!(a.mnad, Some(0.0));
        let mut est2 = truth.clone();
        est2[0][1] = Value::Continuous(5.0);
        let with_answers = evaluate_with_answers(&schema, &truth, &est2, &answers);
        let with_truth = evaluate(&schema, &truth, &est2);
        assert!(with_answers.mnad.unwrap() < with_truth.mnad.unwrap());
    }

    #[test]
    fn all_categorical_has_no_mnad() {
        let schema = Schema::new(
            "c",
            "k",
            vec![Column::new("a", ColumnType::categorical_with_cardinality(2))],
        );
        let truth = vec![vec![Value::Categorical(0)]];
        let rep = evaluate(&schema, &truth, &truth);
        assert_eq!(rep.mnad, None);
        assert_eq!(rep.error_rate, Some(0.0));
    }

    #[test]
    fn worker_error_matrix_shapes_and_values() {
        let schema = schema2();
        let truth = vec![
            vec![Value::Categorical(1), Value::Continuous(4.0)],
            vec![Value::Categorical(0), Value::Continuous(8.0)],
        ];
        let mut answers = AnswerLog::new(2, 2);
        // Worker 0: 1 wrong categorical out of 2; continuous diffs ±1.
        answers.push(Answer {
            worker: WorkerId(0),
            cell: CellId::new(0, 0),
            value: Value::Categorical(1),
        });
        answers.push(Answer {
            worker: WorkerId(0),
            cell: CellId::new(1, 0),
            value: Value::Categorical(2),
        });
        answers.push(Answer {
            worker: WorkerId(0),
            cell: CellId::new(0, 1),
            value: Value::Continuous(5.0),
        });
        answers.push(Answer {
            worker: WorkerId(0),
            cell: CellId::new(1, 1),
            value: Value::Continuous(7.0),
        });
        // Worker 1: answers only one cell.
        answers.push(Answer {
            worker: WorkerId(1),
            cell: CellId::new(0, 0),
            value: Value::Categorical(1),
        });
        let dataset = Dataset { schema, truth, answers, worker_truth: HashMap::new() };
        let (workers, matrix) = worker_attribute_errors(&dataset, 2, false);
        assert_eq!(workers, vec![WorkerId(0), WorkerId(1)]);
        assert!((matrix[0][0] - 0.5).abs() < 1e-12);
        // diffs are +1 and -1 → std = 1.
        assert!((matrix[0][1] - 1.0).abs() < 1e-12);
        assert_eq!(matrix[1][0], 0.0);
        assert!(matrix[1][1].is_nan(), "no continuous answers from worker 1");
    }

    #[test]
    fn top_k_truncates_by_answer_count() {
        let d = crate::generator::generate_dataset(
            &crate::generator::GeneratorConfig {
                rows: 20,
                columns: 3,
                num_workers: 15,
                answers_per_task: 3,
                ..Default::default()
            },
            8,
        );
        let (workers, matrix) = worker_attribute_errors(&d, 5, true);
        assert_eq!(workers.len(), 5);
        assert_eq!(matrix.len(), 5);
        assert_eq!(matrix[0].len(), 3);
    }
}
