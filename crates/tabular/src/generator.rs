//! Synthetic data generator (paper §6.5.1).
//!
//! Generates a table with a configurable number of rows/columns, a
//! categorical-to-total column ratio `R`, and an average cell difficulty
//! `µ{α_i β_j}`; then synthesises worker answers through the paper's own
//! answer model (Eq. 1 for continuous, Eq. 3 for categorical) with
//! per-row/per-column difficulties — i.e. the generative process *is* the
//! model class T-Crowd assumes, exactly as in the paper's synthetic study.
//!
//! The paper's defaults are `M = 10`, `R = 0.5`, `µ{α_i β_j} = 1`, uniform
//! categorical cardinalities in `U(2, 10)`, continuous domains `\[0, 1000\]`,
//! and the worker population mirrors the Celebrity experiment; those are the
//! defaults here too.

#![allow(clippy::needless_range_loop)] // index loops here walk several parallel arrays
use crate::answer::{Answer, AnswerLog, CellId, WorkerId};
use crate::dataset::{Dataset, WorkerProfile};
use crate::schema::{Column, ColumnType, Schema};
use crate::value::Value;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tcrowd_stat::sample::{sample_std_normal, sample_weighted};
use tcrowd_stat::special::erf;

/// Worker-quality population model.
///
/// Worker variance `φ_u` is drawn log-normally (crowd answer quality is
/// long-tailed — the observation motivating CATD \[17\]) with an extra spammer
/// mass whose variance is inflated by a large factor.
#[derive(Debug, Clone, Copy)]
pub struct WorkerQualityConfig {
    /// Median of the log-normal `φ_u` distribution.
    pub median_phi: f64,
    /// Log-space standard deviation of `φ_u`.
    pub sigma_ln_phi: f64,
    /// Fraction of workers that are spammers.
    pub spammer_fraction: f64,
    /// Multiplier applied to a spammer's `φ_u`.
    pub spammer_factor: f64,
}

impl Default for WorkerQualityConfig {
    fn default() -> Self {
        WorkerQualityConfig {
            median_phi: 0.18,
            sigma_ln_phi: 0.7,
            spammer_fraction: 0.10,
            spammer_factor: 25.0,
        }
    }
}

/// Row-familiarity effect: with probability `p_unfamiliar` a worker "does not
/// recognise" an entity (the paper's §1 example of worker `u3` on picture 3)
/// and all of their answers on that row are degraded by `difficulty_factor`.
///
/// This produces the positive inter-attribute error correlation on which the
/// structure-aware information gain (§5.2) capitalises.
#[derive(Debug, Clone, Copy)]
pub struct RowFamiliarity {
    /// Probability that a (worker, row) pair is unfamiliar.
    pub p_unfamiliar: f64,
    /// Variance multiplier applied to every cell of an unfamiliar row.
    pub difficulty_factor: f64,
}

impl Default for RowFamiliarity {
    fn default() -> Self {
        RowFamiliarity { p_unfamiliar: 0.15, difficulty_factor: 12.0 }
    }
}

/// Entity-group familiarity (the paper's §7 future-work direction: "a worker
/// may be more familiar to celebrities starring in a certain category of
/// films"). Rows are partitioned into `groups` categories round-robin; each
/// (worker, group) pair flips one familiarity coin, so a worker unfamiliar
/// with a *category* errs on **every row of that category** — correlations
/// now span entities, not just attributes.
#[derive(Debug, Clone, Copy)]
pub struct EntityGroups {
    /// Number of entity categories.
    pub groups: usize,
    /// Probability that a (worker, group) pair is unfamiliar.
    pub p_unfamiliar: f64,
    /// Variance multiplier for every cell in an unfamiliar group.
    pub difficulty_factor: f64,
}

impl Default for EntityGroups {
    fn default() -> Self {
        EntityGroups { groups: 5, p_unfamiliar: 0.2, difficulty_factor: 12.0 }
    }
}

impl EntityGroups {
    /// The group a row belongs to (round-robin partition).
    #[inline]
    pub fn group_of(&self, row: usize) -> usize {
        row % self.groups.max(1)
    }
}

/// Configuration of the synthetic generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of rows `N`.
    pub rows: usize,
    /// Number of value columns `M` (paper default 10).
    pub columns: usize,
    /// Ratio of categorical columns `R` (paper default 0.5).
    pub categorical_ratio: f64,
    /// Average cell difficulty `µ{α_i β_j}` (paper default 1.0).
    pub avg_difficulty: f64,
    /// Log-space spread of the row/column difficulty draws.
    pub difficulty_sigma: f64,
    /// Answers collected per task (the AMT-style fixed-redundancy policy the
    /// paper simulates for the truth-inference experiments).
    pub answers_per_task: usize,
    /// Number of workers in the pool (Celebrity-scale by default).
    pub num_workers: usize,
    /// Worker-quality population.
    pub quality: WorkerQualityConfig,
    /// Categorical cardinalities are drawn uniformly from this inclusive
    /// range (paper: `U(2, 10)`).
    pub cardinality_range: (u32, u32),
    /// Continuous column domain (paper: `[0, 1000]`).
    pub continuous_domain: (f64, f64),
    /// Quality window `ε` used to convert `φ` into categorical accuracy
    /// (Eq. 2). Expressed in units of the column's noise scale.
    pub epsilon: f64,
    /// Optional row-familiarity effect (off by default: the paper's §6.5.1
    /// generator has independent cells; `real_sim` turns it on).
    pub row_familiarity: Option<RowFamiliarity>,
    /// Optional entity-group familiarity (off by default; the §7 future-work
    /// extension — see [`EntityGroups`]).
    pub entity_groups: Option<EntityGroups>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            rows: 174,
            columns: 10,
            categorical_ratio: 0.5,
            avg_difficulty: 1.0,
            difficulty_sigma: 0.35,
            answers_per_task: 5,
            num_workers: 109,
            quality: WorkerQualityConfig::default(),
            cardinality_range: (2, 10),
            continuous_domain: (0.0, 1000.0),
            epsilon: 0.5,
            row_familiarity: None,
            entity_groups: None,
        }
    }
}

/// Generator population state: worker variances and row/column
/// difficulties. Shared with [`crate::real_sim`] and the simulator's
/// answer oracle.
pub struct GeneratorState {
    /// The generator's RNG (advanced by every draw).
    pub rng: StdRng,
    /// Worker variances `φ_u`, indexed by worker id.
    pub phi: Vec<f64>,
    /// Row difficulties `α_i`.
    pub alpha: Vec<f64>,
    /// Column difficulties `β_j`.
    pub beta: Vec<f64>,
}

/// Draw a log-normal sample with the given median and log-space sigma.
pub(crate) fn lognormal(rng: &mut StdRng, median: f64, sigma: f64) -> f64 {
    (median.ln() + sigma * sample_std_normal(rng)).exp()
}

/// The per-column noise scale for continuous answers: one standard deviation
/// of the ground-truth spread (`width/√12` for a uniform domain), so a worker
/// with `α β φ = 1` is as noisy as the column itself is spread out.
pub fn noise_scale(min: f64, max: f64) -> f64 {
    (max - min) / 12f64.sqrt()
}

/// Generate a schema with `columns` columns of which the first
/// `ceil(R·columns)` are categorical.
fn generate_schema(cfg: &GeneratorConfig, rng: &mut StdRng) -> Schema {
    let n_cat = (cfg.categorical_ratio * cfg.columns as f64).round() as usize;
    let mut columns = Vec::with_capacity(cfg.columns);
    for j in 0..cfg.columns {
        if j < n_cat {
            let k = rng.gen_range(cfg.cardinality_range.0..=cfg.cardinality_range.1);
            columns
                .push(Column::new(format!("cat{j}"), ColumnType::categorical_with_cardinality(k)));
        } else {
            let (lo, hi) = cfg.continuous_domain;
            columns
                .push(Column::new(format!("num{j}"), ColumnType::Continuous { min: lo, max: hi }));
        }
    }
    Schema::new("synthetic", "entity", columns)
}

/// Synthesise one answer from the paper's worker model.
///
/// `variance` is the effective `α_i β_j φ_u` (optionally inflated by the
/// row-familiarity factor); `epsilon` the quality window of Eq. 2.
pub fn synthesize_answer(
    rng: &mut StdRng,
    truth: &Value,
    ty: &ColumnType,
    variance: f64,
    epsilon: f64,
) -> Value {
    match (truth, ty) {
        (Value::Continuous(t), ColumnType::Continuous { min, max }) => {
            // Eq. 1: a ~ N(T*, αβφ) in noise-scale units.
            let s = noise_scale(*min, *max);
            Value::Continuous(t + s * variance.sqrt() * sample_std_normal(rng))
        }
        (Value::Categorical(t), ColumnType::Categorical { labels }) => {
            // Eq. 3: correct with prob q = erf(ε/√(2αβφ)), otherwise uniform
            // over the |L|-1 wrong labels.
            let l = labels.len() as u32;
            let q = erf(epsilon / (2.0 * variance).sqrt());
            if l == 1 || rng.gen_range(0.0..1.0) < q {
                Value::Categorical(*t)
            } else {
                let weights: Vec<f64> = (0..l).map(|z| if z == *t { 0.0 } else { 1.0 }).collect();
                Value::Categorical(sample_weighted(rng, &weights) as u32)
            }
        }
        _ => unreachable!("generator truth/type mismatch"),
    }
}

/// Generate ground truth for one cell.
fn generate_truth(rng: &mut StdRng, ty: &ColumnType) -> Value {
    match ty {
        ColumnType::Categorical { labels } => {
            Value::Categorical(rng.gen_range(0..labels.len() as u32))
        }
        ColumnType::Continuous { min, max } => Value::Continuous(rng.gen_range(*min..*max)),
    }
}

/// Draw worker variances and row/column difficulties.
pub fn draw_population(cfg: &GeneratorConfig, seed: u64) -> GeneratorState {
    let mut rng = StdRng::seed_from_u64(seed);
    let phi: Vec<f64> = (0..cfg.num_workers)
        .map(|_| {
            let mut p = lognormal(&mut rng, cfg.quality.median_phi, cfg.quality.sigma_ln_phi);
            if rng.gen_range(0.0..1.0) < cfg.quality.spammer_fraction {
                p *= cfg.quality.spammer_factor;
            }
            p
        })
        .collect();
    // E[lognormal(median=m, σ)] = m·e^{σ²/2}; divide it out so that
    // E[α_i]·E[β_j] = avg_difficulty exactly.
    let correction = (cfg.difficulty_sigma * cfg.difficulty_sigma / 2.0).exp();
    let side_median = cfg.avg_difficulty.sqrt() / correction;
    let alpha: Vec<f64> =
        (0..cfg.rows).map(|_| lognormal(&mut rng, side_median, cfg.difficulty_sigma)).collect();
    let beta: Vec<f64> =
        (0..cfg.columns).map(|_| lognormal(&mut rng, side_median, cfg.difficulty_sigma)).collect();
    GeneratorState { rng, phi, alpha, beta }
}

/// Generate a complete synthetic dataset (schema, truth, answers, profiles).
///
/// Workers are assigned whole rows (a HIT contains one task per column, as in
/// the paper's AMT setup), each row receiving `answers_per_task` distinct
/// workers; determinism is total given `(cfg, seed)`.
pub fn generate_dataset(cfg: &GeneratorConfig, seed: u64) -> Dataset {
    assert!(cfg.rows > 0 && cfg.columns > 0, "table must be non-empty");
    assert!(cfg.num_workers >= cfg.answers_per_task, "need at least answers_per_task workers");
    let mut state = draw_population(cfg, seed);
    let schema = generate_schema(cfg, &mut state.rng);

    let truth: Vec<Vec<Value>> = (0..cfg.rows)
        .map(|_| {
            (0..cfg.columns)
                .map(|j| generate_truth(&mut state.rng, schema.column_type(j)))
                .collect()
        })
        .collect();

    let mut answers = AnswerLog::new(cfg.rows, cfg.columns);
    let worker_ids: Vec<WorkerId> = (0..cfg.num_workers as u32).map(WorkerId).collect();
    // Entity-group familiarity coins, flipped lazily per (worker, group).
    let mut group_coins: HashMap<(WorkerId, usize), f64> = HashMap::new();
    for i in 0..cfg.rows {
        // Pick `answers_per_task` distinct workers for the whole row.
        let mut pool = worker_ids.clone();
        pool.shuffle(&mut state.rng);
        for &worker in pool.iter().take(cfg.answers_per_task) {
            let phi = state.phi[worker.0 as usize];
            // Row-familiarity: one draw per (worker, row).
            let mut familiarity = match cfg.row_familiarity {
                Some(rf) if state.rng.gen_range(0.0..1.0) < rf.p_unfamiliar => rf.difficulty_factor,
                _ => 1.0,
            };
            if let Some(eg) = cfg.entity_groups {
                let rng = &mut state.rng;
                familiarity *= *group_coins.entry((worker, eg.group_of(i))).or_insert_with(|| {
                    if rng.gen_range(0.0..1.0) < eg.p_unfamiliar {
                        eg.difficulty_factor
                    } else {
                        1.0
                    }
                });
            }
            for j in 0..cfg.columns {
                let variance = state.alpha[i] * state.beta[j] * phi * familiarity;
                let value = synthesize_answer(
                    &mut state.rng,
                    &truth[i][j],
                    schema.column_type(j),
                    variance,
                    cfg.epsilon,
                );
                answers.push(Answer { worker, cell: CellId::new(i as u32, j as u32), value });
            }
        }
    }

    let worker_truth: HashMap<WorkerId, WorkerProfile> =
        worker_ids.iter().map(|&w| (w, WorkerProfile { phi: state.phi[w.0 as usize] })).collect();

    let dataset = Dataset { schema, truth, answers, worker_truth };
    debug_assert_eq!(dataset.validate(), Ok(()));
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> GeneratorConfig {
        GeneratorConfig {
            rows: 30,
            columns: 6,
            num_workers: 20,
            answers_per_task: 4,
            ..Default::default()
        }
    }

    #[test]
    fn shape_and_redundancy() {
        let d = generate_dataset(&small_cfg(), 1);
        assert_eq!(d.rows(), 30);
        assert_eq!(d.cols(), 6);
        assert_eq!(d.answers.len(), 30 * 6 * 4);
        assert!((d.answers.avg_answers_per_task() - 4.0).abs() < 1e-12);
        for cell in d.answers.cells() {
            assert_eq!(d.answers.count_for_cell(cell), 4);
        }
        assert_eq!(d.validate(), Ok(()));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_dataset(&small_cfg(), 42);
        let b = generate_dataset(&small_cfg(), 42);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.answers.all(), b.answers.all());
        let c = generate_dataset(&small_cfg(), 43);
        assert_ne!(a.answers.all(), c.answers.all());
    }

    #[test]
    fn categorical_ratio_respected() {
        for (ratio, expect) in [(0.0, 0), (0.5, 3), (1.0, 6)] {
            let cfg = GeneratorConfig { categorical_ratio: ratio, ..small_cfg() };
            let d = generate_dataset(&cfg, 5);
            assert_eq!(d.schema.categorical_columns().len(), expect, "ratio {ratio}");
        }
    }

    #[test]
    fn workers_answer_whole_rows() {
        let d = generate_dataset(&small_cfg(), 9);
        for w in d.answers.workers().collect::<Vec<_>>() {
            for i in 0..d.rows() as u32 {
                let n = d.answers.for_worker_row(w, i).count();
                assert!(n == 0 || n == d.cols(), "worker {w} answered {n} cells of row {i}");
            }
        }
    }

    #[test]
    fn good_workers_are_more_accurate_than_spammers() {
        let cfg = GeneratorConfig { rows: 120, ..small_cfg() };
        let d = generate_dataset(&cfg, 3);
        // Partition workers by true phi; compare categorical accuracy.
        let mut acc: HashMap<WorkerId, (usize, usize)> = HashMap::new();
        for a in d.answers.all() {
            if let Value::Categorical(l) = a.value {
                let t = d.truth_of(a.cell).expect_categorical();
                let e = acc.entry(a.worker).or_default();
                e.1 += 1;
                if l == t {
                    e.0 += 1;
                }
            }
        }
        let mut good = Vec::new();
        let mut bad = Vec::new();
        for (w, (hits, total)) in &acc {
            if *total < 10 {
                continue;
            }
            let rate = *hits as f64 / *total as f64;
            let phi = d.worker_truth[w].phi;
            if phi < 0.15 {
                good.push(rate);
            } else if phi > 1.5 {
                bad.push(rate);
            }
        }
        if !good.is_empty() && !bad.is_empty() {
            let g = good.iter().sum::<f64>() / good.len() as f64;
            let b = bad.iter().sum::<f64>() / bad.len() as f64;
            assert!(g > b + 0.1, "good {g} should beat bad {b}");
        }
    }

    #[test]
    fn average_difficulty_scales_errors() {
        let mk = |d: f64, seed| {
            let cfg = GeneratorConfig { avg_difficulty: d, categorical_ratio: 1.0, ..small_cfg() };
            let data = generate_dataset(&cfg, seed);
            let mut wrong = 0usize;
            for a in data.answers.all() {
                if a.value.expect_categorical() != data.truth_of(a.cell).expect_categorical() {
                    wrong += 1;
                }
            }
            wrong as f64 / data.answers.len() as f64
        };
        let easy: f64 = (0..5).map(|s| mk(0.5, s)).sum::<f64>() / 5.0;
        let hard: f64 = (0..5).map(|s| mk(3.0, s)).sum::<f64>() / 5.0;
        assert!(hard > easy + 0.05, "hard {hard} vs easy {easy}");
    }

    #[test]
    fn row_familiarity_correlates_errors_within_rows() {
        // With a strong familiarity effect, a worker's errors on two columns
        // of the same row should be positively correlated.
        let cfg = GeneratorConfig {
            rows: 400,
            columns: 2,
            categorical_ratio: 1.0,
            cardinality_range: (5, 5),
            row_familiarity: Some(RowFamiliarity { p_unfamiliar: 0.3, difficulty_factor: 60.0 }),
            ..small_cfg()
        };
        let d = generate_dataset(&cfg, 17);
        let (mut e0, mut e1) = (Vec::new(), Vec::new());
        for w in d.answers.workers().collect::<Vec<_>>() {
            for i in 0..d.rows() as u32 {
                let row: Vec<&Answer> = d.answers.for_worker_row(w, i).collect();
                if row.len() == 2 {
                    let err = |a: &Answer| {
                        (a.value.expect_categorical() != d.truth_of(a.cell).expect_categorical())
                            as i32 as f64
                    };
                    let (a, b) =
                        if row[0].cell.col == 0 { (row[0], row[1]) } else { (row[1], row[0]) };
                    e0.push(err(a));
                    e1.push(err(b));
                }
            }
        }
        let r = tcrowd_stat::describe::pearson(&e0, &e1);
        assert!(r > 0.1, "expected positive within-row error correlation, got {r}");
    }

    #[test]
    #[should_panic(expected = "answers_per_task workers")]
    fn rejects_insufficient_workers() {
        let cfg = GeneratorConfig { num_workers: 2, answers_per_task: 5, ..small_cfg() };
        generate_dataset(&cfg, 0);
    }

    #[test]
    fn entity_groups_correlate_errors_across_rows() {
        // A worker unfamiliar with a *category* errs on all rows of that
        // category: the spread of per-(worker, group) error rates should be
        // far wider than under independent cells.
        let cfg = GeneratorConfig {
            rows: 200,
            columns: 2,
            categorical_ratio: 1.0,
            cardinality_range: (6, 6),
            num_workers: 12,
            answers_per_task: 4,
            entity_groups: Some(EntityGroups {
                groups: 4,
                p_unfamiliar: 0.4,
                difficulty_factor: 80.0,
            }),
            ..Default::default()
        };
        let grouped = generate_dataset(&cfg, 6);
        let flat = generate_dataset(&GeneratorConfig { entity_groups: None, ..cfg.clone() }, 6);
        let group_variance = |d: &crate::dataset::Dataset| {
            let eg = EntityGroups { groups: 4, ..Default::default() };
            let mut stats: HashMap<(WorkerId, usize), (f64, f64)> = HashMap::new();
            for a in d.answers.all() {
                let wrong = (a.value.expect_categorical()
                    != d.truth_of(a.cell).expect_categorical()) as i32
                    as f64;
                let e = stats.entry((a.worker, eg.group_of(a.cell.row as usize))).or_default();
                e.0 += wrong;
                e.1 += 1.0;
            }
            let rates: Vec<f64> =
                stats.values().filter(|(_, n)| *n >= 10.0).map(|(w, n)| w / n).collect();
            tcrowd_stat::describe::variance(&rates)
        };
        assert!(
            group_variance(&grouped) > 2.0 * group_variance(&flat),
            "grouped {} vs flat {}",
            group_variance(&grouped),
            group_variance(&flat)
        );
    }

    #[test]
    fn continuous_answers_cluster_near_truth_for_good_workers() {
        let cfg = GeneratorConfig {
            rows: 200,
            columns: 2,
            categorical_ratio: 0.0,
            quality: WorkerQualityConfig {
                median_phi: 0.02,
                sigma_ln_phi: 0.1,
                spammer_fraction: 0.0,
                spammer_factor: 1.0,
            },
            ..small_cfg()
        };
        let d = generate_dataset(&cfg, 2);
        let (lo, hi) = (0.0, 1000.0);
        let s = noise_scale(lo, hi);
        let mut norm_errs = Vec::new();
        for a in d.answers.all() {
            let t = d.truth_of(a.cell).expect_continuous();
            norm_errs.push((a.value.expect_continuous() - t) / s);
        }
        let std = tcrowd_stat::describe::std_dev(&norm_errs);
        // φ≈0.02 with αβ≈1 → std ≈ √0.02 ≈ 0.14 in noise units.
        assert!(std < 0.3, "normalised error std = {std}");
    }
}
