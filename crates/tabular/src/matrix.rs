//! [`AnswerMatrix`] — the frozen columnar (CSR) answer store.
//!
//! [`crate::AnswerLog`] is the *mutable* append log a live platform feeds;
//! every inference or assignment sweep, however, wants to scan answers
//! **grouped** — by cell (E-step, Eq. 4), by worker (M-step quality update,
//! Eq. 5), or by (worker, row) (structure-aware gain, Eq. 7). The log's
//! incremental indexes answer point queries, but a sweep through them hops
//! between heap-allocated per-key vectors in whatever order the map yields.
//!
//! `AnswerMatrix` is the sweep-side dual: built once from a log, it stores
//! the answers as a struct-of-arrays payload in **cell-major order** with
//! three compressed-sparse (CSR-style) views over contiguous `u32` arrays:
//!
//! * **by cell** — the payload itself is cell-major, so the view is just an
//!   offset array (`rows·cols + 1` entries); a cell's answers are one
//!   contiguous slice.
//! * **by worker** — one permutation array ordered by (worker, row,
//!   insertion) plus a `W + 1` offset array.
//! * **by (worker, row)** — the *same* permutation array with a finer
//!   `W·rows + 1` offset array; the two views share storage because the
//!   permutation is sorted by row within each worker.
//!
//! Workers are indexed **densely and in sorted id order**, which makes every
//! downstream iteration deterministic — the `HashMap`-iteration
//! nondeterminism the side indexes used to leak is structurally gone.
//!
//! ## Complexity
//!
//! | Operation | Cost |
//! |---|---|
//! | `build` | `O(n + R·C + W·R)` counting sorts (`n` answers, `R×C` table, `W` workers; ≤ the `O(n log n)` comparison-sort bound) |
//! | one full by-cell sweep | `O(n + R·C)`, contiguous |
//! | one full by-worker sweep | `O(n + W)`, one indirection per answer |
//! | answers of one cell | `O(1)` slice lookup |
//! | answers of one (worker, row) | `O(1)` slice lookup after `O(log W)` id resolution |
//!
//! The payload is split by datatype (label array + value array) so numeric
//! kernels read dense `u32`/`f64` lanes instead of matching an enum per
//! answer.
//!
//! ## Incremental refresh
//!
//! An online loop (assign → collect → re-infer) freezes the log over and
//! over, with only a handful of new answers between freezes. Rebuilding from
//! scratch re-scans the whole log and re-resolves every worker id;
//! [`AnswerMatrix::merge_delta`] instead splices a small sorted delta into
//! the existing cell-major payload: the per-answer work (id resolution,
//! value decoding, counting-sort scatter) is confined to the delta, the
//! untouched payload regions move by bulk `memcpy`, and the result is
//! **field-for-field identical** to a full rebuild (property-tested). The
//! matrix's [`epoch`](AnswerMatrix::epoch) — the number of log answers it
//! froze — tells consumers whether their freeze is stale; [`FrozenView`]
//! packages the `(matrix, epoch)` pair as a copyable handle.

use crate::answer::{Answer, AnswerLog, CellId, WorkerId};
use crate::value::Value;

/// One answer as viewed through the matrix: the payload row `index` plus the
/// decoded fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixAnswer {
    /// Position in the matrix payload (cell-major).
    pub index: u32,
    /// The answering worker's id.
    pub worker: WorkerId,
    /// The answering worker's dense index (sorted-id order).
    pub worker_index: u32,
    /// The answered cell.
    pub cell: CellId,
    /// The claimed value.
    pub value: Value,
}

/// Compressed-sparse columnar store over a fixed answer set. See the module
/// docs for the layout and complexity table.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerMatrix {
    n_rows: usize,
    n_cols: usize,
    // ---- struct-of-arrays payload, cell-major, ties by insertion order ----
    row_of: Vec<u32>,
    col_of: Vec<u32>,
    worker_of: Vec<u32>,
    labels: Vec<u32>,
    values: Vec<f64>,
    categorical: Vec<bool>,
    /// Original position in the source [`AnswerLog`] per payload row.
    log_position: Vec<u32>,
    // ---- worker table ----
    worker_ids: Vec<WorkerId>,
    // ---- CSR views ----
    cell_offsets: Vec<u32>,
    worker_order: Vec<u32>,
    worker_offsets: Vec<u32>,
    worker_row_offsets: Vec<u32>,
}

/// Second counting sort of [`AnswerMatrix::build`]: payload indices grouped
/// by (worker, row). Scanning the payload in cell-major order keeps the
/// grouping sorted by row (and insertion) within each worker, so one
/// permutation serves both the by-worker and the by-(worker, row) views.
/// [`AnswerMatrix::merge_delta`] does not re-run this — it splices the old
/// permutation through the per-slot shift map instead — but both paths
/// produce the same pure function of the payload lanes, so a delta-merged
/// matrix and a full rebuild get bit-identical view arrays.
fn build_worker_views(
    n_rows: usize,
    n_workers: usize,
    row_of: &[u32],
    worker_of: &[u32],
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let n = row_of.len();
    let mut worker_row_offsets = vec![0u32; n_workers * n_rows + 1];
    for k in 0..n {
        let key = worker_of[k] as usize * n_rows + row_of[k] as usize;
        worker_row_offsets[key + 1] += 1;
    }
    for s in 0..n_workers * n_rows {
        worker_row_offsets[s + 1] += worker_row_offsets[s];
    }
    let mut wr_cursor = worker_row_offsets.clone();
    let mut worker_order = vec![0u32; n];
    for k in 0..n {
        let key = worker_of[k] as usize * n_rows + row_of[k] as usize;
        worker_order[wr_cursor[key] as usize] = k as u32;
        wr_cursor[key] += 1;
    }
    let worker_offsets: Vec<u32> =
        (0..=n_workers).map(|w| worker_row_offsets[w * n_rows]).collect();
    (worker_order, worker_offsets, worker_row_offsets)
}

/// A copyable handle pairing a frozen [`AnswerMatrix`] with the epoch it was
/// frozen at (the number of log answers it covers). Consumers holding a view
/// across log appends can ask [`FrozenView::is_stale`] whether the freeze
/// still reflects the log before trusting sweep results.
#[derive(Debug, Clone, Copy)]
pub struct FrozenView<'a> {
    matrix: &'a AnswerMatrix,
    epoch: usize,
}

impl<'a> FrozenView<'a> {
    /// The frozen matrix behind this view.
    #[inline]
    pub fn matrix(&self) -> &'a AnswerMatrix {
        self.matrix
    }

    /// The freeze epoch: the source-log length at freeze time.
    #[inline]
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// True when `log` has grown past (or shrunk below) this freeze.
    #[inline]
    pub fn is_stale(&self, log: &AnswerLog) -> bool {
        self.epoch != log.len()
    }
}

impl AnswerMatrix {
    /// Freeze an [`AnswerLog`] into its columnar form.
    pub fn build(log: &AnswerLog) -> AnswerMatrix {
        let n_rows = log.rows();
        let n_cols = log.cols();
        let n = log.len();
        let slots = n_rows * n_cols;

        // Dense worker table in sorted-id order.
        let mut worker_ids: Vec<WorkerId> = log.workers().collect();
        worker_ids.sort_unstable();
        worker_ids.dedup();
        let widx =
            |w: WorkerId| -> u32 { worker_ids.binary_search(&w).expect("worker present") as u32 };

        // Counting sort into cell-major payload order (stable: the log is
        // scanned in insertion order).
        let mut cell_offsets = vec![0u32; slots + 1];
        for a in log.all() {
            cell_offsets[a.cell.row as usize * n_cols + a.cell.col as usize + 1] += 1;
        }
        for s in 0..slots {
            cell_offsets[s + 1] += cell_offsets[s];
        }
        let mut cursor = cell_offsets.clone();
        let mut row_of = vec![0u32; n];
        let mut col_of = vec![0u32; n];
        let mut worker_of = vec![0u32; n];
        let mut labels = vec![0u32; n];
        let mut values = vec![0.0f64; n];
        let mut categorical = vec![false; n];
        let mut log_position = vec![0u32; n];
        for (pos, a) in log.all().iter().enumerate() {
            let slot = a.cell.row as usize * n_cols + a.cell.col as usize;
            let k = cursor[slot] as usize;
            cursor[slot] += 1;
            row_of[k] = a.cell.row;
            col_of[k] = a.cell.col;
            worker_of[k] = widx(a.worker);
            match a.value {
                Value::Categorical(l) => {
                    labels[k] = l;
                    categorical[k] = true;
                }
                Value::Continuous(x) => values[k] = x,
            }
            log_position[k] = pos as u32;
        }

        let (worker_order, worker_offsets, worker_row_offsets) =
            build_worker_views(n_rows, worker_ids.len(), &row_of, &worker_of);

        AnswerMatrix {
            n_rows,
            n_cols,
            row_of,
            col_of,
            worker_of,
            labels,
            values,
            categorical,
            log_position,
            worker_ids,
            cell_offsets,
            worker_order,
            worker_offsets,
            worker_row_offsets,
        }
    }

    /// Splice the log tail `tail` (the answers appended since this matrix was
    /// frozen, in log order) into a new frozen matrix covering the full log.
    ///
    /// The result is field-for-field identical to
    /// `AnswerMatrix::build(full_log)` — same payload order, same offsets,
    /// same worker table — which the differential proptest suite asserts.
    ///
    /// Cost: the per-answer work (worker-id resolution, value decoding,
    /// counting-sort scatter) is `O(Δ log Δ + Δ log W)` on the delta alone;
    /// the untouched payload moves by bulk `memcpy` between touched cells
    /// (`O(n)` bytes, no per-answer branching), the cell-offset shift is one
    /// `O(R·C)` pass, and the worker views are **spliced** from the old
    /// permutation through the per-slot shift map (see
    /// [`Self::splice_worker_views`]) — delta-only per-answer work plus
    /// bulk shifted copies — instead of being re-derived by counting sort.
    /// A full [`AnswerMatrix::build`] pays the per-answer constant on all
    /// `n` answers instead; in the steady-state refit loop (small `Δ`) the
    /// merge is the cheaper path, which `bench_refresh` records.
    pub fn merge_delta(&self, tail: &[Answer]) -> AnswerMatrix {
        if tail.is_empty() {
            return self.clone();
        }
        let n_rows = self.n_rows;
        let n_cols = self.n_cols;
        let slots = n_rows * n_cols;
        let n_old = self.len();
        let n_new = n_old + tail.len();

        // Delta in cell-major order, ties by log order (`i` breaks ties, so
        // the unstable sort is deterministic).
        let mut delta: Vec<(usize, u32)> = tail
            .iter()
            .enumerate()
            .map(|(i, a)| {
                assert!(
                    (a.cell.row as usize) < n_rows && (a.cell.col as usize) < n_cols,
                    "delta answer outside the table shape"
                );
                (a.cell.row as usize * n_cols + a.cell.col as usize, i as u32)
            })
            .collect();
        delta.sort_unstable();

        // Merge the (sorted) worker tables. Steady state — no unseen worker
        // in the delta — keeps the old table and skips the index remap.
        let mut fresh_ids: Vec<WorkerId> = tail
            .iter()
            .map(|a| a.worker)
            .filter(|w| self.worker_ids.binary_search(w).is_err())
            .collect();
        fresh_ids.sort_unstable();
        fresh_ids.dedup();
        let (worker_ids, old_remap) = if fresh_ids.is_empty() {
            (self.worker_ids.clone(), None)
        } else {
            let mut merged = Vec::with_capacity(self.worker_ids.len() + fresh_ids.len());
            let mut remap = vec![0u32; self.worker_ids.len()];
            let (mut i, mut j) = (0, 0);
            while i < self.worker_ids.len() || j < fresh_ids.len() {
                if j >= fresh_ids.len()
                    || (i < self.worker_ids.len() && self.worker_ids[i] < fresh_ids[j])
                {
                    remap[i] = merged.len() as u32;
                    merged.push(self.worker_ids[i]);
                    i += 1;
                } else {
                    merged.push(fresh_ids[j]);
                    j += 1;
                }
            }
            (merged, Some(remap))
        };
        let widx =
            |w: WorkerId| -> u32 { worker_ids.binary_search(&w).expect("worker present") as u32 };

        // New cell offsets: old offsets shifted by the running delta count.
        let mut cell_offsets = vec![0u32; slots + 1];
        {
            let mut d = 0usize;
            let mut added = 0u32;
            for (s, off) in cell_offsets.iter_mut().enumerate().take(slots) {
                *off = self.cell_offsets[s] + added;
                while d < delta.len() && delta[d].0 == s {
                    added += 1;
                    d += 1;
                }
            }
            cell_offsets[slots] = n_new as u32;
        }

        // Splice plan: alternating (old payload run, delta run) pairs. Delta
        // answers of a cell go after its old answers — they are newer, so
        // insertion order within the cell is preserved — and old runs between
        // touched cells move in one piece.
        let mut segs: Vec<(std::ops::Range<usize>, std::ops::Range<usize>)> = Vec::new();
        {
            let mut copied = 0usize;
            let mut d = 0usize;
            while d < delta.len() {
                let slot = delta[d].0;
                let old_end = self.cell_offsets[slot + 1] as usize;
                let d0 = d;
                while d < delta.len() && delta[d].0 == slot {
                    d += 1;
                }
                segs.push((copied..old_end, d0..d));
                copied = old_end;
            }
            segs.push((copied..n_old, delta.len()..delta.len()));
        }
        // Per-lane splices: bulk `extend_from_slice` for old runs, decoded
        // pushes for the delta.
        let tail_at = |dr: &std::ops::Range<usize>| delta[dr.clone()].iter();
        let mut row_of = Vec::with_capacity(n_new);
        let mut col_of = Vec::with_capacity(n_new);
        let mut worker_of = Vec::with_capacity(n_new);
        let mut labels = Vec::with_capacity(n_new);
        let mut values = Vec::with_capacity(n_new);
        let mut categorical = Vec::with_capacity(n_new);
        let mut log_position = Vec::with_capacity(n_new);
        for (o, dr) in &segs {
            row_of.extend_from_slice(&self.row_of[o.clone()]);
            row_of.extend(tail_at(dr).map(|&(_, i)| tail[i as usize].cell.row));
            col_of.extend_from_slice(&self.col_of[o.clone()]);
            col_of.extend(tail_at(dr).map(|&(_, i)| tail[i as usize].cell.col));
            match &old_remap {
                None => worker_of.extend_from_slice(&self.worker_of[o.clone()]),
                Some(r) => {
                    worker_of.extend(self.worker_of[o.clone()].iter().map(|&w| r[w as usize]))
                }
            }
            worker_of.extend(tail_at(dr).map(|&(_, i)| widx(tail[i as usize].worker)));
            labels.extend_from_slice(&self.labels[o.clone()]);
            labels.extend(tail_at(dr).map(|&(_, i)| match tail[i as usize].value {
                Value::Categorical(l) => l,
                Value::Continuous(_) => 0,
            }));
            values.extend_from_slice(&self.values[o.clone()]);
            values.extend(tail_at(dr).map(|&(_, i)| match tail[i as usize].value {
                Value::Categorical(_) => 0.0,
                Value::Continuous(x) => x,
            }));
            categorical.extend_from_slice(&self.categorical[o.clone()]);
            categorical.extend(tail_at(dr).map(|&(_, i)| tail[i as usize].value.is_categorical()));
            log_position.extend_from_slice(&self.log_position[o.clone()]);
            log_position.extend(tail_at(dr).map(|&(_, i)| (n_old + i as usize) as u32));
        }

        let (worker_order, worker_offsets, worker_row_offsets) = self.splice_worker_views(
            tail,
            &delta,
            &cell_offsets,
            &worker_ids,
            old_remap.as_deref(),
            &widx,
        );

        AnswerMatrix {
            n_rows,
            n_cols,
            row_of,
            col_of,
            worker_of,
            labels,
            values,
            categorical,
            log_position,
            worker_ids,
            cell_offsets,
            worker_order,
            worker_offsets,
            worker_row_offsets,
        }
    }

    /// Splice the old by-worker views through the per-slot shift map instead
    /// of re-deriving them with a counting sort over the whole payload.
    ///
    /// The new cell offsets pin down where every old payload row lands
    /// (`new index = old index + (new_offsets[slot] − old_offsets[slot])`,
    /// since a cell's delta answers go *after* its old answers) and where
    /// every delta answer lands (the top of its cell's new range). Old
    /// `worker_order` runs are therefore still correctly ordered — within a
    /// (worker, row) group the payload indices stay ascending under the
    /// shift — so each group is a two-list merge of the shifted old run and
    /// that group's delta entries.
    ///
    /// Cost: per-answer work (sorting by (worker, row), worker-id
    /// resolution, merge interleaving) is confined to the delta
    /// (`O(Δ log Δ + Δ log W)`); the untouched runs move as bulk shifted
    /// copies (`O(n)` sequential, branch-free per answer — the same class as
    /// the payload memcpys); the offset arithmetic is `O(W·R + R·C)`. The
    /// previous path re-ran [`build_worker_views`], paying the counting-sort
    /// scatter on all `n` answers.
    ///
    /// Returns `(worker_order, worker_offsets, worker_row_offsets)`,
    /// bit-identical to what [`build_worker_views`] would produce for the
    /// merged payload (the differential proptest suite asserts it).
    #[allow(clippy::too_many_arguments)]
    fn splice_worker_views(
        &self,
        tail: &[Answer],
        delta: &[(usize, u32)],
        new_cell_offsets: &[u32],
        new_worker_ids: &[WorkerId],
        old_remap: Option<&[u32]>,
        widx: &dyn Fn(WorkerId) -> u32,
    ) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let n_rows = self.n_rows;
        let n_old = self.len();
        let n_new = n_old + delta.len();
        let n_workers = new_worker_ids.len();

        // Old payload index -> new payload index: one sequential pass over
        // the cell-major payload, adding each slot's shift to its run.
        let mut new_index_of_old = vec![0u32; n_old];
        for (&new_off, old) in new_cell_offsets.iter().zip(self.cell_offsets.windows(2)) {
            let shift = new_off - old[0];
            for k in old[0]..old[1] {
                new_index_of_old[k as usize] = k + shift;
            }
        }

        // Delta view entries (new worker index, row, new payload index),
        // sorted by that triple. A cell's delta answers sit at the top of its
        // new range, in `delta` (= cell-major, log-order ties) order.
        let mut dv: Vec<(u32, u32, u32)> = Vec::with_capacity(delta.len());
        {
            let mut d = 0usize;
            while d < delta.len() {
                let s = delta[d].0;
                // First delta position in slot s: old end + this slot's shift.
                let mut idx =
                    self.cell_offsets[s + 1] + (new_cell_offsets[s] - self.cell_offsets[s]);
                while d < delta.len() && delta[d].0 == s {
                    let a = &tail[delta[d].1 as usize];
                    dv.push((widx(a.worker), a.cell.row, idx));
                    idx += 1;
                    d += 1;
                }
            }
        }
        dv.sort_unstable();

        // New (worker, row) offsets. Steady state (no unseen worker): the
        // old offsets shifted by the delta's running count — one memcpy plus
        // bulk `+= constant` runs between touched keys, no counting sort.
        // With fresh workers the key space itself changes, so fall back to
        // re-counting through the remap.
        let wr = match old_remap {
            None => {
                let mut wr = self.worker_row_offsets.clone();
                let mut cum = 0u32;
                let mut from = 0usize;
                let mut d = 0usize;
                while d < dv.len() {
                    let key = dv[d].0 as usize * n_rows + dv[d].1 as usize;
                    // Offsets in (previous touched key, key] gained `cum`
                    // delta entries at strictly-smaller keys.
                    if cum > 0 {
                        for slot in &mut wr[from..=key] {
                            *slot += cum;
                        }
                    }
                    from = key + 1;
                    while d < dv.len() && dv[d].0 as usize * n_rows + dv[d].1 as usize == key {
                        cum += 1;
                        d += 1;
                    }
                }
                for slot in &mut wr[from..] {
                    *slot += cum;
                }
                wr
            }
            Some(remap) => {
                let mut wr = vec![0u32; n_workers * n_rows + 1];
                for (w_old, &w_new) in remap.iter().enumerate() {
                    let w_new = w_new as usize;
                    for r in 0..n_rows {
                        wr[w_new * n_rows + r + 1] += self.worker_row_offsets
                            [w_old * n_rows + r + 1]
                            - self.worker_row_offsets[w_old * n_rows + r];
                    }
                }
                for &(w, r, _) in &dv {
                    wr[w as usize * n_rows + r as usize + 1] += 1;
                }
                for s in 0..n_workers * n_rows {
                    wr[s + 1] += wr[s];
                }
                wr
            }
        };

        // New worker index -> old worker index (fresh workers have none).
        let old_of_new: Vec<Option<usize>> = match old_remap {
            None => (0..n_workers).map(Some).collect(),
            Some(remap) => {
                let mut inv = vec![None; n_workers];
                for (old, &new) in remap.iter().enumerate() {
                    inv[new as usize] = Some(old);
                }
                inv
            }
        };

        // Splice: per worker, bulk-shift the old run; workers with delta
        // entries merge them in row group by row group.
        let mut order = Vec::with_capacity(n_new);
        let mut dp = 0usize;
        for (w_new, &w_old) in old_of_new.iter().enumerate() {
            let d0 = dp;
            while dp < dv.len() && dv[dp].0 == w_new as u32 {
                dp += 1;
            }
            let dw = &dv[d0..dp];
            let old_seg: &[u32] = match w_old {
                Some(wo) => {
                    let lo = self.worker_offsets[wo] as usize;
                    let hi = self.worker_offsets[wo + 1] as usize;
                    &self.worker_order[lo..hi]
                }
                None => &[],
            };
            if dw.is_empty() {
                order.extend(old_seg.iter().map(|&k| new_index_of_old[k as usize]));
                continue;
            }
            let Some(wo) = w_old else {
                // Fresh worker: delta entries only, already in (row, index)
                // order.
                order.extend(dw.iter().map(|&(_, _, idx)| idx));
                continue;
            };
            let wr_base = wo * n_rows;
            let seg_start = self.worker_offsets[wo];
            let mut pos = 0usize;
            let mut di = 0usize;
            while di < dw.len() {
                let row = dw[di].1 as usize;
                let row_start = (self.worker_row_offsets[wr_base + row] - seg_start) as usize;
                let row_end = (self.worker_row_offsets[wr_base + row + 1] - seg_start) as usize;
                // Rows before this delta row move untouched.
                order.extend(old_seg[pos..row_start].iter().map(|&k| new_index_of_old[k as usize]));
                pos = row_start;
                // Merge this row group by new payload index.
                let dj = {
                    let mut j = di;
                    while j < dw.len() && dw[j].1 as usize == row {
                        j += 1;
                    }
                    j
                };
                for &(_, _, didx) in &dw[di..dj] {
                    while pos < row_end && new_index_of_old[old_seg[pos] as usize] < didx {
                        order.push(new_index_of_old[old_seg[pos] as usize]);
                        pos += 1;
                    }
                    order.push(didx);
                }
                order.extend(old_seg[pos..row_end].iter().map(|&k| new_index_of_old[k as usize]));
                pos = row_end;
                di = dj;
            }
            order.extend(old_seg[pos..].iter().map(|&k| new_index_of_old[k as usize]));
        }
        debug_assert_eq!(order.len(), n_new);

        let worker_offsets: Vec<u32> = (0..=n_workers).map(|w| wr[w * n_rows]).collect();
        (order, worker_offsets, wr)
    }

    /// Bring a freeze up to date with its source log: delta-merges
    /// `log[epoch..]`. Panics if the log is shorter than this freeze or has a
    /// different shape (that log cannot be the freeze's source).
    pub fn refresh(&self, log: &AnswerLog) -> AnswerMatrix {
        assert_eq!(
            (self.n_rows, self.n_cols),
            (log.rows(), log.cols()),
            "refresh from a log with a different table shape"
        );
        assert!(log.len() >= self.len(), "refresh from a log shorter than the freeze");
        self.merge_delta(&log.all()[self.len()..])
    }

    /// The freeze epoch: the source-log length this matrix reflects. A
    /// matrix always covers the whole log it was built/merged from, so the
    /// epoch equals [`Self::len`]; the distinct name marks the *staleness*
    /// semantics (compare against the live log's length).
    #[inline]
    pub fn epoch(&self) -> usize {
        self.len()
    }

    /// True when `log` has grown past (or shrunk below) this freeze.
    #[inline]
    pub fn is_stale(&self, log: &AnswerLog) -> bool {
        self.epoch() != log.len()
    }

    /// A copyable `(matrix, epoch)` handle for consumers that hold the
    /// freeze across log appends.
    #[inline]
    pub fn freeze_view(&self) -> FrozenView<'_> {
        FrozenView { matrix: self, epoch: self.epoch() }
    }

    // ---- shape ----

    /// Number of table rows `N`.
    #[inline]
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of table columns `M`.
    #[inline]
    pub fn cols(&self) -> usize {
        self.n_cols
    }

    /// Total number of answers `|A|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.row_of.len()
    }

    /// True when no answers are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.row_of.is_empty()
    }

    // ---- worker table ----

    /// Number of distinct workers.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.worker_ids.len()
    }

    /// The distinct worker ids, ascending.
    #[inline]
    pub fn worker_ids(&self) -> &[WorkerId] {
        &self.worker_ids
    }

    /// Dense index of a worker id, if the worker contributed answers.
    #[inline]
    pub fn worker_index(&self, worker: WorkerId) -> Option<usize> {
        self.worker_ids.binary_search(&worker).ok()
    }

    /// The worker id behind a dense index.
    #[inline]
    pub fn worker_id(&self, index: usize) -> WorkerId {
        self.worker_ids[index]
    }

    // ---- raw struct-of-arrays lanes (cell-major) ----

    /// Row per payload position.
    #[inline]
    pub fn answer_rows(&self) -> &[u32] {
        &self.row_of
    }

    /// Column per payload position.
    #[inline]
    pub fn answer_cols(&self) -> &[u32] {
        &self.col_of
    }

    /// Dense worker index per payload position.
    #[inline]
    pub fn answer_workers(&self) -> &[u32] {
        &self.worker_of
    }

    /// Categorical label lane (meaningful where [`Self::is_categorical`]).
    #[inline]
    pub fn answer_labels(&self) -> &[u32] {
        &self.labels
    }

    /// Continuous value lane (meaningful where not categorical).
    #[inline]
    pub fn answer_values(&self) -> &[f64] {
        &self.values
    }

    /// Whether the payload position holds a categorical answer.
    #[inline]
    pub fn is_categorical(&self, index: usize) -> bool {
        self.categorical[index]
    }

    /// Position of a payload row in the source [`AnswerLog`].
    #[inline]
    pub fn log_position(&self, index: usize) -> usize {
        self.log_position[index] as usize
    }

    /// Decode one payload position.
    #[inline]
    pub fn answer(&self, index: usize) -> MatrixAnswer {
        let widx = self.worker_of[index];
        MatrixAnswer {
            index: index as u32,
            worker: self.worker_ids[widx as usize],
            worker_index: widx,
            cell: CellId::new(self.row_of[index], self.col_of[index]),
            value: if self.categorical[index] {
                Value::Categorical(self.labels[index])
            } else {
                Value::Continuous(self.values[index])
            },
        }
    }

    // ---- by-cell view ----

    #[inline]
    fn slot(&self, cell: CellId) -> usize {
        debug_assert!(
            (cell.row as usize) < self.n_rows && (cell.col as usize) < self.n_cols,
            "cell outside the table shape"
        );
        cell.row as usize * self.n_cols + cell.col as usize
    }

    /// Payload range holding a cell's answers (contiguous, insertion order).
    #[inline]
    pub fn cell_range(&self, cell: CellId) -> std::ops::Range<usize> {
        let s = self.slot(cell);
        self.cell_offsets[s] as usize..self.cell_offsets[s + 1] as usize
    }

    /// The raw cell offset array (`rows·cols + 1` entries, row-major slots).
    #[inline]
    pub fn cell_offsets(&self) -> &[u32] {
        &self.cell_offsets
    }

    /// Number of answers on a cell.
    #[inline]
    pub fn count_for_cell(&self, cell: CellId) -> usize {
        self.cell_range(cell).len()
    }

    /// Decoded answers of one cell.
    pub fn cell_answers(&self, cell: CellId) -> impl Iterator<Item = MatrixAnswer> + '_ {
        self.cell_range(cell).map(move |k| self.answer(k))
    }

    /// True if `worker` answered `cell` in this freeze. `O(log W)` id
    /// resolution plus a scan of the cell's (small) answer run.
    pub fn has_answered(&self, worker: WorkerId, cell: CellId) -> bool {
        match self.worker_index(worker) {
            None => false,
            Some(w) => self.cell_range(cell).any(|k| self.worker_of[k] == w as u32),
        }
    }

    // ---- by-worker and by-(worker, row) views ----

    /// Payload indices of one worker's answers, grouped by row ascending.
    #[inline]
    pub fn worker_answer_indices(&self, worker_index: usize) -> &[u32] {
        let lo = self.worker_offsets[worker_index] as usize;
        let hi = self.worker_offsets[worker_index + 1] as usize;
        &self.worker_order[lo..hi]
    }

    /// Decoded answers of one worker (dense index), rows ascending.
    pub fn worker_answers(&self, worker_index: usize) -> impl Iterator<Item = MatrixAnswer> + '_ {
        self.worker_answer_indices(worker_index).iter().map(move |&k| self.answer(k as usize))
    }

    /// Payload indices of one worker's answers on one row.
    #[inline]
    pub fn worker_row_answer_indices(&self, worker_index: usize, row: u32) -> &[u32] {
        let key = worker_index * self.n_rows + row as usize;
        let lo = self.worker_row_offsets[key] as usize;
        let hi = self.worker_row_offsets[key + 1] as usize;
        &self.worker_order[lo..hi]
    }

    /// Decoded answers of one worker on one row (`L^u_i` of Eq. 7).
    pub fn worker_row_answers(
        &self,
        worker_index: usize,
        row: u32,
    ) -> impl Iterator<Item = MatrixAnswer> + '_ {
        self.worker_row_answer_indices(worker_index, row)
            .iter()
            .map(move |&k| self.answer(k as usize))
    }

    /// Decoded answers of a worker by id — empty iterator for unseen workers.
    pub fn answers_of(&self, worker: WorkerId) -> impl Iterator<Item = MatrixAnswer> + '_ {
        let range: &[u32] = match self.worker_index(worker) {
            Some(w) => self.worker_answer_indices(w),
            None => &[],
        };
        range.iter().map(move |&k| self.answer(k as usize))
    }

    /// Iterate all answers in cell-major payload order.
    pub fn iter(&self) -> impl Iterator<Item = MatrixAnswer> + '_ {
        (0..self.len()).map(move |k| self.answer(k))
    }

    /// Reconstruct the [`Answer`] at a payload position.
    #[inline]
    pub fn to_answer(&self, index: usize) -> Answer {
        let a = self.answer(index);
        Answer { worker: a.worker, cell: a.cell, value: a.value }
    }
}

impl From<&AnswerLog> for AnswerMatrix {
    fn from(log: &AnswerLog) -> Self {
        AnswerMatrix::build(log)
    }
}

/// The freeze answers the same point queries as the mutable log, from its
/// CSR views. Within a cell both representations agree answer-for-answer
/// (insertion order is preserved cell-locally); whole-column scans come
/// back in cell-major rather than arrival order, which every consumer of
/// this trait treats as a set.
impl crate::answer::AnswerQueries for AnswerMatrix {
    fn rows(&self) -> usize {
        AnswerMatrix::rows(self)
    }
    fn cols(&self) -> usize {
        AnswerMatrix::cols(self)
    }
    fn len(&self) -> usize {
        AnswerMatrix::len(self)
    }
    fn count_for_cell(&self, cell: CellId) -> usize {
        AnswerMatrix::count_for_cell(self, cell)
    }
    fn has_answered(&self, worker: WorkerId, cell: CellId) -> bool {
        AnswerMatrix::has_answered(self, worker, cell)
    }
    fn cell_values(&self, cell: CellId) -> Vec<Value> {
        self.cell_answers(cell).map(|a| a.value).collect()
    }
    fn for_each_cell_value(&self, cell: CellId, f: &mut dyn FnMut(&Value)) {
        for k in self.cell_range(cell) {
            let v = if self.categorical[k] {
                Value::Categorical(self.labels[k])
            } else {
                Value::Continuous(self.values[k])
            };
            f(&v);
        }
    }
    fn continuous_column_values(&self, col: u32) -> Vec<f64> {
        (0..self.len())
            .filter(|&k| self.col_of[k] == col && !self.categorical[k])
            .map(|k| self.values[k])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> AnswerLog {
        let mut log = AnswerLog::new(3, 2);
        let push = |log: &mut AnswerLog, w: u32, r: u32, c: u32, v: Value| {
            log.push(Answer { worker: WorkerId(w), cell: CellId::new(r, c), value: v });
        };
        push(&mut log, 7, 0, 0, Value::Categorical(1));
        push(&mut log, 2, 2, 1, Value::Continuous(4.0));
        push(&mut log, 7, 0, 1, Value::Continuous(1.5));
        push(&mut log, 2, 0, 0, Value::Categorical(0));
        push(&mut log, 9, 1, 0, Value::Categorical(2));
        push(&mut log, 7, 2, 1, Value::Continuous(2.5));
        log
    }

    #[test]
    fn workers_are_densely_indexed_in_sorted_order() {
        let m = AnswerMatrix::build(&sample_log());
        assert_eq!(m.worker_ids(), &[WorkerId(2), WorkerId(7), WorkerId(9)]);
        assert_eq!(m.worker_index(WorkerId(7)), Some(1));
        assert_eq!(m.worker_index(WorkerId(3)), None);
        assert_eq!(m.worker_id(2), WorkerId(9));
    }

    #[test]
    fn payload_is_cell_major_and_insertion_stable() {
        let m = AnswerMatrix::build(&sample_log());
        let slots: Vec<(u32, u32)> = m.iter().map(|a| (a.cell.row, a.cell.col)).collect();
        let mut sorted = slots.clone();
        sorted.sort();
        assert_eq!(slots, sorted, "payload must be cell-major");
        // Cell (0,0) got answers from workers 7 then 2 — insertion order kept.
        let c00: Vec<WorkerId> = m.cell_answers(CellId::new(0, 0)).map(|a| a.worker).collect();
        assert_eq!(c00, vec![WorkerId(7), WorkerId(2)]);
    }

    #[test]
    fn views_agree_with_a_naive_scan() {
        let log = sample_log();
        let m = AnswerMatrix::build(&log);
        assert_eq!(m.len(), log.len());
        // By cell.
        for cell in log.cells() {
            let mut naive: Vec<Answer> = log.for_cell(cell).copied().collect();
            let mut csr: Vec<Answer> =
                m.cell_answers(cell).map(|a| m.to_answer(a.index as usize)).collect();
            naive.sort_by_key(|a| a.worker);
            csr.sort_by_key(|a| a.worker);
            assert_eq!(naive, csr, "cell {cell:?}");
        }
        // By worker and by (worker, row).
        for (w, &wid) in m.worker_ids().iter().enumerate() {
            assert_eq!(m.worker_answers(w).count(), log.for_worker(wid).count());
            for row in 0..log.rows() as u32 {
                let naive: Vec<Value> = log.for_worker_row(wid, row).map(|a| a.value).collect();
                let csr: Vec<Value> = m.worker_row_answers(w, row).map(|a| a.value).collect();
                assert_eq!(naive, csr, "worker {wid} row {row}");
            }
        }
    }

    #[test]
    fn worker_view_is_grouped_by_ascending_row() {
        let m = AnswerMatrix::build(&sample_log());
        for w in 0..m.num_workers() {
            let rows: Vec<u32> = m.worker_answers(w).map(|a| a.cell.row).collect();
            let mut sorted = rows.clone();
            sorted.sort_unstable();
            assert_eq!(rows, sorted);
        }
    }

    #[test]
    fn split_value_lanes_round_trip() {
        let m = AnswerMatrix::build(&sample_log());
        for k in 0..m.len() {
            let a = m.answer(k);
            match a.value {
                Value::Categorical(l) => {
                    assert!(m.is_categorical(k));
                    assert_eq!(m.answer_labels()[k], l);
                }
                Value::Continuous(x) => {
                    assert!(!m.is_categorical(k));
                    assert_eq!(m.answer_values()[k], x);
                }
            }
        }
    }

    #[test]
    fn log_positions_invert_the_permutation() {
        let log = sample_log();
        let m = AnswerMatrix::build(&log);
        for k in 0..m.len() {
            assert_eq!(log.all()[m.log_position(k)], m.to_answer(k));
        }
    }

    #[test]
    fn merge_delta_equals_full_rebuild() {
        let full = sample_log();
        for k in 0..=full.len() {
            let mut prefix = AnswerLog::new(full.rows(), full.cols());
            for a in &full.all()[..k] {
                prefix.push(*a);
            }
            let merged = AnswerMatrix::build(&prefix).merge_delta(&full.all()[k..]);
            assert_eq!(merged, AnswerMatrix::build(&full), "split at {k}");
        }
    }

    #[test]
    fn merge_delta_handles_new_workers_and_empty_base() {
        let full = sample_log();
        // Empty base: the delta is the whole log.
        let empty = AnswerMatrix::build(&AnswerLog::new(full.rows(), full.cols()));
        assert_eq!(empty.merge_delta(full.all()), AnswerMatrix::build(&full));
        // Base with one worker, delta introducing workers 2 and 9 (both sides
        // of worker 7 in sorted order).
        let mut base = AnswerLog::new(full.rows(), full.cols());
        base.push(Answer {
            worker: WorkerId(7),
            cell: CellId::new(0, 0),
            value: Value::Categorical(1),
        });
        let mut log = base.clone();
        for a in full.all().iter().filter(|a| a.worker != WorkerId(7)) {
            log.push(*a);
        }
        let merged = AnswerMatrix::build(&base).refresh(&log);
        assert_eq!(merged, AnswerMatrix::build(&log));
        assert_eq!(merged.worker_ids(), &[WorkerId(2), WorkerId(7), WorkerId(9)]);
    }

    #[test]
    fn epoch_and_staleness_track_the_log() {
        let mut log = sample_log();
        let m = AnswerMatrix::build(&log);
        assert_eq!(m.epoch(), log.len());
        assert!(!m.is_stale(&log));
        let view = m.freeze_view();
        assert_eq!(view.epoch(), log.len());
        assert!(!view.is_stale(&log));
        log.push(Answer {
            worker: WorkerId(4),
            cell: CellId::new(1, 1),
            value: Value::Continuous(3.0),
        });
        assert!(m.is_stale(&log));
        assert!(view.is_stale(&log));
        let m2 = m.refresh(&log);
        assert!(!m2.is_stale(&log));
        assert_eq!(m2, AnswerMatrix::build(&log));
        // Refreshing an up-to-date freeze is the identity.
        assert_eq!(m2.refresh(&log), m2);
    }

    #[test]
    fn empty_log_builds_empty_matrix() {
        let m = AnswerMatrix::build(&AnswerLog::new(2, 3));
        assert!(m.is_empty());
        assert_eq!(m.num_workers(), 0);
        assert_eq!(m.count_for_cell(CellId::new(1, 2)), 0);
        assert_eq!(m.cell_offsets().len(), 7);
    }
}
