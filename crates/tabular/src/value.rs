//! Cell values: categorical labels or continuous numbers.

use std::fmt;

/// A single cell value — either a categorical label (stored as an index into
/// the column's label set `L_j`) or a continuous number.
///
/// The paper treats the two datatypes through one worker-quality model but
/// with different answer distributions (Eq. 1 vs Eq. 3); keeping the variant
/// explicit lets every consumer dispatch on the datatype without consulting
/// the schema twice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A categorical label, as an index into the column's label set.
    Categorical(u32),
    /// A continuous (real-valued) answer.
    Continuous(f64),
}

impl Value {
    /// The categorical label index, or `None` for continuous values.
    #[inline]
    pub fn as_categorical(&self) -> Option<u32> {
        match self {
            Value::Categorical(l) => Some(*l),
            Value::Continuous(_) => None,
        }
    }

    /// The continuous value, or `None` for categorical values.
    #[inline]
    pub fn as_continuous(&self) -> Option<f64> {
        match self {
            Value::Continuous(x) => Some(*x),
            Value::Categorical(_) => None,
        }
    }

    /// The categorical label index; panics on a continuous value.
    ///
    /// Use at sites where the schema guarantees the datatype (most model
    /// code), keeping the invariant violation loud instead of silent.
    #[inline]
    pub fn expect_categorical(&self) -> u32 {
        self.as_categorical().expect("schema/value datatype mismatch: expected categorical")
    }

    /// The continuous value; panics on a categorical value.
    #[inline]
    pub fn expect_continuous(&self) -> f64 {
        self.as_continuous().expect("schema/value datatype mismatch: expected continuous")
    }

    /// True if this is a categorical value.
    #[inline]
    pub fn is_categorical(&self) -> bool {
        matches!(self, Value::Categorical(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Categorical(l) => write!(f, "L{l}"),
            Value::Continuous(x) => write!(f, "{x:.4}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = Value::Categorical(3);
        let x = Value::Continuous(1.5);
        assert_eq!(c.as_categorical(), Some(3));
        assert_eq!(c.as_continuous(), None);
        assert_eq!(x.as_continuous(), Some(1.5));
        assert_eq!(x.as_categorical(), None);
        assert!(c.is_categorical());
        assert!(!x.is_categorical());
    }

    #[test]
    #[should_panic(expected = "datatype mismatch")]
    fn expect_categorical_panics_on_continuous() {
        Value::Continuous(0.0).expect_categorical();
    }

    #[test]
    #[should_panic(expected = "datatype mismatch")]
    fn expect_continuous_panics_on_categorical() {
        Value::Categorical(0).expect_continuous();
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Categorical(2).to_string(), "L2");
        assert_eq!(Value::Continuous(1.0).to_string(), "1.0000");
    }
}
