//! Datasets: schema + ground truth + answers (+ simulation ground truth about
//! the workers themselves, for calibration case studies).

use crate::answer::{AnswerLog, CellId, WorkerId};
use crate::schema::Schema;
use crate::value::Value;
use std::collections::HashMap;

/// Simulation-side ground truth about one worker.
///
/// Only generators populate this; inference never reads it. It exists so the
/// case studies (paper Fig. 3/4) can compare *estimated* worker quality
/// against *actual* quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerProfile {
    /// The worker's inherent answer variance `φ_u` (paper §4.1), in the
    /// generator's normalised noise units.
    pub phi: f64,
}

/// A full dataset: schema, ground-truth table, collected answers, and
/// (for simulated data) the true worker profiles.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The table schema.
    pub schema: Schema,
    /// Ground truth `T*_ij`, row-major: `truth[i][j]`.
    pub truth: Vec<Vec<Value>>,
    /// The collected answer set `A`.
    pub answers: AnswerLog,
    /// True worker profiles (empty for non-simulated data).
    pub worker_truth: HashMap<WorkerId, WorkerProfile>,
}

/// Summary statistics in the shape of the paper's Table 6.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStatistics {
    /// Dataset name.
    pub name: String,
    /// Number of rows (entities).
    pub rows: usize,
    /// Number of value columns.
    pub columns: usize,
    /// Number of cells (tasks).
    pub cells: usize,
    /// Number of categorical columns.
    pub categorical_columns: usize,
    /// Number of continuous columns.
    pub continuous_columns: usize,
    /// Total answers collected.
    pub answers: usize,
    /// Average answers per task.
    pub answers_per_task: f64,
    /// Number of distinct workers.
    pub workers: usize,
}

impl Dataset {
    /// Number of rows `N`.
    #[inline]
    pub fn rows(&self) -> usize {
        self.truth.len()
    }

    /// Number of columns `M`.
    #[inline]
    pub fn cols(&self) -> usize {
        self.schema.num_columns()
    }

    /// Ground truth of one cell.
    #[inline]
    pub fn truth_of(&self, cell: CellId) -> Value {
        self.truth[cell.row as usize][cell.col as usize]
    }

    /// Check internal consistency: shapes line up and every truth value and
    /// answer matches its column's datatype/domain.
    pub fn validate(&self) -> Result<(), String> {
        let (n, m) = (self.rows(), self.cols());
        if self.answers.rows() != n || self.answers.cols() != m {
            return Err(format!(
                "answer log shape {}×{} does not match table {}×{}",
                self.answers.rows(),
                self.answers.cols(),
                n,
                m
            ));
        }
        for (i, row) in self.truth.iter().enumerate() {
            if row.len() != m {
                return Err(format!("truth row {i} has {} cells, want {m}", row.len()));
            }
            for (j, v) in row.iter().enumerate() {
                if !self.schema.column_type(j).accepts(v) {
                    return Err(format!("truth value at ({i},{j}) violates column type"));
                }
            }
        }
        if let Err(idx) = self.answers.validate(&self.schema) {
            return Err(format!("answer #{idx} violates its column type"));
        }
        Ok(())
    }

    /// Table-6-style statistics.
    pub fn statistics(&self) -> DatasetStatistics {
        DatasetStatistics {
            name: self.schema.name.clone(),
            rows: self.rows(),
            columns: self.cols(),
            cells: self.rows() * self.cols(),
            categorical_columns: self.schema.categorical_columns().len(),
            continuous_columns: self.schema.continuous_columns().len(),
            answers: self.answers.len(),
            answers_per_task: self.answers.avg_answers_per_task(),
            workers: self.answers.num_workers(),
        }
    }

    /// Ground-truth continuous values of column `j` (panics on a categorical
    /// column) — used for metric denominators.
    pub fn continuous_truth_column(&self, j: usize) -> Vec<f64> {
        self.truth.iter().map(|row| row[j].expect_continuous()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Answer;
    use crate::schema::{Column, ColumnType};

    fn tiny_dataset() -> Dataset {
        let schema = Schema::new(
            "tiny",
            "id",
            vec![
                Column::new("cat", ColumnType::categorical_with_cardinality(3)),
                Column::new("num", ColumnType::Continuous { min: 0.0, max: 10.0 }),
            ],
        );
        let truth = vec![
            vec![Value::Categorical(0), Value::Continuous(1.0)],
            vec![Value::Categorical(2), Value::Continuous(9.0)],
        ];
        let mut answers = AnswerLog::new(2, 2);
        answers.push(Answer {
            worker: WorkerId(0),
            cell: CellId::new(0, 0),
            value: Value::Categorical(0),
        });
        answers.push(Answer {
            worker: WorkerId(0),
            cell: CellId::new(0, 1),
            value: Value::Continuous(1.4),
        });
        Dataset { schema, truth, answers, worker_truth: HashMap::new() }
    }

    #[test]
    fn validate_accepts_consistent_dataset() {
        assert_eq!(tiny_dataset().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_truth() {
        let mut d = tiny_dataset();
        d.truth[0][0] = Value::Continuous(3.0);
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_shape_mismatch() {
        let mut d = tiny_dataset();
        d.answers = AnswerLog::new(5, 2);
        assert!(d.validate().unwrap_err().contains("shape"));
    }

    #[test]
    fn statistics_reflect_content() {
        let s = tiny_dataset().statistics();
        assert_eq!(s.rows, 2);
        assert_eq!(s.columns, 2);
        assert_eq!(s.cells, 4);
        assert_eq!(s.categorical_columns, 1);
        assert_eq!(s.continuous_columns, 1);
        assert_eq!(s.answers, 2);
        assert_eq!(s.workers, 1);
        assert!((s.answers_per_task - 0.5).abs() < 1e-12);
    }

    #[test]
    fn continuous_truth_column_extracts() {
        let d = tiny_dataset();
        assert_eq!(d.continuous_truth_column(1), vec![1.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "datatype mismatch")]
    fn continuous_truth_column_panics_on_categorical() {
        tiny_dataset().continuous_truth_column(0);
    }
}
