//! Plain-text persistence for schemas, answer sets, truth tables and
//! estimates.
//!
//! A downstream user of T-Crowd has answers sitting in files, not in Rust
//! structs; this module defines a minimal tab-separated interchange format
//! (readable by any spreadsheet) and the parsers/writers for it. The CLI
//! crate builds directly on these.
//!
//! ## Formats
//!
//! **Schema** (`.schema.tsv`): directive lines.
//! ```text
//! #table  Celebrity
//! #key    Picture
//! #column Name         categorical  Gwyneth Paltrow|Jet Li|James Purefoy
//! #column Age          continuous   0  100
//! ```
//!
//! **Answers** (`.answers.tsv`): header then one answer per line. Categorical
//! values are written as label *names*; continuous as numbers.
//! ```text
//! worker  row  column  value
//! u12     0    Name    Jet Li
//! u12     0    Age     45
//! ```
//!
//! **Tables** (truth/estimates): header of column names, then one line per
//! row in row order.

use crate::answer::{Answer, AnswerLog, CellId, WorkerId};
use crate::schema::{Column, ColumnType, Schema};
use crate::value::Value;
use std::fmt;
use std::fs;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Errors raised by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed content, with a line number (1-based) and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse { line, message: message.into() }
}

/// Write a schema in the directive format.
pub fn write_schema(schema: &Schema, path: impl AsRef<Path>) -> Result<(), IoError> {
    let mut out = BufWriter::new(fs::File::create(path)?);
    writeln!(out, "#table\t{}", schema.name)?;
    writeln!(out, "#key\t{}", schema.key)?;
    for c in &schema.columns {
        match &c.ty {
            ColumnType::Categorical { labels } => {
                writeln!(out, "#column\t{}\tcategorical\t{}", c.name, labels.join("|"))?;
            }
            ColumnType::Continuous { min, max } => {
                writeln!(out, "#column\t{}\tcontinuous\t{min}\t{max}", c.name)?;
            }
        }
    }
    out.flush()?;
    Ok(())
}

/// Read a schema written by [`write_schema`].
pub fn read_schema(path: impl AsRef<Path>) -> Result<Schema, IoError> {
    let content = fs::read_to_string(path)?;
    let mut name = String::from("table");
    let mut key = String::from("key");
    let mut columns = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "#table" => {
                name = fields
                    .get(1)
                    .ok_or_else(|| parse_err(lineno, "#table needs a name"))?
                    .to_string();
            }
            "#key" => {
                key = fields
                    .get(1)
                    .ok_or_else(|| parse_err(lineno, "#key needs a name"))?
                    .to_string();
            }
            "#column" => {
                let cname =
                    fields.get(1).ok_or_else(|| parse_err(lineno, "#column needs a name"))?;
                let kind =
                    fields.get(2).ok_or_else(|| parse_err(lineno, "#column needs a kind"))?;
                match *kind {
                    "categorical" => {
                        let labels: Vec<String> = fields
                            .get(3)
                            .ok_or_else(|| parse_err(lineno, "categorical column needs labels"))?
                            .split('|')
                            .map(|s| s.to_string())
                            .collect();
                        if labels.is_empty() || labels.iter().any(|l| l.is_empty()) {
                            return Err(parse_err(lineno, "empty label in label set"));
                        }
                        columns.push(Column::new(*cname, ColumnType::Categorical { labels }));
                    }
                    "continuous" => {
                        let min: f64 = fields
                            .get(3)
                            .ok_or_else(|| parse_err(lineno, "continuous column needs min"))?
                            .parse()
                            .map_err(|e| parse_err(lineno, format!("bad min: {e}")))?;
                        let max: f64 = fields
                            .get(4)
                            .ok_or_else(|| parse_err(lineno, "continuous column needs max"))?
                            .parse()
                            .map_err(|e| parse_err(lineno, format!("bad max: {e}")))?;
                        if min >= max || min.is_nan() || max.is_nan() {
                            return Err(parse_err(lineno, "continuous domain needs min < max"));
                        }
                        columns.push(Column::new(*cname, ColumnType::Continuous { min, max }));
                    }
                    other => {
                        return Err(parse_err(lineno, format!("unknown column kind '{other}'")))
                    }
                }
            }
            other => return Err(parse_err(lineno, format!("unknown directive '{other}'"))),
        }
    }
    if columns.is_empty() {
        return Err(parse_err(content.lines().count(), "schema has no columns"));
    }
    Ok(Schema::new(name, key, columns))
}

fn column_index(schema: &Schema, name: &str, lineno: usize) -> Result<usize, IoError> {
    schema
        .columns
        .iter()
        .position(|c| c.name == name)
        .ok_or_else(|| parse_err(lineno, format!("unknown column '{name}'")))
}

fn render_value(schema: &Schema, col: usize, v: &Value) -> String {
    match (schema.column_type(col), v) {
        (ColumnType::Categorical { labels }, Value::Categorical(l)) => labels[*l as usize].clone(),
        (_, Value::Continuous(x)) => format!("{x}"),
        _ => unreachable!("value/column type mismatch"),
    }
}

fn parse_value(schema: &Schema, col: usize, text: &str, lineno: usize) -> Result<Value, IoError> {
    match schema.column_type(col) {
        ColumnType::Categorical { labels } => labels
            .iter()
            .position(|l| l == text)
            .map(|i| Value::Categorical(i as u32))
            .ok_or_else(|| parse_err(lineno, format!("'{text}' is not a label of this column"))),
        ColumnType::Continuous { .. } => text
            .parse::<f64>()
            .ok()
            .filter(|x| x.is_finite())
            .map(Value::Continuous)
            .ok_or_else(|| parse_err(lineno, format!("'{text}' is not a finite number"))),
    }
}

/// Write an answer log (requires the schema for label names).
pub fn write_answers(
    schema: &Schema,
    answers: &AnswerLog,
    path: impl AsRef<Path>,
) -> Result<(), IoError> {
    let mut out = BufWriter::new(fs::File::create(path)?);
    writeln!(out, "worker\trow\tcolumn\tvalue")?;
    for a in answers.all() {
        writeln!(
            out,
            "{}\t{}\t{}\t{}",
            a.worker.0,
            a.cell.row,
            schema.columns[a.cell.col as usize].name,
            render_value(schema, a.cell.col as usize, &a.value)
        )?;
    }
    out.flush()?;
    Ok(())
}

/// Read an answer log; `rows` fixes the table height (rows without answers
/// are legal). Returns an error on unknown columns, bad labels, or row
/// indices outside the table.
pub fn read_answers(
    schema: &Schema,
    rows: usize,
    path: impl AsRef<Path>,
) -> Result<AnswerLog, IoError> {
    let content = fs::read_to_string(path)?;
    let mut log = AnswerLog::new(rows, schema.num_columns());
    for (idx, raw) in content.lines().enumerate() {
        let lineno = idx + 1;
        if idx == 0 || raw.trim().is_empty() {
            continue; // header
        }
        let fields: Vec<&str> = raw.split('\t').collect();
        if fields.len() != 4 {
            return Err(parse_err(lineno, format!("expected 4 fields, got {}", fields.len())));
        }
        let worker: u32 = fields[0]
            .trim_start_matches('u')
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad worker id: {e}")))?;
        let row: u32 = fields[1].parse().map_err(|e| parse_err(lineno, format!("bad row: {e}")))?;
        if row as usize >= rows {
            return Err(parse_err(lineno, format!("row {row} outside table of {rows} rows")));
        }
        let col = column_index(schema, fields[2], lineno)?;
        let value = parse_value(schema, col, fields[3], lineno)?;
        log.push(Answer { worker: WorkerId(worker), cell: CellId::new(row, col as u32), value });
    }
    Ok(log)
}

/// Write a full table (truth or estimates) with a column-name header.
pub fn write_table(
    schema: &Schema,
    table: &[Vec<Value>],
    path: impl AsRef<Path>,
) -> Result<(), IoError> {
    let mut out = BufWriter::new(fs::File::create(path)?);
    let header: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
    writeln!(out, "{}\t{}", schema.key, header.join("\t"))?;
    for (i, row) in table.iter().enumerate() {
        let cells: Vec<String> =
            row.iter().enumerate().map(|(j, v)| render_value(schema, j, v)).collect();
        writeln!(out, "{i}\t{}", cells.join("\t"))?;
    }
    out.flush()?;
    Ok(())
}

/// Read a full table written by [`write_table`].
pub fn read_table(schema: &Schema, path: impl AsRef<Path>) -> Result<Vec<Vec<Value>>, IoError> {
    let content = fs::read_to_string(path)?;
    let mut rows = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        let lineno = idx + 1;
        if idx == 0 || raw.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = raw.split('\t').collect();
        if fields.len() != schema.num_columns() + 1 {
            return Err(parse_err(
                lineno,
                format!("expected {} fields, got {}", schema.num_columns() + 1, fields.len()),
            ));
        }
        let mut row = Vec::with_capacity(schema.num_columns());
        for (j, text) in fields[1..].iter().enumerate() {
            row.push(parse_value(schema, j, text, lineno)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

pub mod binary {
    //! Stable little-endian **binary codec** for answers, answer logs and
    //! schemas — the wire format of the `tcrowd-store` durability layer
    //! (WAL records, snapshot files).
    //!
    //! Stability contract: the encoding of every type below is fixed —
    //! fixed-width little-endian integers, `f64::to_bits` for floats (so
    //! round-trips are *bit-identical*, not merely approximately equal),
    //! length-prefixed UTF-8 for strings, a one-byte tag per enum variant.
    //! New variants may only be added with new tags; existing tags never
    //! change meaning. The codec carries **no framing or checksums** — the
    //! store layer wraps payloads in its own CRC frames.
    //!
    //! Encoders append to a `Vec<u8>`; decoders consume from a [`Cursor`]
    //! and fail loudly ([`CodecError`]) on truncation or unknown tags
    //! instead of guessing.

    use crate::answer::{Answer, AnswerLog, CellId, WorkerId};
    use crate::schema::{Column, ColumnType, Schema};
    use crate::value::Value;
    use std::fmt;

    /// A decode failure: byte position and message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct CodecError {
        /// Byte offset (within the buffer being decoded) where decoding failed.
        pub at: usize,
        /// What went wrong.
        pub message: String,
    }

    impl fmt::Display for CodecError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "binary decode error at byte {}: {}", self.at, self.message)
        }
    }

    impl std::error::Error for CodecError {}

    /// A bounds-checked reader over an encoded buffer.
    #[derive(Debug)]
    pub struct Cursor<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Cursor<'a> {
        /// Read from the start of `buf`.
        pub fn new(buf: &'a [u8]) -> Self {
            Cursor { buf, pos: 0 }
        }

        /// Current byte position.
        #[inline]
        pub fn position(&self) -> usize {
            self.pos
        }

        /// Bytes left to read.
        #[inline]
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// True once every byte has been consumed.
        #[inline]
        pub fn is_empty(&self) -> bool {
            self.remaining() == 0
        }

        fn err(&self, message: impl Into<String>) -> CodecError {
            CodecError { at: self.pos, message: message.into() }
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
            if self.remaining() < n {
                return Err(self.err(format!("need {n} bytes, {} remain", self.remaining())));
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        /// Read one byte.
        pub fn u8(&mut self) -> Result<u8, CodecError> {
            Ok(self.take(1)?[0])
        }

        /// Read a little-endian `u32`.
        pub fn u32(&mut self) -> Result<u32, CodecError> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
        }

        /// Read a little-endian `u64`.
        pub fn u64(&mut self) -> Result<u64, CodecError> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
        }

        /// Read an `f64` stored as its IEEE-754 bit pattern (bit-exact).
        pub fn f64(&mut self) -> Result<f64, CodecError> {
            Ok(f64::from_bits(self.u64()?))
        }

        /// Read a `u32`-length-prefixed UTF-8 string.
        pub fn str(&mut self) -> Result<String, CodecError> {
            let len = self.u32()? as usize;
            if len > self.remaining() {
                return Err(self.err(format!("string of {len} bytes overruns the buffer")));
            }
            let bytes = self.take(len)?;
            String::from_utf8(bytes.to_vec())
                .map_err(|e| CodecError { at: self.pos, message: format!("invalid UTF-8: {e}") })
        }
    }

    /// Append one byte.
    pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
        buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (bit-exact round-trip).
    pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
        put_u64(buf, v.to_bits());
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_u32(buf, s.len() as u32);
        buf.extend_from_slice(s.as_bytes());
    }

    const VALUE_CATEGORICAL: u8 = 0;
    const VALUE_CONTINUOUS: u8 = 1;

    /// Encode a cell value (tag byte + payload).
    pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
        match v {
            Value::Categorical(l) => {
                put_u8(buf, VALUE_CATEGORICAL);
                put_u32(buf, *l);
            }
            Value::Continuous(x) => {
                put_u8(buf, VALUE_CONTINUOUS);
                put_f64(buf, *x);
            }
        }
    }

    /// Decode a cell value.
    pub fn get_value(c: &mut Cursor<'_>) -> Result<Value, CodecError> {
        match c.u8()? {
            VALUE_CATEGORICAL => Ok(Value::Categorical(c.u32()?)),
            VALUE_CONTINUOUS => Ok(Value::Continuous(c.f64()?)),
            tag => Err(CodecError {
                at: c.position() - 1,
                message: format!("unknown value tag {tag}"),
            }),
        }
    }

    /// Encode one answer: worker, row, col, value.
    pub fn put_answer(buf: &mut Vec<u8>, a: &Answer) {
        put_u32(buf, a.worker.0);
        put_u32(buf, a.cell.row);
        put_u32(buf, a.cell.col);
        put_value(buf, &a.value);
    }

    /// Decode one answer.
    pub fn get_answer(c: &mut Cursor<'_>) -> Result<Answer, CodecError> {
        let worker = WorkerId(c.u32()?);
        let row = c.u32()?;
        let col = c.u32()?;
        let value = get_value(c)?;
        Ok(Answer { worker, cell: CellId::new(row, col), value })
    }

    /// Encode a batch of answers (count-prefixed).
    pub fn put_answers(buf: &mut Vec<u8>, answers: &[Answer]) {
        put_u32(buf, answers.len() as u32);
        for a in answers {
            put_answer(buf, a);
        }
    }

    /// Decode a batch of answers written by [`put_answers`].
    pub fn get_answers(c: &mut Cursor<'_>) -> Result<Vec<Answer>, CodecError> {
        let n = c.u32()? as usize;
        // 13 bytes is the smallest possible encoded answer; reject counts the
        // buffer cannot possibly hold before allocating.
        if n.saturating_mul(13) > c.remaining() {
            return Err(CodecError {
                at: c.position(),
                message: format!("answer count {n} overruns the buffer"),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(get_answer(c)?);
        }
        Ok(out)
    }

    /// Encode a full answer log (shape + answers in insertion order).
    ///
    /// Decoding with [`get_log`] reproduces a **bit-identical** log: same
    /// shape, same answers in the same order — and therefore identical
    /// derived indexes, freezes and inference results.
    pub fn put_log(buf: &mut Vec<u8>, log: &AnswerLog) {
        put_u64(buf, log.rows() as u64);
        put_u64(buf, log.cols() as u64);
        put_answers(buf, log.all());
    }

    /// Decode an answer log written by [`put_log`].
    pub fn get_log(c: &mut Cursor<'_>) -> Result<AnswerLog, CodecError> {
        let rows = c.u64()? as usize;
        let cols = c.u64()? as usize;
        if rows.saturating_mul(cols) > u32::MAX as usize {
            return Err(CodecError {
                at: c.position(),
                message: format!("implausible log shape {rows}x{cols}"),
            });
        }
        let answers = get_answers(c)?;
        let mut log = AnswerLog::new(rows, cols);
        for (i, a) in answers.into_iter().enumerate() {
            if a.cell.row as usize >= rows || a.cell.col as usize >= cols {
                return Err(CodecError {
                    at: c.position(),
                    message: format!(
                        "answer {i} addresses cell ({}, {}) outside the {rows}x{cols} table",
                        a.cell.row, a.cell.col
                    ),
                });
            }
            log.push(a);
        }
        Ok(log)
    }

    const COLUMN_CATEGORICAL: u8 = 0;
    const COLUMN_CONTINUOUS: u8 = 1;

    /// Encode a schema (name, key, columns with types and domains).
    pub fn put_schema(buf: &mut Vec<u8>, schema: &Schema) {
        put_str(buf, &schema.name);
        put_str(buf, &schema.key);
        put_u32(buf, schema.columns.len() as u32);
        for c in &schema.columns {
            put_str(buf, &c.name);
            match &c.ty {
                ColumnType::Categorical { labels } => {
                    put_u8(buf, COLUMN_CATEGORICAL);
                    put_u32(buf, labels.len() as u32);
                    for l in labels {
                        put_str(buf, l);
                    }
                }
                ColumnType::Continuous { min, max } => {
                    put_u8(buf, COLUMN_CONTINUOUS);
                    put_f64(buf, *min);
                    put_f64(buf, *max);
                }
            }
        }
    }

    /// Decode a schema written by [`put_schema`].
    pub fn get_schema(c: &mut Cursor<'_>) -> Result<Schema, CodecError> {
        let name = c.str()?;
        let key = c.str()?;
        let n_cols = c.u32()? as usize;
        if n_cols == 0 {
            return Err(CodecError { at: c.position(), message: "schema has no columns".into() });
        }
        let mut columns = Vec::with_capacity(n_cols.min(1024));
        for _ in 0..n_cols {
            let cname = c.str()?;
            let ty = match c.u8()? {
                COLUMN_CATEGORICAL => {
                    let n_labels = c.u32()? as usize;
                    if n_labels == 0 {
                        return Err(CodecError {
                            at: c.position(),
                            message: "categorical column with no labels".into(),
                        });
                    }
                    let mut labels = Vec::with_capacity(n_labels.min(4096));
                    for _ in 0..n_labels {
                        labels.push(c.str()?);
                    }
                    ColumnType::Categorical { labels }
                }
                COLUMN_CONTINUOUS => {
                    let min = c.f64()?;
                    let max = c.f64()?;
                    ColumnType::Continuous { min, max }
                }
                tag => {
                    return Err(CodecError {
                        at: c.position() - 1,
                        message: format!("unknown column tag {tag}"),
                    })
                }
            };
            columns.push(Column::new(cname, ty));
        }
        Ok(Schema::new(name, key, columns))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::generator::{generate_dataset, GeneratorConfig};

        fn sample() -> crate::dataset::Dataset {
            generate_dataset(
                &GeneratorConfig {
                    rows: 10,
                    columns: 5,
                    num_workers: 7,
                    answers_per_task: 3,
                    ..Default::default()
                },
                11,
            )
        }

        #[test]
        fn log_roundtrip_is_bit_identical() {
            let d = sample();
            let mut buf = Vec::new();
            put_log(&mut buf, &d.answers);
            let mut c = Cursor::new(&buf);
            let back = get_log(&mut c).unwrap();
            assert!(c.is_empty(), "decoder must consume the whole encoding");
            assert_eq!(back.rows(), d.answers.rows());
            assert_eq!(back.cols(), d.answers.cols());
            assert_eq!(back.all(), d.answers.all());
            // Continuous payloads survive to the bit.
            for (a, b) in back.all().iter().zip(d.answers.all()) {
                if let (Value::Continuous(x), Value::Continuous(y)) = (a.value, b.value) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }

        #[test]
        fn schema_roundtrip() {
            let d = sample();
            let mut buf = Vec::new();
            put_schema(&mut buf, &d.schema);
            let back = get_schema(&mut Cursor::new(&buf)).unwrap();
            assert_eq!(back, d.schema);
        }

        #[test]
        fn truncation_is_an_error_at_every_prefix() {
            let d = sample();
            let mut buf = Vec::new();
            put_log(&mut buf, &d.answers);
            for cut in 0..buf.len() {
                assert!(
                    get_log(&mut Cursor::new(&buf[..cut])).is_err(),
                    "decoding a {cut}-byte prefix of a {}-byte log must fail",
                    buf.len()
                );
            }
        }

        #[test]
        fn unknown_tags_and_bad_shapes_are_rejected() {
            // Unknown value tag.
            let mut buf = Vec::new();
            put_u32(&mut buf, 1); // worker
            put_u32(&mut buf, 0); // row
            put_u32(&mut buf, 0); // col
            put_u8(&mut buf, 9); // bad tag
            assert!(get_answer(&mut Cursor::new(&buf)).is_err());

            // Answer outside the declared shape.
            let mut log = AnswerLog::new(4, 2);
            log.push(Answer {
                worker: WorkerId(0),
                cell: CellId::new(3, 1),
                value: Value::Categorical(0),
            });
            let mut buf = Vec::new();
            put_u64(&mut buf, 2); // claim 2 rows…
            put_u64(&mut buf, 2);
            put_answers(&mut buf, log.all()); // …but the answer sits on row 3
            assert!(get_log(&mut Cursor::new(&buf)).is_err());

            // Hostile count that cannot fit the buffer.
            let mut buf = Vec::new();
            put_u32(&mut buf, u32::MAX);
            assert!(get_answers(&mut Cursor::new(&buf)).is_err());
        }

        #[test]
        fn strings_with_multibyte_utf8_roundtrip() {
            let mut buf = Vec::new();
            put_str(&mut buf, "café ∞ 表");
            assert_eq!(Cursor::new(&buf).str().unwrap(), "café ∞ 表");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_dataset, GeneratorConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tcrowd_io_tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{name}", std::process::id()))
    }

    fn sample() -> crate::dataset::Dataset {
        generate_dataset(
            &GeneratorConfig {
                rows: 8,
                columns: 4,
                num_workers: 6,
                answers_per_task: 2,
                ..Default::default()
            },
            3,
        )
    }

    #[test]
    fn schema_roundtrip() {
        let d = sample();
        let p = tmp("schema.tsv");
        write_schema(&d.schema, &p).unwrap();
        let back = read_schema(&p).unwrap();
        assert_eq!(back, d.schema);
        fs::remove_file(&p).ok();
    }

    #[test]
    fn answers_roundtrip() {
        let d = sample();
        let p = tmp("answers.tsv");
        write_answers(&d.schema, &d.answers, &p).unwrap();
        let back = read_answers(&d.schema, d.rows(), &p).unwrap();
        assert_eq!(back.all(), d.answers.all());
        fs::remove_file(&p).ok();
    }

    #[test]
    fn table_roundtrip() {
        let d = sample();
        let p = tmp("truth.tsv");
        write_table(&d.schema, &d.truth, &p).unwrap();
        let back = read_table(&d.schema, &p).unwrap();
        assert_eq!(back.len(), d.truth.len());
        for (a, b) in back.iter().flatten().zip(d.truth.iter().flatten()) {
            match (a, b) {
                (Value::Categorical(x), Value::Categorical(y)) => assert_eq!(x, y),
                (Value::Continuous(x), Value::Continuous(y)) => {
                    assert!((x - y).abs() < 1e-9)
                }
                _ => panic!("variant mismatch"),
            }
        }
        fs::remove_file(&p).ok();
    }

    #[test]
    fn read_schema_rejects_garbage() {
        let p = tmp("bad.schema.tsv");
        fs::write(&p, "#column\tx\tcategorical\t\n").unwrap();
        assert!(read_schema(&p).is_err());
        fs::write(&p, "#column\tx\tcontinuous\t5\t1\n").unwrap();
        let err = read_schema(&p).unwrap_err();
        assert!(err.to_string().contains("min < max"), "{err}");
        fs::write(&p, "#banana\n").unwrap();
        assert!(read_schema(&p).is_err());
        fs::remove_file(&p).ok();
    }

    #[test]
    fn read_answers_rejects_bad_rows_and_labels() {
        let d = sample();
        let p = tmp("bad.answers.tsv");
        fs::write(&p, "worker\trow\tcolumn\tvalue\n0\t99\tcat0\tL0\n").unwrap();
        let err = read_answers(&d.schema, d.rows(), &p).unwrap_err();
        assert!(err.to_string().contains("outside table"), "{err}");
        fs::write(&p, "worker\trow\tcolumn\tvalue\n0\t0\tcat0\tnot_a_label\n").unwrap();
        assert!(read_answers(&d.schema, d.rows(), &p).is_err());
        fs::write(&p, "worker\trow\tcolumn\tvalue\n0\t0\tnope\tL0\n").unwrap();
        assert!(read_answers(&d.schema, d.rows(), &p).is_err());
        fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_answer_file_is_just_empty() {
        let d = sample();
        let p = tmp("empty.answers.tsv");
        fs::write(&p, "worker\trow\tcolumn\tvalue\n").unwrap();
        let log = read_answers(&d.schema, d.rows(), &p).unwrap();
        assert!(log.is_empty());
        fs::remove_file(&p).ok();
    }
}
