//! Plain-text persistence for schemas, answer sets, truth tables and
//! estimates.
//!
//! A downstream user of T-Crowd has answers sitting in files, not in Rust
//! structs; this module defines a minimal tab-separated interchange format
//! (readable by any spreadsheet) and the parsers/writers for it. The CLI
//! crate builds directly on these.
//!
//! ## Formats
//!
//! **Schema** (`.schema.tsv`): directive lines.
//! ```text
//! #table  Celebrity
//! #key    Picture
//! #column Name         categorical  Gwyneth Paltrow|Jet Li|James Purefoy
//! #column Age          continuous   0  100
//! ```
//!
//! **Answers** (`.answers.tsv`): header then one answer per line. Categorical
//! values are written as label *names*; continuous as numbers.
//! ```text
//! worker  row  column  value
//! u12     0    Name    Jet Li
//! u12     0    Age     45
//! ```
//!
//! **Tables** (truth/estimates): header of column names, then one line per
//! row in row order.

use crate::answer::{Answer, AnswerLog, CellId, WorkerId};
use crate::schema::{Column, ColumnType, Schema};
use crate::value::Value;
use std::fmt;
use std::fs;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Errors raised by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed content, with a line number (1-based) and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse { line, message: message.into() }
}

/// Write a schema in the directive format.
pub fn write_schema(schema: &Schema, path: impl AsRef<Path>) -> Result<(), IoError> {
    let mut out = BufWriter::new(fs::File::create(path)?);
    writeln!(out, "#table\t{}", schema.name)?;
    writeln!(out, "#key\t{}", schema.key)?;
    for c in &schema.columns {
        match &c.ty {
            ColumnType::Categorical { labels } => {
                writeln!(out, "#column\t{}\tcategorical\t{}", c.name, labels.join("|"))?;
            }
            ColumnType::Continuous { min, max } => {
                writeln!(out, "#column\t{}\tcontinuous\t{min}\t{max}", c.name)?;
            }
        }
    }
    out.flush()?;
    Ok(())
}

/// Read a schema written by [`write_schema`].
pub fn read_schema(path: impl AsRef<Path>) -> Result<Schema, IoError> {
    let content = fs::read_to_string(path)?;
    let mut name = String::from("table");
    let mut key = String::from("key");
    let mut columns = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "#table" => {
                name = fields
                    .get(1)
                    .ok_or_else(|| parse_err(lineno, "#table needs a name"))?
                    .to_string();
            }
            "#key" => {
                key = fields
                    .get(1)
                    .ok_or_else(|| parse_err(lineno, "#key needs a name"))?
                    .to_string();
            }
            "#column" => {
                let cname =
                    fields.get(1).ok_or_else(|| parse_err(lineno, "#column needs a name"))?;
                let kind =
                    fields.get(2).ok_or_else(|| parse_err(lineno, "#column needs a kind"))?;
                match *kind {
                    "categorical" => {
                        let labels: Vec<String> = fields
                            .get(3)
                            .ok_or_else(|| parse_err(lineno, "categorical column needs labels"))?
                            .split('|')
                            .map(|s| s.to_string())
                            .collect();
                        if labels.is_empty() || labels.iter().any(|l| l.is_empty()) {
                            return Err(parse_err(lineno, "empty label in label set"));
                        }
                        columns.push(Column::new(*cname, ColumnType::Categorical { labels }));
                    }
                    "continuous" => {
                        let min: f64 = fields
                            .get(3)
                            .ok_or_else(|| parse_err(lineno, "continuous column needs min"))?
                            .parse()
                            .map_err(|e| parse_err(lineno, format!("bad min: {e}")))?;
                        let max: f64 = fields
                            .get(4)
                            .ok_or_else(|| parse_err(lineno, "continuous column needs max"))?
                            .parse()
                            .map_err(|e| parse_err(lineno, format!("bad max: {e}")))?;
                        if min >= max || min.is_nan() || max.is_nan() {
                            return Err(parse_err(lineno, "continuous domain needs min < max"));
                        }
                        columns.push(Column::new(*cname, ColumnType::Continuous { min, max }));
                    }
                    other => {
                        return Err(parse_err(lineno, format!("unknown column kind '{other}'")))
                    }
                }
            }
            other => return Err(parse_err(lineno, format!("unknown directive '{other}'"))),
        }
    }
    if columns.is_empty() {
        return Err(parse_err(content.lines().count(), "schema has no columns"));
    }
    Ok(Schema::new(name, key, columns))
}

fn column_index(schema: &Schema, name: &str, lineno: usize) -> Result<usize, IoError> {
    schema
        .columns
        .iter()
        .position(|c| c.name == name)
        .ok_or_else(|| parse_err(lineno, format!("unknown column '{name}'")))
}

fn render_value(schema: &Schema, col: usize, v: &Value) -> String {
    match (schema.column_type(col), v) {
        (ColumnType::Categorical { labels }, Value::Categorical(l)) => labels[*l as usize].clone(),
        (_, Value::Continuous(x)) => format!("{x}"),
        _ => unreachable!("value/column type mismatch"),
    }
}

fn parse_value(schema: &Schema, col: usize, text: &str, lineno: usize) -> Result<Value, IoError> {
    match schema.column_type(col) {
        ColumnType::Categorical { labels } => labels
            .iter()
            .position(|l| l == text)
            .map(|i| Value::Categorical(i as u32))
            .ok_or_else(|| parse_err(lineno, format!("'{text}' is not a label of this column"))),
        ColumnType::Continuous { .. } => text
            .parse::<f64>()
            .ok()
            .filter(|x| x.is_finite())
            .map(Value::Continuous)
            .ok_or_else(|| parse_err(lineno, format!("'{text}' is not a finite number"))),
    }
}

/// Write an answer log (requires the schema for label names).
pub fn write_answers(
    schema: &Schema,
    answers: &AnswerLog,
    path: impl AsRef<Path>,
) -> Result<(), IoError> {
    let mut out = BufWriter::new(fs::File::create(path)?);
    writeln!(out, "worker\trow\tcolumn\tvalue")?;
    for a in answers.all() {
        writeln!(
            out,
            "{}\t{}\t{}\t{}",
            a.worker.0,
            a.cell.row,
            schema.columns[a.cell.col as usize].name,
            render_value(schema, a.cell.col as usize, &a.value)
        )?;
    }
    out.flush()?;
    Ok(())
}

/// Read an answer log; `rows` fixes the table height (rows without answers
/// are legal). Returns an error on unknown columns, bad labels, or row
/// indices outside the table.
pub fn read_answers(
    schema: &Schema,
    rows: usize,
    path: impl AsRef<Path>,
) -> Result<AnswerLog, IoError> {
    let content = fs::read_to_string(path)?;
    let mut log = AnswerLog::new(rows, schema.num_columns());
    for (idx, raw) in content.lines().enumerate() {
        let lineno = idx + 1;
        if idx == 0 || raw.trim().is_empty() {
            continue; // header
        }
        let fields: Vec<&str> = raw.split('\t').collect();
        if fields.len() != 4 {
            return Err(parse_err(lineno, format!("expected 4 fields, got {}", fields.len())));
        }
        let worker: u32 = fields[0]
            .trim_start_matches('u')
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad worker id: {e}")))?;
        let row: u32 = fields[1].parse().map_err(|e| parse_err(lineno, format!("bad row: {e}")))?;
        if row as usize >= rows {
            return Err(parse_err(lineno, format!("row {row} outside table of {rows} rows")));
        }
        let col = column_index(schema, fields[2], lineno)?;
        let value = parse_value(schema, col, fields[3], lineno)?;
        log.push(Answer { worker: WorkerId(worker), cell: CellId::new(row, col as u32), value });
    }
    Ok(log)
}

/// Write a full table (truth or estimates) with a column-name header.
pub fn write_table(
    schema: &Schema,
    table: &[Vec<Value>],
    path: impl AsRef<Path>,
) -> Result<(), IoError> {
    let mut out = BufWriter::new(fs::File::create(path)?);
    let header: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
    writeln!(out, "{}\t{}", schema.key, header.join("\t"))?;
    for (i, row) in table.iter().enumerate() {
        let cells: Vec<String> =
            row.iter().enumerate().map(|(j, v)| render_value(schema, j, v)).collect();
        writeln!(out, "{i}\t{}", cells.join("\t"))?;
    }
    out.flush()?;
    Ok(())
}

/// Read a full table written by [`write_table`].
pub fn read_table(schema: &Schema, path: impl AsRef<Path>) -> Result<Vec<Vec<Value>>, IoError> {
    let content = fs::read_to_string(path)?;
    let mut rows = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        let lineno = idx + 1;
        if idx == 0 || raw.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = raw.split('\t').collect();
        if fields.len() != schema.num_columns() + 1 {
            return Err(parse_err(
                lineno,
                format!("expected {} fields, got {}", schema.num_columns() + 1, fields.len()),
            ));
        }
        let mut row = Vec::with_capacity(schema.num_columns());
        for (j, text) in fields[1..].iter().enumerate() {
            row.push(parse_value(schema, j, text, lineno)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_dataset, GeneratorConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tcrowd_io_tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{name}", std::process::id()))
    }

    fn sample() -> crate::dataset::Dataset {
        generate_dataset(
            &GeneratorConfig {
                rows: 8,
                columns: 4,
                num_workers: 6,
                answers_per_task: 2,
                ..Default::default()
            },
            3,
        )
    }

    #[test]
    fn schema_roundtrip() {
        let d = sample();
        let p = tmp("schema.tsv");
        write_schema(&d.schema, &p).unwrap();
        let back = read_schema(&p).unwrap();
        assert_eq!(back, d.schema);
        fs::remove_file(&p).ok();
    }

    #[test]
    fn answers_roundtrip() {
        let d = sample();
        let p = tmp("answers.tsv");
        write_answers(&d.schema, &d.answers, &p).unwrap();
        let back = read_answers(&d.schema, d.rows(), &p).unwrap();
        assert_eq!(back.all(), d.answers.all());
        fs::remove_file(&p).ok();
    }

    #[test]
    fn table_roundtrip() {
        let d = sample();
        let p = tmp("truth.tsv");
        write_table(&d.schema, &d.truth, &p).unwrap();
        let back = read_table(&d.schema, &p).unwrap();
        assert_eq!(back.len(), d.truth.len());
        for (a, b) in back.iter().flatten().zip(d.truth.iter().flatten()) {
            match (a, b) {
                (Value::Categorical(x), Value::Categorical(y)) => assert_eq!(x, y),
                (Value::Continuous(x), Value::Continuous(y)) => {
                    assert!((x - y).abs() < 1e-9)
                }
                _ => panic!("variant mismatch"),
            }
        }
        fs::remove_file(&p).ok();
    }

    #[test]
    fn read_schema_rejects_garbage() {
        let p = tmp("bad.schema.tsv");
        fs::write(&p, "#column\tx\tcategorical\t\n").unwrap();
        assert!(read_schema(&p).is_err());
        fs::write(&p, "#column\tx\tcontinuous\t5\t1\n").unwrap();
        let err = read_schema(&p).unwrap_err();
        assert!(err.to_string().contains("min < max"), "{err}");
        fs::write(&p, "#banana\n").unwrap();
        assert!(read_schema(&p).is_err());
        fs::remove_file(&p).ok();
    }

    #[test]
    fn read_answers_rejects_bad_rows_and_labels() {
        let d = sample();
        let p = tmp("bad.answers.tsv");
        fs::write(&p, "worker\trow\tcolumn\tvalue\n0\t99\tcat0\tL0\n").unwrap();
        let err = read_answers(&d.schema, d.rows(), &p).unwrap_err();
        assert!(err.to_string().contains("outside table"), "{err}");
        fs::write(&p, "worker\trow\tcolumn\tvalue\n0\t0\tcat0\tnot_a_label\n").unwrap();
        assert!(read_answers(&d.schema, d.rows(), &p).is_err());
        fs::write(&p, "worker\trow\tcolumn\tvalue\n0\t0\tnope\tL0\n").unwrap();
        assert!(read_answers(&d.schema, d.rows(), &p).is_err());
        fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_answer_file_is_just_empty() {
        let d = sample();
        let p = tmp("empty.answers.tsv");
        fs::write(&p, "worker\trow\tcolumn\tvalue\n").unwrap();
        let log = read_answers(&d.schema, d.rows(), &p).unwrap();
        assert!(log.is_empty());
        fs::remove_file(&p).ok();
    }
}
