//! Quarantine **filter views**: serve truth inference and assignment queries
//! over an answer set *minus* a set of excluded workers, without deleting
//! anything from the underlying log or changing the storage layout.
//!
//! Quarantining a worker must be cheap, reversible and exact: the answer log
//! is the system of record (answers are expensive and unrepeatable), so a
//! defense layer that *deleted* a suspected spammer's answers could never be
//! undone. Instead, [`QuarantineView`] wraps a frozen [`AnswerMatrix`] and a
//! sorted excluded-worker set and answers every [`AnswerQueries`] point query
//! as if those workers had never contributed; [`AnswerMatrix::without_workers`]
//! materialises the same exclusion as a standalone freeze for EM (truth
//! inference iterates whole payload lanes, so a filtered freeze beats
//! per-answer membership tests there). Un-quarantining is the identity: drop
//! the exclusion and the original log/matrix is still exactly what it was.
//!
//! The differential contract (regression-tested by proptest): inference over
//! the filtered freeze ≡ inference over a log rebuilt without the excluded
//! workers' answers ([`AnswerLog::without_workers`]), and an empty exclusion
//! set reproduces the unfiltered fit bit-for-bit.

use crate::answer::{AnswerLog, AnswerQueries, CellId, WorkerId};
use crate::matrix::AnswerMatrix;
use crate::value::Value;

impl AnswerMatrix {
    /// A standalone freeze of this matrix's answers **minus** the excluded
    /// workers, in original log order — field-for-field identical to
    /// `AnswerMatrix::build(&log.without_workers(excluded))` on the log this
    /// matrix froze (the differential tests assert it). `excluded` must be
    /// sorted ascending. `O(n)`; runs on the refresher thread, never under
    /// the ingest lock.
    pub fn without_workers(&self, excluded: &[WorkerId]) -> AnswerMatrix {
        debug_assert!(excluded.windows(2).all(|w| w[0] < w[1]), "exclusion set must be sorted");
        // The payload is cell-major; `log_position` is the permutation back
        // to append order, which the rebuilt log must preserve.
        let mut ordered = vec![usize::MAX; self.len()];
        for k in 0..self.len() {
            ordered[self.log_position(k)] = k;
        }
        let mut log = AnswerLog::new(self.rows(), self.cols());
        for &k in &ordered {
            let a = self.to_answer(k);
            if excluded.binary_search(&a.worker).is_err() {
                log.push(a);
            }
        }
        AnswerMatrix::build(&log)
    }
}

/// A borrowed view of an [`AnswerMatrix`] that hides a sorted set of
/// excluded workers — the quarantine seam between the storage layer (which
/// keeps everything) and truth inference (which must not see quarantined
/// answers). See the module docs for the semantics.
#[derive(Debug, Clone, Copy)]
pub struct QuarantineView<'a> {
    matrix: &'a AnswerMatrix,
    excluded: &'a [WorkerId],
    /// Answers hidden by the exclusion (precomputed so `len` is `O(1)`).
    hidden: usize,
}

impl<'a> QuarantineView<'a> {
    /// View `matrix` minus `excluded` (must be sorted ascending; workers
    /// unknown to the matrix are tolerated and hide nothing).
    pub fn new(matrix: &'a AnswerMatrix, excluded: &'a [WorkerId]) -> QuarantineView<'a> {
        debug_assert!(excluded.windows(2).all(|w| w[0] < w[1]), "exclusion set must be sorted");
        let hidden = excluded
            .iter()
            .filter_map(|&w| matrix.worker_index(w))
            .map(|i| matrix.worker_answer_indices(i).len())
            .sum();
        QuarantineView { matrix, excluded, hidden }
    }

    /// The excluded worker set (sorted ascending).
    pub fn excluded(&self) -> &[WorkerId] {
        self.excluded
    }

    /// Whether a worker is hidden by this view.
    pub fn is_excluded(&self, worker: WorkerId) -> bool {
        self.excluded.binary_search(&worker).is_ok()
    }

    /// The underlying (unfiltered) matrix.
    pub fn matrix(&self) -> &AnswerMatrix {
        self.matrix
    }

    /// Materialise the view as a standalone freeze for EM
    /// ([`AnswerMatrix::without_workers`]).
    pub fn to_matrix(&self) -> AnswerMatrix {
        self.matrix.without_workers(self.excluded)
    }

    #[inline]
    fn visible(&self, payload_index: usize) -> bool {
        let w = self.matrix.worker_id(self.matrix.answer_workers()[payload_index] as usize);
        !self.is_excluded(w)
    }
}

impl AnswerQueries for QuarantineView<'_> {
    fn rows(&self) -> usize {
        self.matrix.rows()
    }
    fn cols(&self) -> usize {
        self.matrix.cols()
    }
    fn len(&self) -> usize {
        self.matrix.len() - self.hidden
    }
    fn count_for_cell(&self, cell: CellId) -> usize {
        self.matrix.cell_range(cell).filter(|&k| self.visible(k)).count()
    }
    fn has_answered(&self, worker: WorkerId, cell: CellId) -> bool {
        !self.is_excluded(worker) && self.matrix.has_answered(worker, cell)
    }
    fn cell_values(&self, cell: CellId) -> Vec<Value> {
        let mut out = Vec::new();
        self.for_each_cell_value(cell, &mut |v| out.push(*v));
        out
    }
    fn for_each_cell_value(&self, cell: CellId, f: &mut dyn FnMut(&Value)) {
        for a in self.matrix.cell_answers(cell) {
            if !self.is_excluded(a.worker) {
                f(&a.value);
            }
        }
    }
    fn continuous_column_values(&self, col: u32) -> Vec<f64> {
        let cols = self.matrix.answer_cols();
        (0..self.matrix.len())
            .filter(|&k| cols[k] == col && !self.matrix.is_categorical(k) && self.visible(k))
            .map(|k| self.matrix.answer_values()[k])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Answer;

    fn log() -> AnswerLog {
        let mut log = AnswerLog::new(3, 2);
        let push = |log: &mut AnswerLog, w: u32, r: u32, c: u32, v: Value| {
            log.push(Answer { worker: WorkerId(w), cell: CellId::new(r, c), value: v });
        };
        push(&mut log, 1, 0, 0, Value::Categorical(0));
        push(&mut log, 2, 0, 0, Value::Categorical(1));
        push(&mut log, 1, 0, 1, Value::Continuous(5.0));
        push(&mut log, 3, 1, 1, Value::Continuous(7.5));
        push(&mut log, 2, 2, 0, Value::Categorical(1));
        push(&mut log, 2, 2, 1, Value::Continuous(-1.0));
        log
    }

    /// Every `AnswerQueries` answer of the view must equal the same query
    /// against a log rebuilt without the excluded workers.
    fn assert_matches_rebuilt(log: &AnswerLog, excluded: &[WorkerId]) {
        let matrix = AnswerMatrix::build(log);
        let view = QuarantineView::new(&matrix, excluded);
        let rebuilt = log.without_workers(excluded);
        assert_eq!(view.len(), rebuilt.len());
        assert_eq!(view.is_empty(), rebuilt.is_empty());
        assert_eq!((view.rows(), view.cols()), (rebuilt.rows(), rebuilt.cols()));
        for cell in log.cells() {
            assert_eq!(view.count_for_cell(cell), rebuilt.count_for_cell(cell), "{cell:?}");
            assert_eq!(view.cell_values(cell), rebuilt.cell_values(cell), "{cell:?}");
            for w in log.workers() {
                assert_eq!(view.has_answered(w, cell), rebuilt.has_answered(w, cell));
            }
        }
        for col in 0..log.cols() as u32 {
            assert_eq!(view.continuous_column_values(col), rebuilt.continuous_column_values(col));
        }
        // The materialised freeze is exactly the rebuilt log's freeze.
        assert_eq!(view.to_matrix(), AnswerMatrix::build(&rebuilt));
    }

    #[test]
    fn view_matches_rebuilt_log_for_every_exclusion() {
        let log = log();
        let workers: Vec<WorkerId> = log.workers().collect();
        // Every subset of the three workers (sorted by construction).
        for mask in 0u32..(1 << workers.len()) {
            let excluded: Vec<WorkerId> = workers
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &w)| w)
                .collect();
            assert_matches_rebuilt(&log, &excluded);
        }
    }

    #[test]
    fn empty_exclusion_is_the_identity() {
        let log = log();
        let matrix = AnswerMatrix::build(&log);
        assert_eq!(matrix.without_workers(&[]), matrix);
        let view = QuarantineView::new(&matrix, &[]);
        assert_eq!(view.len(), matrix.len());
    }

    #[test]
    fn unknown_workers_hide_nothing() {
        let log = log();
        let matrix = AnswerMatrix::build(&log);
        let ghost = [WorkerId(999)];
        let view = QuarantineView::new(&matrix, &ghost);
        assert_eq!(view.len(), matrix.len());
        assert!(view.is_excluded(WorkerId(999)));
        assert_eq!(matrix.without_workers(&ghost), matrix);
    }
}
