//! Workers, cells and the indexed answer log.
//!
//! The answer set `A = {a^u_ij}` is the sole input of truth inference
//! (Definition 3) and the main input of task assignment (§5). Model code
//! iterates it three ways — all answers of a *cell* (E-step), all answers of
//! a *worker* (M-step quality update), and all answers of a worker on one
//! *row* (structure-aware gain, Eq. 7) — so the log maintains all three
//! indexes incrementally with `O(1)` appends.

use crate::schema::Schema;
use crate::value::Value;
use std::collections::BTreeMap;

/// Identifier of a worker `u ∈ U`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub u32);

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Identifier of a cell `c_ij` (row-major position in the table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Row (entity) index `i`.
    pub row: u32,
    /// Column (attribute) index `j`.
    pub col: u32,
}

impl CellId {
    /// Construct a cell id.
    #[inline]
    pub fn new(row: u32, col: u32) -> Self {
        CellId { row, col }
    }
}

/// One answer `a^u_ij`: worker `u` claims cell `c_ij` has `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Answer {
    /// The answering worker.
    pub worker: WorkerId,
    /// The answered cell.
    pub cell: CellId,
    /// The claimed value.
    pub value: Value,
}

/// The indexed answer set `A`.
///
/// Shape-aware: constructed for a fixed `rows × cols` table so the per-cell
/// index can be a dense vector rather than a hash map.
///
/// Equality is derived over shape, answers *and* the derived indexes; since
/// the indexes are a deterministic function of the push sequence, two logs
/// compare equal exactly when they hold the same answers in the same order
/// for the same shape.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerLog {
    rows: usize,
    cols: usize,
    answers: Vec<Answer>,
    /// `cell -> indices into answers` (dense, row-major).
    by_cell: Vec<Vec<u32>>,
    /// `worker -> indices into answers`. Ordered so [`AnswerLog::workers`]
    /// iterates in ascending id order — sweeps over workers must be
    /// deterministic run to run (hash-map iteration order is not).
    by_worker: BTreeMap<WorkerId, Vec<u32>>,
    /// `(worker, row) -> indices into answers` (structure-aware gain).
    by_worker_row: BTreeMap<(WorkerId, u32), Vec<u32>>,
}

impl AnswerLog {
    /// Create an empty log for a `rows × cols` table.
    pub fn new(rows: usize, cols: usize) -> Self {
        AnswerLog {
            rows,
            cols,
            answers: Vec::new(),
            by_cell: vec![Vec::new(); rows * cols],
            by_worker: BTreeMap::new(),
            by_worker_row: BTreeMap::new(),
        }
    }

    /// Number of rows `N`.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `M`.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of answers `|A|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// True if no answers have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    #[inline]
    fn cell_slot(&self, cell: CellId) -> usize {
        debug_assert!((cell.row as usize) < self.rows && (cell.col as usize) < self.cols);
        cell.row as usize * self.cols + cell.col as usize
    }

    /// Append one answer. Panics if the cell is out of the table's shape.
    pub fn push(&mut self, answer: Answer) {
        assert!(
            (answer.cell.row as usize) < self.rows && (answer.cell.col as usize) < self.cols,
            "answer for cell outside the table shape"
        );
        let idx = self.answers.len() as u32;
        let slot = self.cell_slot(answer.cell);
        self.answers.push(answer);
        self.by_cell[slot].push(idx);
        self.by_worker.entry(answer.worker).or_default().push(idx);
        self.by_worker_row.entry((answer.worker, answer.cell.row)).or_default().push(idx);
    }

    /// Validate every answer against a schema (datatype + domain), returning
    /// the index of the first offending answer if any.
    pub fn validate(&self, schema: &Schema) -> Result<(), usize> {
        assert_eq!(schema.num_columns(), self.cols, "schema shape mismatch");
        for (i, a) in self.answers.iter().enumerate() {
            if !schema.column_type(a.cell.col as usize).accepts(&a.value) {
                return Err(i);
            }
        }
        Ok(())
    }

    /// All answers, in insertion order.
    #[inline]
    pub fn all(&self) -> &[Answer] {
        &self.answers
    }

    /// Answers for one cell (`A_ij`).
    pub fn for_cell(&self, cell: CellId) -> impl Iterator<Item = &Answer> + '_ {
        self.by_cell[self.cell_slot(cell)].iter().map(move |&i| &self.answers[i as usize])
    }

    /// Number of answers for one cell.
    pub fn count_for_cell(&self, cell: CellId) -> usize {
        self.by_cell[self.cell_slot(cell)].len()
    }

    /// Answers by one worker (`a^u_**`).
    pub fn for_worker(&self, worker: WorkerId) -> impl Iterator<Item = &Answer> + '_ {
        self.by_worker
            .get(&worker)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&i| &self.answers[i as usize])
    }

    /// Answers by one worker on one row (`L^u_i` in Eq. 7).
    pub fn for_worker_row(&self, worker: WorkerId, row: u32) -> impl Iterator<Item = &Answer> + '_ {
        self.by_worker_row
            .get(&(worker, row))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&i| &self.answers[i as usize])
    }

    /// True if `worker` already answered `cell` (platforms forbid repeats).
    pub fn has_answered(&self, worker: WorkerId, cell: CellId) -> bool {
        self.for_cell(cell).any(|a| a.worker == worker)
    }

    /// The distinct workers that have contributed at least one answer, in
    /// ascending id order (deterministic).
    pub fn workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.by_worker.keys().copied()
    }

    /// Freeze this log into its columnar sweep-side form.
    pub fn to_matrix(&self) -> crate::matrix::AnswerMatrix {
        crate::matrix::AnswerMatrix::build(self)
    }

    /// Number of distinct workers.
    pub fn num_workers(&self) -> usize {
        self.by_worker.len()
    }

    /// Average number of answers per cell — the x-axis of Fig. 2/5.
    pub fn avg_answers_per_task(&self) -> f64 {
        if self.rows * self.cols == 0 {
            return 0.0;
        }
        self.answers.len() as f64 / (self.rows * self.cols) as f64
    }

    /// Iterate over all cells of the table in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        let cols = self.cols;
        (0..self.rows * self.cols).map(move |s| CellId::new((s / cols) as u32, (s % cols) as u32))
    }

    /// A copy of the log without the given workers' answers — the curation
    /// step after diagnostics flag spammers (re-run inference on the rest).
    pub fn without_workers(&self, excluded: &[WorkerId]) -> AnswerLog {
        let mut out = AnswerLog::new(self.rows, self.cols);
        for a in &self.answers {
            if !excluded.contains(&a.worker) {
                out.push(*a);
            }
        }
        out
    }
}

/// The point queries assignment policies make against the answer history,
/// abstracted over the *representation*: the mutable [`AnswerLog`] answers
/// them from its incremental indexes, the frozen
/// [`crate::AnswerMatrix`] from its CSR views. Library callers (the
/// simulator, offline experiments) pass the live log; the service layer
/// passes the snapshot's freeze, so a published snapshot never needs an
/// `O(n)`-to-build indexed log at all.
pub trait AnswerQueries {
    /// Number of table rows `N`.
    fn rows(&self) -> usize;
    /// Number of table columns `M`.
    fn cols(&self) -> usize;
    /// Total number of answers `|A|`.
    fn len(&self) -> usize;
    /// True when no answers have been recorded.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Number of answers on one cell.
    fn count_for_cell(&self, cell: CellId) -> usize;
    /// True if `worker` already answered `cell` (platforms forbid repeats).
    fn has_answered(&self, worker: WorkerId, cell: CellId) -> bool;
    /// The values claimed for one cell, in insertion order.
    fn cell_values(&self, cell: CellId) -> Vec<Value>;
    /// Visit one cell's values in insertion order without materialising
    /// them — what per-candidate scoring loops (vote entropy, CDAS
    /// termination) call once per cell on the assignment hot path.
    fn for_each_cell_value(&self, cell: CellId, f: &mut dyn FnMut(&Value));
    /// Every continuous value claimed anywhere in one column (the raw
    /// answer spread CDAS-style termination scales against).
    fn continuous_column_values(&self, col: u32) -> Vec<f64>;
}

impl AnswerQueries for AnswerLog {
    fn rows(&self) -> usize {
        AnswerLog::rows(self)
    }
    fn cols(&self) -> usize {
        AnswerLog::cols(self)
    }
    fn len(&self) -> usize {
        AnswerLog::len(self)
    }
    fn count_for_cell(&self, cell: CellId) -> usize {
        AnswerLog::count_for_cell(self, cell)
    }
    fn has_answered(&self, worker: WorkerId, cell: CellId) -> bool {
        AnswerLog::has_answered(self, worker, cell)
    }
    fn cell_values(&self, cell: CellId) -> Vec<Value> {
        self.for_cell(cell).map(|a| a.value).collect()
    }
    fn for_each_cell_value(&self, cell: CellId, f: &mut dyn FnMut(&Value)) {
        for a in self.for_cell(cell) {
            f(&a.value);
        }
    }
    fn continuous_column_values(&self, col: u32) -> Vec<f64> {
        self.all()
            .iter()
            .filter(|a| a.cell.col == col)
            .filter_map(|a| match a.value {
                Value::Continuous(x) => Some(x),
                Value::Categorical(_) => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn log_with_answers() -> AnswerLog {
        let mut log = AnswerLog::new(3, 2);
        log.push(Answer {
            worker: WorkerId(1),
            cell: CellId::new(0, 0),
            value: Value::Categorical(0),
        });
        log.push(Answer {
            worker: WorkerId(1),
            cell: CellId::new(0, 1),
            value: Value::Continuous(5.0),
        });
        log.push(Answer {
            worker: WorkerId(2),
            cell: CellId::new(0, 0),
            value: Value::Categorical(1),
        });
        log.push(Answer {
            worker: WorkerId(1),
            cell: CellId::new(2, 1),
            value: Value::Continuous(7.0),
        });
        log
    }

    #[test]
    fn indexes_stay_consistent() {
        let log = log_with_answers();
        assert_eq!(log.len(), 4);
        assert_eq!(log.count_for_cell(CellId::new(0, 0)), 2);
        assert_eq!(log.count_for_cell(CellId::new(1, 0)), 0);
        assert_eq!(log.for_worker(WorkerId(1)).count(), 3);
        assert_eq!(log.for_worker(WorkerId(2)).count(), 1);
        assert_eq!(log.for_worker(WorkerId(9)).count(), 0);
        assert_eq!(log.for_worker_row(WorkerId(1), 0).count(), 2);
        assert_eq!(log.for_worker_row(WorkerId(1), 2).count(), 1);
        assert_eq!(log.num_workers(), 2);
    }

    #[test]
    fn has_answered_and_average() {
        let log = log_with_answers();
        assert!(log.has_answered(WorkerId(1), CellId::new(0, 0)));
        assert!(!log.has_answered(WorkerId(2), CellId::new(0, 1)));
        assert!((log.avg_answers_per_task() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn cells_enumeration_is_row_major() {
        let log = AnswerLog::new(2, 2);
        let cells: Vec<CellId> = log.cells().collect();
        assert_eq!(
            cells,
            vec![CellId::new(0, 0), CellId::new(0, 1), CellId::new(1, 0), CellId::new(1, 1)]
        );
    }

    #[test]
    #[should_panic(expected = "outside the table shape")]
    fn push_rejects_out_of_shape() {
        let mut log = AnswerLog::new(1, 1);
        log.push(Answer {
            worker: WorkerId(0),
            cell: CellId::new(5, 0),
            value: Value::Categorical(0),
        });
    }

    #[test]
    fn validate_catches_type_mismatch() {
        let schema = Schema::new(
            "t",
            "k",
            vec![
                Column::new("c", ColumnType::categorical_with_cardinality(2)),
                Column::new("x", ColumnType::Continuous { min: 0.0, max: 10.0 }),
            ],
        );
        let log = log_with_answers();
        assert_eq!(log.validate(&schema), Ok(()));

        let mut bad = AnswerLog::new(3, 2);
        bad.push(Answer {
            worker: WorkerId(1),
            cell: CellId::new(0, 0),
            value: Value::Continuous(3.0), // column 0 is categorical
        });
        assert_eq!(bad.validate(&schema), Err(0));
    }

    #[test]
    fn without_workers_drops_only_their_answers() {
        let log = log_with_answers();
        let all_workers: Vec<WorkerId> = log.workers().collect();
        let victim = all_workers[0];
        let filtered = log.without_workers(&[victim]);
        assert_eq!(filtered.rows(), log.rows());
        assert_eq!(filtered.cols(), log.cols());
        assert_eq!(filtered.len(), log.len() - log.for_worker(victim).count());
        assert!(filtered.for_worker(victim).next().is_none());
        // Excluding nobody is the identity on contents.
        let same = log.without_workers(&[]);
        assert_eq!(same.len(), log.len());
        // Excluding everyone empties the log but keeps the shape.
        let none = log.without_workers(&all_workers);
        assert!(none.is_empty());
        assert_eq!(none.rows(), log.rows());
    }
}
