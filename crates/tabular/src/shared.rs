//! Shareable, append-only views of the answer log: [`LogSlice`] (an
//! epoch-tagged tail handle) and [`SharedLog`] (a structurally-shared
//! immutable answer sequence).
//!
//! The online loop (paper §5.1) wants answer *collection* to keep flowing
//! while truth inference refreshes in the background. The mutable
//! [`AnswerLog`] lives behind the collection path's lock, so everything a
//! background refresher takes from it must be cheap to extract:
//!
//! * [`AnswerLog::slice_since`] hands out a [`LogSlice`] — the answers
//!   appended since a given epoch, copied once into an `Arc` slice. Taking
//!   it costs `O(Δ)`, independent of the log length, and the handle can
//!   then be shared freely (merged into a freeze, appended to a
//!   [`SharedLog`], framed into a store snapshot delta) without touching
//!   the lock again.
//! * [`SharedLog`] is the publish-side dual: an immutable sequence built
//!   from those slices. Internally it is a list of `Arc`'d chunks, so
//!   *cloning is `O(chunks)`* (the chunk list is copied, the answers are
//!   shared) and *appending a slice is amortised `O(Δ)`* — a published
//!   snapshot of the log no longer deep-copies `n` answers per publish.
//!
//! Chunks are coalesced geometrically (a new chunk absorbs trailing chunks
//! until every survivor is more than twice its successor), which bounds
//! the chunk count at `O(log n)` and keeps per-answer append cost
//! amortised `O(log n)` worst case — in the steady publish loop the common
//! case is a single memcpy of the delta.

use crate::answer::{Answer, AnswerLog};
use std::sync::Arc;

/// An epoch-tagged slice of an answer log's tail: the answers at log
/// positions `base .. base + len`, detached from the log behind one `Arc`.
///
/// This is the unit a background refresher extracts under the ingest lock
/// (`O(Δ)`) and then owns outside it: the same handle feeds
/// [`crate::AnswerMatrix::merge_delta`], [`SharedLog::append`], and the
/// store layer's incremental snapshot deltas.
#[derive(Debug, Clone)]
pub struct LogSlice {
    base: usize,
    answers: Arc<[Answer]>,
}

impl LogSlice {
    /// Wrap `answers` as the log tail starting at position `base`.
    pub fn new(base: usize, answers: impl Into<Arc<[Answer]>>) -> LogSlice {
        LogSlice { base, answers: answers.into() }
    }

    /// First log position this slice covers.
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    /// One past the last log position this slice covers.
    #[inline]
    pub fn end(&self) -> usize {
        self.base + self.answers.len()
    }

    /// Number of answers in the slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// True when the slice holds no answers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// The answers, in log order.
    #[inline]
    pub fn answers(&self) -> &[Answer] {
        &self.answers
    }

    /// The shared chunk behind this slice (an `Arc` clone, no copy).
    #[inline]
    pub fn chunk(&self) -> Arc<[Answer]> {
        Arc::clone(&self.answers)
    }
}

impl AnswerLog {
    /// Copy the tail `self[epoch..]` into a shareable [`LogSlice`]. `O(Δ)`
    /// where `Δ = len − epoch` — this is the only per-publish work a
    /// refresher needs to do while holding the ingest lock. Panics if
    /// `epoch` exceeds the log length (that slice never existed).
    pub fn slice_since(&self, epoch: usize) -> LogSlice {
        assert!(epoch <= self.len(), "slice_since({epoch}) on a log of {} answers", self.len());
        LogSlice::new(epoch, &self.all()[epoch..])
    }
}

/// An immutable, structurally-shared answer sequence in arrival order.
///
/// Cloning copies only the chunk list (`O(log n)` `Arc` bumps); appending a
/// [`LogSlice`] adds one chunk and coalesces trailing chunks no larger than
/// the new one. Unlike [`AnswerLog`] it maintains **no indexes** — point
/// queries belong to the frozen [`crate::AnswerMatrix`]; this type exists
/// for the arrival-order consumers (log dumps, store snapshot deltas,
/// offline replay).
#[derive(Debug, Clone)]
pub struct SharedLog {
    rows: usize,
    cols: usize,
    len: usize,
    /// Chunk start positions (parallel to `chunks`), for `O(log chunks)`
    /// point lookup.
    starts: Vec<usize>,
    chunks: Vec<Arc<[Answer]>>,
}

impl SharedLog {
    /// An empty shared log for a `rows × cols` table.
    pub fn new(rows: usize, cols: usize) -> SharedLog {
        SharedLog { rows, cols, len: 0, starts: Vec::new(), chunks: Vec::new() }
    }

    /// Snapshot an [`AnswerLog`] into a single-chunk shared log (`O(n)` —
    /// the one-time conversion at boot/recovery, not the publish path).
    pub fn from_log(log: &AnswerLog) -> SharedLog {
        let mut out = SharedLog::new(log.rows(), log.cols());
        if !log.is_empty() {
            out.append(&log.slice_since(0));
        }
        out
    }

    /// Number of table rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of table columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total answers.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no answers are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of internal chunks (`O(log n)` by the coalescing invariant —
    /// exposed for tests and diagnostics).
    #[inline]
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Append a slice taken at this log's current epoch. Panics if the
    /// slice's base does not equal [`Self::len`] — that slice belongs to a
    /// different prefix and splicing it in would reorder history.
    pub fn append(&mut self, slice: &LogSlice) {
        assert_eq!(
            slice.base(),
            self.len,
            "slice base does not match the shared log epoch (stale or future slice)"
        );
        if slice.is_empty() {
            return;
        }
        let mut tail = slice.chunk();
        // Geometric coalescing: fold trailing chunks into the incoming one
        // until every remaining chunk is more than twice its successor.
        // Sizes then at least double going left, so at most ⌈log₂ n⌉ + 1
        // chunks ever exist, and each answer is re-copied only into
        // ever-doubling chunks (amortised O(log n) per answer, one memcpy
        // of the delta in the common case).
        while let Some(last) = self.chunks.last() {
            if last.len() > 2 * tail.len() {
                break;
            }
            let last = self.chunks.pop().expect("non-empty");
            self.starts.pop();
            let mut merged = Vec::with_capacity(last.len() + tail.len());
            merged.extend_from_slice(&last);
            merged.extend_from_slice(&tail);
            tail = merged.into();
        }
        self.starts.push(self.len + slice.len() - tail.len());
        self.chunks.push(tail);
        self.len += slice.len();
    }

    /// The answer at log position `i`.
    pub fn get(&self, i: usize) -> &Answer {
        assert!(i < self.len, "position {i} out of a {}-answer shared log", self.len);
        let c = match self.starts.binary_search(&i) {
            Ok(c) => c,
            Err(c) => c - 1,
        };
        &self.chunks[c][i - self.starts[c]]
    }

    /// Iterate all answers in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &Answer> + '_ {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Iterate the answers at log positions `from .. to`.
    pub fn iter_range(&self, from: usize, to: usize) -> impl Iterator<Item = &Answer> + '_ {
        assert!(from <= to && to <= self.len, "range {from}..{to} out of {} answers", self.len);
        self.iter().skip(from).take(to - from)
    }

    /// Copy the answers at log positions `from .. to` (what an incremental
    /// store snapshot frames: the answers since the last snapshot).
    pub fn range_vec(&self, from: usize, to: usize) -> Vec<Answer> {
        self.iter_range(from, to).copied().collect()
    }

    /// Copy every answer in arrival order.
    pub fn to_vec(&self) -> Vec<Answer> {
        self.iter().copied().collect()
    }

    /// Rebuild the indexed mutable form (`O(n)` — for offline replay and
    /// full store snapshots, never the publish path).
    pub fn to_log(&self) -> AnswerLog {
        let mut log = AnswerLog::new(self.rows, self.cols);
        for &a in self.iter() {
            log.push(a);
        }
        log
    }
}

impl PartialEq for SharedLog {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.len == other.len
            && self.iter().eq(other.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::{CellId, WorkerId};
    use crate::value::Value;

    fn answer(i: u32) -> Answer {
        Answer {
            worker: WorkerId(i % 7),
            cell: CellId::new(i % 5, i % 3),
            value: if i % 2 == 0 {
                Value::Categorical(i % 4)
            } else {
                Value::Continuous(i as f64 / 3.0)
            },
        }
    }

    fn filled_log(n: usize) -> AnswerLog {
        let mut log = AnswerLog::new(5, 3);
        for i in 0..n {
            log.push(answer(i as u32));
        }
        log
    }

    #[test]
    fn slice_since_is_the_epoch_tagged_tail() {
        let log = filled_log(10);
        let slice = log.slice_since(6);
        assert_eq!(slice.base(), 6);
        assert_eq!(slice.end(), 10);
        assert_eq!(slice.len(), 4);
        assert_eq!(slice.answers(), &log.all()[6..]);
        assert!(log.slice_since(10).is_empty());
    }

    #[test]
    #[should_panic(expected = "slice_since")]
    fn slice_since_rejects_future_epochs() {
        filled_log(3).slice_since(4);
    }

    #[test]
    fn shared_log_tracks_appends_in_order() {
        let log = filled_log(23);
        let mut shared = SharedLog::new(5, 3);
        let mut at = 0usize;
        for step in [1usize, 4, 2, 9, 7] {
            shared.append(&LogSlice::new(at, &log.all()[at..at + step]));
            at += step;
        }
        assert_eq!(shared.len(), 23);
        assert_eq!(shared.to_vec(), log.all());
        for i in 0..23 {
            assert_eq!(shared.get(i), &log.all()[i]);
        }
        assert_eq!(shared.range_vec(5, 14), &log.all()[5..14]);
        assert_eq!(shared.to_log(), log);
    }

    #[test]
    fn coalescing_bounds_chunk_count() {
        let log = filled_log(512);
        let mut shared = SharedLog::new(5, 3);
        for i in 0..512 {
            shared.append(&LogSlice::new(i, &log.all()[i..i + 1]));
        }
        assert_eq!(shared.len(), 512);
        assert!(
            shared.chunk_count() <= 10,
            "512 single-answer appends left {} chunks",
            shared.chunk_count()
        );
        // Chunk sizes at least double going left (the coalescing invariant).
        let sizes: Vec<usize> = shared.chunks.iter().map(|c| c.len()).collect();
        for w in sizes.windows(2) {
            assert!(w[0] > 2 * w[1], "chunk sizes must at least double leftward: {sizes:?}");
        }
        assert_eq!(shared.to_vec(), log.all());
    }

    #[test]
    fn coalescing_bounds_chunks_under_decreasing_appends() {
        // The adversarial pattern for a weaker (strictly-decreasing-only)
        // invariant: ever-smaller slices. The geometric rule must still keep
        // the chunk count logarithmic in the total length.
        let mut shared = SharedLog::new(5, 3);
        let mut at = 0usize;
        for step in (1..=31usize).rev() {
            let answers: Vec<Answer> = (0..step).map(|k| answer((at + k) as u32)).collect();
            shared.append(&LogSlice::new(at, answers));
            at += step;
        }
        assert_eq!(shared.len(), 496);
        assert!(
            shared.chunk_count() <= 10,
            "decreasing appends left {} chunks over {} answers",
            shared.chunk_count(),
            shared.len()
        );
    }

    #[test]
    fn clone_shares_chunks_structurally() {
        let log = filled_log(64);
        let mut shared = SharedLog::from_log(&log);
        let published = shared.clone();
        // Appending to the original leaves the clone at its epoch.
        let mut grown = filled_log(64);
        grown.push(answer(99));
        shared.append(&LogSlice::new(64, &grown.all()[64..]));
        assert_eq!(shared.len(), 65);
        assert_eq!(published.len(), 64);
        assert_eq!(published.to_vec(), log.all());
        // The shared prefix chunks are the same allocation, not copies.
        assert!(Arc::ptr_eq(&published.chunks[0], &shared.chunks[0]));
    }

    #[test]
    #[should_panic(expected = "does not match the shared log epoch")]
    fn append_rejects_mismatched_slices() {
        let log = filled_log(8);
        let mut shared = SharedLog::new(5, 3);
        shared.append(&log.slice_since(4)); // base 4 on an empty shared log
    }

    #[test]
    fn equality_is_content_based() {
        let log = filled_log(20);
        let one = SharedLog::from_log(&log);
        let mut many = SharedLog::new(5, 3);
        for i in 0..20 {
            many.append(&LogSlice::new(i, &log.all()[i..i + 1]));
        }
        assert_eq!(one, many);
        assert_ne!(one, SharedLog::from_log(&filled_log(19)));
    }
}
