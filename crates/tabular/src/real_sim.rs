//! Simulated stand-ins for the paper's three real AMT datasets.
//!
//! The original Celebrity/Restaurant/Emotion answer sets were collected from
//! live Amazon Mechanical Turk workers and are not redistributable; per the
//! substitution policy in `DESIGN.md` we synthesise datasets with the same
//! *shape* (rows, columns, datatypes, answers-per-task — paper Table 6), a
//! long-tailed worker-quality population, a row-familiarity effect (a worker
//! who does not recognise an entity errs across the whole row, §1), and the
//! inter-attribute error correlations the paper measured (§6.4.3: Restaurant
//! StartTarget/EndTarget errors are strongly positively correlated).
//!
//! Everything the evaluation compares — method rankings, convergence speed,
//! calibration — depends on these distributional properties, not on the
//! identities of actual celebrities or restaurants.

#![allow(clippy::needless_range_loop)] // index loops here walk several parallel arrays
use crate::answer::{Answer, AnswerLog, CellId, WorkerId};
use crate::dataset::{Dataset, WorkerProfile};
use crate::generator::{
    draw_population, lognormal, noise_scale, GeneratorConfig, RowFamiliarity, WorkerQualityConfig,
};
use crate::schema::{Column, ColumnType, Schema};
use crate::value::Value;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;
use tcrowd_stat::sample::{sample_std_normal, sample_weighted};
use tcrowd_stat::special::erf;

/// Full specification of one simulated real-world dataset.
struct RealSpec {
    name: &'static str,
    key: &'static str,
    columns: Vec<Column>,
    rows: usize,
    answers_per_task: usize,
    num_workers: usize,
    quality: WorkerQualityConfig,
    familiarity: Option<RowFamiliarity>,
    /// Groups of *continuous* column indices whose worker errors share a
    /// latent component with the given correlation.
    corr_groups: Vec<(Vec<usize>, f64)>,
    epsilon: f64,
}

fn build(spec: &RealSpec, seed: u64) -> Dataset {
    let schema = Schema::new(spec.name, spec.key, spec.columns.clone());
    let m = schema.num_columns();
    // Reuse the synthetic generator's population machinery.
    let cfg = GeneratorConfig {
        rows: spec.rows,
        columns: m,
        num_workers: spec.num_workers,
        answers_per_task: spec.answers_per_task,
        quality: spec.quality,
        ..Default::default()
    };
    let mut state = draw_population(&cfg, seed);

    // Ground truth: uniform in each column's domain.
    let truth: Vec<Vec<Value>> = (0..spec.rows)
        .map(|_| {
            (0..m)
                .map(|j| match schema.column_type(j) {
                    ColumnType::Categorical { labels } => {
                        Value::Categorical(state.rng.gen_range(0..labels.len() as u32))
                    }
                    ColumnType::Continuous { min, max } => {
                        Value::Continuous(state.rng.gen_range(*min..*max))
                    }
                })
                .collect()
        })
        .collect();

    // Column index -> (group latent index, rho), if the column is in a group.
    let mut group_of: HashMap<usize, (usize, f64)> = HashMap::new();
    for (g, (cols, rho)) in spec.corr_groups.iter().enumerate() {
        for &j in cols {
            assert!(
                !schema.column_type(j).is_categorical(),
                "correlation groups are for continuous columns"
            );
            group_of.insert(j, (g, *rho));
        }
    }

    let worker_ids: Vec<WorkerId> = (0..spec.num_workers as u32).map(WorkerId).collect();
    let mut answers = AnswerLog::new(spec.rows, m);
    for i in 0..spec.rows {
        let mut pool = worker_ids.clone();
        pool.shuffle(&mut state.rng);
        for &worker in pool.iter().take(spec.answers_per_task) {
            let phi = state.phi[worker.0 as usize];
            let fam = match spec.familiarity {
                Some(rf) if state.rng.gen_range(0.0..1.0) < rf.p_unfamiliar => rf.difficulty_factor,
                _ => 1.0,
            };
            // One latent normal per correlation group per (worker, row).
            let latents: Vec<f64> =
                (0..spec.corr_groups.len()).map(|_| sample_std_normal(&mut state.rng)).collect();
            for j in 0..m {
                let v = state.alpha[i] * state.beta[j] * phi * fam;
                let value = match (&truth[i][j], schema.column_type(j)) {
                    (Value::Continuous(t), ColumnType::Continuous { min, max }) => {
                        let s = noise_scale(*min, *max);
                        let z = match group_of.get(&j) {
                            Some(&(g, rho)) => {
                                rho.sqrt() * latents[g]
                                    + (1.0 - rho).sqrt() * sample_std_normal(&mut state.rng)
                            }
                            None => sample_std_normal(&mut state.rng),
                        };
                        Value::Continuous(t + s * v.sqrt() * z)
                    }
                    (Value::Categorical(t), ColumnType::Categorical { labels }) => {
                        let l = labels.len() as u32;
                        let q = erf(spec.epsilon / (2.0 * v).sqrt());
                        if l == 1 || state.rng.gen_range(0.0..1.0) < q {
                            Value::Categorical(*t)
                        } else {
                            let w: Vec<f64> =
                                (0..l).map(|z| if z == *t { 0.0 } else { 1.0 }).collect();
                            Value::Categorical(sample_weighted(&mut state.rng, &w) as u32)
                        }
                    }
                    _ => unreachable!("truth/type mismatch"),
                };
                answers.push(Answer { worker, cell: CellId::new(i as u32, j as u32), value });
            }
        }
    }

    let worker_truth =
        worker_ids.iter().map(|&w| (w, WorkerProfile { phi: state.phi[w.0 as usize] })).collect();
    let dataset = Dataset { schema, truth, answers, worker_truth };
    debug_assert_eq!(dataset.validate(), Ok(()));
    dataset
}

/// Simulated **Celebrity** dataset: 174 rows × 7 columns, 5 answers per task
/// (paper Table 6). Name/Nationality/Ethnicity categorical; Age, Height,
/// Notability and Facial expression continuous. A pronounced row-familiarity
/// effect models "does the worker recognise this celebrity at all".
pub fn celebrity(seed: u64) -> Dataset {
    build(
        &RealSpec {
            name: "Celebrity",
            key: "Picture",
            columns: vec![
                Column::new("Name", ColumnType::categorical_with_cardinality(50)),
                Column::new("Nationality", ColumnType::categorical_with_cardinality(20)),
                Column::new("Ethnicity", ColumnType::categorical_with_cardinality(8)),
                Column::new("Age", ColumnType::Continuous { min: 18.0, max: 90.0 }),
                Column::new("Height", ColumnType::Continuous { min: 150.0, max: 200.0 }),
                Column::new("Notability", ColumnType::Continuous { min: 0.0, max: 10.0 }),
                Column::new("Facial", ColumnType::Continuous { min: 0.0, max: 10.0 }),
            ],
            rows: 174,
            answers_per_task: 5,
            num_workers: 109,
            quality: WorkerQualityConfig::default(),
            familiarity: Some(RowFamiliarity { p_unfamiliar: 0.20, difficulty_factor: 15.0 }),
            corr_groups: vec![],
            epsilon: 0.5,
        },
        seed,
    )
}

/// Simulated **Restaurant** dataset: 203 rows × 5 columns, 4 answers per task
/// (paper Table 6). Aspect/Attribute/Sentiment categorical; StartTarget and
/// EndTarget continuous with strongly correlated worker errors (ρ = 0.6),
/// reproducing the paper's Fig. 6 observation.
pub fn restaurant(seed: u64) -> Dataset {
    build(
        &RealSpec {
            name: "Restaurant",
            key: "Review",
            columns: vec![
                Column::new("Aspect", ColumnType::categorical_with_cardinality(5)),
                Column::new("Attribute", ColumnType::categorical_with_cardinality(6)),
                Column::new("Sentiment", ColumnType::categorical_with_cardinality(3)),
                Column::new("StartTarget", ColumnType::Continuous { min: 0.0, max: 300.0 }),
                Column::new("EndTarget", ColumnType::Continuous { min: 0.0, max: 300.0 }),
            ],
            rows: 203,
            answers_per_task: 4,
            num_workers: 96,
            quality: WorkerQualityConfig::default(),
            familiarity: Some(RowFamiliarity { p_unfamiliar: 0.15, difficulty_factor: 10.0 }),
            corr_groups: vec![(vec![3, 4], 0.6)],
            epsilon: 0.5,
        },
        seed,
    )
}

/// Simulated **Emotion** dataset: 100 rows × 7 columns, all continuous, 10
/// answers per task (paper Table 6). Six emotion scores in `[0, 100]` and one
/// overall valence in `[-100, 100]`; emotion-score errors share a mild common
/// component (a worker's overall reading of the text).
pub fn emotion(seed: u64) -> Dataset {
    build(
        &RealSpec {
            name: "Emotion",
            key: "Text",
            columns: vec![
                Column::new("Anger", ColumnType::Continuous { min: 0.0, max: 100.0 }),
                Column::new("Disgust", ColumnType::Continuous { min: 0.0, max: 100.0 }),
                Column::new("Fear", ColumnType::Continuous { min: 0.0, max: 100.0 }),
                Column::new("Joy", ColumnType::Continuous { min: 0.0, max: 100.0 }),
                Column::new("Sadness", ColumnType::Continuous { min: 0.0, max: 100.0 }),
                Column::new("Surprise", ColumnType::Continuous { min: 0.0, max: 100.0 }),
                Column::new("Valence", ColumnType::Continuous { min: -100.0, max: 100.0 }),
            ],
            rows: 100,
            answers_per_task: 10,
            num_workers: 38,
            quality: WorkerQualityConfig {
                // Emotion scoring is noisier and more subjective (paper
                // reports higher MNAD here than elsewhere).
                median_phi: 0.35,
                sigma_ln_phi: 0.6,
                spammer_fraction: 0.08,
                spammer_factor: 12.0,
            },
            familiarity: Some(RowFamiliarity { p_unfamiliar: 0.10, difficulty_factor: 5.0 }),
            corr_groups: vec![(vec![0, 1, 2, 3, 4, 5], 0.3)],
            epsilon: 0.5,
        },
        seed,
    )
}

/// A worker pool used by end-to-end assignment experiments on the simulated
/// real datasets: the same long-tail population as the truth data generator.
pub fn long_tail_phis(num_workers: usize, quality: &WorkerQualityConfig, seed: u64) -> Vec<f64> {
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_workers)
        .map(|_| {
            let mut p = lognormal(&mut rng, quality.median_phi, quality.sigma_ln_phi);
            if rng.gen_range(0.0..1.0) < quality.spammer_fraction {
                p *= quality.spammer_factor;
            }
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_stat::describe::pearson;

    #[test]
    fn celebrity_matches_table6() {
        let d = celebrity(1);
        let s = d.statistics();
        assert_eq!(s.rows, 174);
        assert_eq!(s.columns, 7);
        assert_eq!(s.cells, 1218);
        assert!((s.answers_per_task - 5.0).abs() < 1e-12);
        assert_eq!(s.categorical_columns, 3);
        assert_eq!(s.continuous_columns, 4);
    }

    #[test]
    fn restaurant_matches_table6() {
        let d = restaurant(1);
        let s = d.statistics();
        assert_eq!(s.rows, 203);
        assert_eq!(s.columns, 5);
        assert_eq!(s.cells, 1015);
        assert!((s.answers_per_task - 4.0).abs() < 1e-12);
        assert_eq!(s.categorical_columns, 3);
    }

    #[test]
    fn emotion_matches_table6() {
        let d = emotion(1);
        let s = d.statistics();
        assert_eq!(s.rows, 100);
        assert_eq!(s.columns, 7);
        assert_eq!(s.cells, 700);
        assert!((s.answers_per_task - 10.0).abs() < 1e-12);
        assert_eq!(s.categorical_columns, 0);
    }

    #[test]
    fn restaurant_start_end_errors_are_correlated() {
        // Reproduces the paper's Fig. 6 (right): per-answer errors on
        // StartTarget and EndTarget by the same worker on the same row are
        // positively correlated.
        let d = restaurant(3);
        let (mut es, mut ee) = (Vec::new(), Vec::new());
        for w in d.answers.workers().collect::<Vec<_>>() {
            for i in 0..d.rows() as u32 {
                let row: Vec<&Answer> = d.answers.for_worker_row(w, i).collect();
                if row.is_empty() {
                    continue;
                }
                let find = |col: u32| {
                    row.iter().find(|a| a.cell.col == col).map(|a| {
                        a.value.expect_continuous() - d.truth_of(a.cell).expect_continuous()
                    })
                };
                if let (Some(a), Some(b)) = (find(3), find(4)) {
                    es.push(a);
                    ee.push(b);
                }
            }
        }
        let r = pearson(&es, &ee);
        assert!(r > 0.3, "StartTarget/EndTarget error correlation = {r}");
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = celebrity(9);
        let b = celebrity(9);
        assert_eq!(a.answers.all(), b.answers.all());
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn celebrity_has_row_level_error_correlation() {
        // Categorical errors of one worker across columns of the same row
        // should co-occur more than independently (the familiarity effect).
        let d = celebrity(5);
        let (mut e_name, mut e_nat) = (Vec::new(), Vec::new());
        for w in d.answers.workers().collect::<Vec<_>>() {
            for i in 0..d.rows() as u32 {
                let row: Vec<&Answer> = d.answers.for_worker_row(w, i).collect();
                if row.is_empty() {
                    continue;
                }
                let err = |col: u32| {
                    row.iter().find(|a| a.cell.col == col).map(|a| {
                        (a.value.expect_categorical() != d.truth_of(a.cell).expect_categorical())
                            as i32 as f64
                    })
                };
                if let (Some(a), Some(b)) = (err(0), err(1)) {
                    e_name.push(a);
                    e_nat.push(b);
                }
            }
        }
        let r = pearson(&e_name, &e_nat);
        assert!(r > 0.05, "Name/Nationality error correlation = {r}");
    }

    #[test]
    fn long_tail_phis_are_long_tailed() {
        let phis = long_tail_phis(500, &WorkerQualityConfig::default(), 2);
        assert_eq!(phis.len(), 500);
        let median = tcrowd_stat::describe::median(&phis);
        let mean = tcrowd_stat::describe::mean(&phis);
        assert!(mean > median, "long tail: mean {mean} > median {median}");
        assert!(phis.iter().all(|p| *p > 0.0));
    }
}
