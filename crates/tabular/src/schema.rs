//! Schemas: named columns of categorical or continuous type.
//!
//! Matches the paper's Definition 1: a table has a key (entity) attribute and
//! `M` value columns, each categorical (finite unordered label set `L_j`) or
//! continuous (a real interval used for generation and priors).

use crate::value::Value;

/// The datatype and domain of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnType {
    /// A categorical attribute with a finite unordered label set `L_j`.
    Categorical {
        /// Human-readable labels; `labels.len()` is the domain size `|L_j|`.
        labels: Vec<String>,
    },
    /// A continuous attribute with a domain interval (used by generators and
    /// as a weak prior; answers outside the interval are not rejected).
    Continuous {
        /// Lower end of the domain.
        min: f64,
        /// Upper end of the domain.
        max: f64,
    },
}

impl ColumnType {
    /// Convenience constructor for a categorical domain `L0..L{k-1}`.
    pub fn categorical_with_cardinality(k: u32) -> Self {
        ColumnType::Categorical { labels: (0..k).map(|i| format!("L{i}")).collect() }
    }

    /// Number of labels for categorical columns; `None` for continuous.
    pub fn cardinality(&self) -> Option<u32> {
        match self {
            ColumnType::Categorical { labels } => Some(labels.len() as u32),
            ColumnType::Continuous { .. } => None,
        }
    }

    /// True if the column is categorical.
    #[inline]
    pub fn is_categorical(&self) -> bool {
        matches!(self, ColumnType::Categorical { .. })
    }

    /// True if `value`'s datatype matches this column type.
    pub fn accepts(&self, value: &Value) -> bool {
        match (self, value) {
            (ColumnType::Categorical { labels }, Value::Categorical(l)) => {
                (*l as usize) < labels.len()
            }
            (ColumnType::Continuous { .. }, Value::Continuous(x)) => x.is_finite(),
            _ => false,
        }
    }
}

/// A named column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Attribute name (e.g. "Nationality").
    pub name: String,
    /// Datatype and domain.
    pub ty: ColumnType,
}

impl Column {
    /// Create a column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column { name: name.into(), ty }
    }
}

/// A table schema: key attribute plus `M` value columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// Table name (e.g. "Celebrity").
    pub name: String,
    /// Name of the entity/key attribute (e.g. "Picture").
    pub key: String,
    /// The value columns, in order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Create a schema; at least one column is required.
    pub fn new(name: impl Into<String>, key: impl Into<String>, columns: Vec<Column>) -> Self {
        assert!(!columns.is_empty(), "a schema needs at least one column");
        Schema { name: name.into(), key: key.into(), columns }
    }

    /// Number of value columns `M`.
    #[inline]
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The type of column `j`; panics if out of range.
    #[inline]
    pub fn column_type(&self, j: usize) -> &ColumnType {
        &self.columns[j].ty
    }

    /// Indices of the categorical columns.
    pub fn categorical_columns(&self) -> Vec<usize> {
        (0..self.columns.len()).filter(|&j| self.columns[j].ty.is_categorical()).collect()
    }

    /// Indices of the continuous columns.
    pub fn continuous_columns(&self) -> Vec<usize> {
        (0..self.columns.len()).filter(|&j| !self.columns[j].ty.is_categorical()).collect()
    }

    /// Largest categorical cardinality `l = max_j |L_j|`, or 0 if none.
    pub fn max_cardinality(&self) -> u32 {
        self.columns.iter().filter_map(|c| c.ty.cardinality()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_schema() -> Schema {
        Schema::new(
            "Celebrity",
            "Picture",
            vec![
                Column::new("Name", ColumnType::categorical_with_cardinality(4)),
                Column::new("Age", ColumnType::Continuous { min: 0.0, max: 100.0 }),
                Column::new("Nationality", ColumnType::categorical_with_cardinality(10)),
            ],
        )
    }

    #[test]
    fn column_partitioning() {
        let s = mixed_schema();
        assert_eq!(s.num_columns(), 3);
        assert_eq!(s.categorical_columns(), vec![0, 2]);
        assert_eq!(s.continuous_columns(), vec![1]);
        assert_eq!(s.max_cardinality(), 10);
    }

    #[test]
    fn accepts_checks_type_and_domain() {
        let s = mixed_schema();
        assert!(s.column_type(0).accepts(&Value::Categorical(3)));
        assert!(!s.column_type(0).accepts(&Value::Categorical(4)), "out of domain");
        assert!(!s.column_type(0).accepts(&Value::Continuous(1.0)));
        assert!(s.column_type(1).accepts(&Value::Continuous(55.0)));
        assert!(!s.column_type(1).accepts(&Value::Continuous(f64::NAN)));
        assert!(!s.column_type(1).accepts(&Value::Categorical(0)));
    }

    #[test]
    fn cardinality_labels() {
        let ty = ColumnType::categorical_with_cardinality(3);
        assert_eq!(ty.cardinality(), Some(3));
        if let ColumnType::Categorical { labels } = &ty {
            assert_eq!(labels, &["L0", "L1", "L2"]);
        }
        let cont = ColumnType::Continuous { min: 0.0, max: 1.0 };
        assert_eq!(cont.cardinality(), None);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_schema_rejected() {
        Schema::new("x", "k", vec![]);
    }
}
