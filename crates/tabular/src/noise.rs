//! Noise injection (paper §6.5.2).
//!
//! The robustness experiment perturbs a fraction `γ` of the collected
//! answers: a categorical answer is replaced by a uniformly random label from
//! the column's domain; a continuous answer is z-scored against its column's
//! answers, shifted by `N(0, 1)` noise, and mapped back to the original
//! scale. Answers are chosen *with replacement*, exactly as described.

use crate::answer::AnswerLog;
use crate::dataset::Dataset;
use crate::schema::ColumnType;
use crate::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcrowd_stat::describe::zscore_params;
use tcrowd_stat::sample::sample_std_normal;

/// Return a copy of `dataset` with noise level `gamma` applied to its answers.
///
/// `gamma` is the fraction of answers perturbed (the draw is with
/// replacement, so the number of *distinct* perturbed answers is slightly
/// lower — matching the paper's procedure).
pub fn add_noise(dataset: &Dataset, gamma: f64, seed: u64) -> Dataset {
    assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut noisy = dataset.clone();
    let n_answers = dataset.answers.len();
    if n_answers == 0 || gamma == 0.0 {
        return noisy;
    }

    // Per-column z-score parameters from the *original* answers.
    let m = dataset.cols();
    let col_params: Vec<Option<(f64, f64)>> = (0..m)
        .map(|j| match dataset.schema.column_type(j) {
            ColumnType::Continuous { .. } => {
                let col: Vec<f64> = dataset
                    .answers
                    .all()
                    .iter()
                    .filter(|a| a.cell.col as usize == j)
                    .map(|a| a.value.expect_continuous())
                    .collect();
                Some(zscore_params(&col))
            }
            ColumnType::Categorical { .. } => None,
        })
        .collect();

    // Rebuild the log because answers are stored immutably; we perturb a
    // mutable copy of the flat answer vector first.
    let mut values: Vec<Value> = dataset.answers.all().iter().map(|a| a.value).collect();
    let picks = (n_answers as f64 * gamma).round() as usize;
    for _ in 0..picks {
        let idx = rng.gen_range(0..n_answers);
        let col = dataset.answers.all()[idx].cell.col as usize;
        values[idx] = match dataset.schema.column_type(col) {
            ColumnType::Categorical { labels } => {
                Value::Categorical(rng.gen_range(0..labels.len() as u32))
            }
            ColumnType::Continuous { .. } => {
                let (mean, std) = col_params[col].expect("continuous column params");
                let x = values[idx].expect_continuous();
                let z = (x - mean) / std + sample_std_normal(&mut rng);
                Value::Continuous(z * std + mean)
            }
        };
    }

    let mut log = AnswerLog::new(dataset.rows(), m);
    for (a, v) in dataset.answers.all().iter().zip(values) {
        log.push(crate::answer::Answer { worker: a.worker, cell: a.cell, value: v });
    }
    noisy.answers = log;
    debug_assert_eq!(noisy.validate(), Ok(()));
    noisy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_dataset, GeneratorConfig};

    fn base() -> Dataset {
        generate_dataset(
            &GeneratorConfig {
                rows: 40,
                columns: 4,
                num_workers: 12,
                answers_per_task: 3,
                ..Default::default()
            },
            21,
        )
    }

    #[test]
    fn zero_gamma_is_identity() {
        let d = base();
        let n = add_noise(&d, 0.0, 1);
        assert_eq!(d.answers.all(), n.answers.all());
    }

    #[test]
    fn noise_perturbs_roughly_gamma_fraction() {
        let d = base();
        let gamma = 0.3;
        let n = add_noise(&d, gamma, 7);
        let changed =
            d.answers.all().iter().zip(n.answers.all()).filter(|(a, b)| a.value != b.value).count();
        let frac = changed as f64 / d.answers.len() as f64;
        // With replacement (and categorical redraws that can hit the same
        // label) the distinct-changed fraction is below γ but near it.
        assert!(frac > gamma * 0.5 && frac <= gamma, "frac = {frac}");
    }

    #[test]
    fn noise_preserves_structure() {
        let d = base();
        let n = add_noise(&d, 0.4, 3);
        assert_eq!(n.answers.len(), d.answers.len());
        assert_eq!(n.truth, d.truth);
        assert_eq!(n.validate(), Ok(()));
        for (a, b) in d.answers.all().iter().zip(n.answers.all()) {
            assert_eq!(a.worker, b.worker);
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.value.is_categorical(), b.value.is_categorical());
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let d = base();
        let a = add_noise(&d, 0.2, 5);
        let b = add_noise(&d, 0.2, 5);
        assert_eq!(a.answers.all(), b.answers.all());
        let c = add_noise(&d, 0.2, 6);
        assert_ne!(a.answers.all(), c.answers.all());
    }

    #[test]
    fn higher_gamma_changes_more() {
        let d = base();
        let count = |g| {
            let n = add_noise(&d, g, 11);
            d.answers.all().iter().zip(n.answers.all()).filter(|(a, b)| a.value != b.value).count()
        };
        assert!(count(0.4) > count(0.1));
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_invalid_gamma() {
        add_noise(&base(), 1.5, 0);
    }
}
