//! # tcrowd-tabular
//!
//! Tabular-data substrate for the T-Crowd reproduction (ICDE 2018).
//!
//! Implements the paper's data model (Definitions 1–2): a two-dimensional
//! table `C = {c_ij}` whose columns are categorical or continuous attributes,
//! a set of workers `U`, and the answer set `A = {a^u_ij}`. On top of the
//! model it provides everything the evaluation (§6) needs:
//!
//! * [`schema`] / [`value`] — column types, schemas and cell values.
//! * [`answer`] — the mutable append log (by cell, by worker, by worker-row).
//! * [`matrix`] — the frozen columnar (CSR) answer store every sweep-side
//!   consumer iterates; see its docs for the layout and complexity table.
//!   Freezes are **incrementally refreshable**: [`AnswerMatrix::merge_delta`]
//!   splices a log tail into an existing freeze (per-answer work on the
//!   delta only, field-for-field identical to a rebuild), each freeze
//!   carries an [`epoch`](matrix::AnswerMatrix::epoch) marking the log
//!   length it covers, and [`FrozenView`] is the copyable
//!   staleness-checkable handle consumers hold across log appends.
//! * [`quarantine`] — worker-exclusion filter views: serve inference and
//!   assignment queries minus a quarantined worker set without deleting
//!   anything from the log ([`QuarantineView`],
//!   [`AnswerMatrix::without_workers`](matrix::AnswerMatrix::without_workers)).
//! * [`dataset`] — ground truth + answers + statistics (Table 6).
//! * [`generator`] — the synthetic data generator of §6.5.1.
//! * [`noise`] — the γ-noise injector of §6.5.2.
//! * [`real_sim`] — simulated stand-ins for the paper's three AMT datasets
//!   (Celebrity, Restaurant, Emotion) with matching shapes and the
//!   inter-attribute error correlations the paper observed.
//! * [`metrics`] — Error Rate and MNAD (§6.2) plus the per-worker
//!   per-attribute error matrices used by the case studies (Fig. 3).
//! * [`io`] — tab-separated interchange format for schemas, answers and
//!   tables (what the CLI reads and writes).
//! * [`tsv`] — minimal TSV writers for the reproduction binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod dataset;
pub mod generator;
pub mod io;
pub mod matrix;
pub mod metrics;
pub mod noise;
pub mod quarantine;
pub mod real_sim;
pub mod schema;
pub mod shared;
pub mod tsv;
pub mod value;

pub use answer::{Answer, AnswerLog, AnswerQueries, CellId, WorkerId};
pub use dataset::{Dataset, DatasetStatistics};
pub use generator::{
    generate_dataset, EntityGroups, GeneratorConfig, RowFamiliarity, WorkerQualityConfig,
};
pub use matrix::{AnswerMatrix, FrozenView, MatrixAnswer};
pub use metrics::{evaluate, evaluate_with_answers, ColumnQuality, QualityReport};
pub use quarantine::QuarantineView;
pub use schema::{Column, ColumnType, Schema};
pub use shared::{LogSlice, SharedLog};
pub use value::Value;
