//! Minimal TSV writers for the reproduction binaries.
//!
//! The bench harness emits every table/figure as a TSV series under
//! `results/`; a hand-rolled writer keeps the workspace inside the allowed
//! dependency set (no serde format crate needed).

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

/// A TSV table in memory: header plus rows of stringly-typed cells.
#[derive(Debug, Clone, Default)]
pub struct TsvTable {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl TsvTable {
    /// Create a table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        TsvTable { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row of pre-rendered cells; panics on arity mismatch.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a row of floats rendered with 6 significant digits.
    pub fn push_floats(&mut self, label: &str, values: &[f64]) {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.to_string());
        cells.extend(values.iter().map(|v| format!("{v:.6}")));
        self.push_row(cells);
    }

    /// Write the table to `path`, creating parent directories as needed.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut out = BufWriter::new(File::create(path)?);
        writeln!(out, "{}", self.headers.join("\t"))?;
        for row in &self.rows {
            writeln!(out, "{}", row.join("\t"))?;
        }
        out.flush()
    }

    /// Render to a printable string (used by the binaries to echo results).
    pub fn to_pretty_string(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        s.push_str(&fmt_row(&self.headers, &widths));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&fmt_row(row, &widths));
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_write_and_shape() {
        let mut t = TsvTable::new(&["method", "error", "mnad"]);
        t.push_floats("T-Crowd", &[0.044, 0.634]);
        t.push_row(vec!["MV".into(), "0.057".into(), "-".into()]);
        let dir = std::env::temp_dir().join("tcrowd_tsv_test");
        let path = dir.join("nested/out.tsv");
        t.write(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "method\terror\tmnad");
        assert!(lines[1].starts_with("T-Crowd\t0.044000"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = TsvTable::new(&["a", "b"]);
        t.push_row(vec!["x".into()]);
    }

    #[test]
    fn pretty_string_aligns() {
        let mut t = TsvTable::new(&["m", "v"]);
        t.push_row(vec!["longname".into(), "1".into()]);
        let s = t.to_pretty_string();
        assert!(s.contains("longname"));
        assert_eq!(s.lines().count(), 2);
    }
}
