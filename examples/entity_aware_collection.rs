//! Entity-aware collection with adaptive stopping: the two extensions built
//! on top of the paper (§7 future work + CDAS-style early termination).
//!
//! Scenario: a film-trivia table whose rows fall into genres. Workers know
//! some genres and not others (a worker who does not recognise one noir star
//! probably does not recognise the next one either). We compare the paper's
//! structure-aware policy against the entity-aware policy that learns the
//! genre structure, and then re-run collection with the confidence-based
//! stopping rule to see the budget it saves.
//!
//! ```text
//! cargo run --release --example entity_aware_collection
//! ```

use tcrowd::core::entity::{EntityModel, EntityModelOptions};
use tcrowd::prelude::*;
use tcrowd::sim::InferenceBackend;
use tcrowd::stat::cluster::adjusted_rand_index;
use tcrowd::tabular::generator::EntityGroups;

const ROWS: usize = 48;
const GENRES: usize = 4;

fn world(seed: u64) -> (Dataset, WorkerPool) {
    // Four genres; each (worker, genre) pair is unfamiliar with prob. 0.3,
    // and unfamiliarity inflates the answer variance 30×.
    let genres = EntityGroups { groups: GENRES, p_unfamiliar: 0.3, difficulty_factor: 30.0 };
    let config = GeneratorConfig {
        rows: ROWS,
        columns: 6,
        categorical_ratio: 0.5,
        num_workers: 24,
        answers_per_task: 1, // the runner's seed phase provides the first pass
        entity_groups: Some(genres),
        ..Default::default()
    };
    let dataset = generate_dataset(&config, seed);
    let pool = WorkerPool::new(
        &dataset.schema,
        &dataset.truth,
        WorkerPoolConfig { num_workers: 24, entity_groups: Some(genres), ..Default::default() },
        seed * 7 + 1,
    );
    (dataset, pool)
}

fn run(
    policy: &mut dyn AssignmentPolicy,
    stopping: Option<StoppingRule>,
    seed: u64,
) -> tcrowd::sim::RunResult {
    let (_, mut pool) = world(seed);
    let runner = Runner::new(ExperimentConfig {
        budget_avg_answers: 5.0,
        checkpoint_step: 1.0,
        stopping,
        ..Default::default()
    });
    let backend = InferenceBackend::TCrowd(TCrowd::default_full());
    runner.run("run", &mut pool, policy, &backend)
}

fn main() {
    let seed = 11;

    // ---- 1. Does the learned grouping recover the genres?
    let (dataset, _) = world(seed);
    // Learning the partition needs a denser (row × worker) matrix than the
    // online run produces early on: a smaller crowd answering more often.
    let dense = generate_dataset(
        &GeneratorConfig {
            rows: ROWS,
            columns: 6,
            categorical_ratio: 0.5,
            num_workers: 12,
            answers_per_task: 6,
            entity_groups: Some(EntityGroups {
                groups: GENRES,
                p_unfamiliar: 0.3,
                difficulty_factor: 30.0,
            }),
            ..Default::default()
        },
        seed,
    );
    let inference = TCrowd::default_full().infer(&dense.schema, &dense.answers);
    let model = EntityModel::fit(
        &dense.schema,
        &dense.answers,
        &inference,
        &RowGrouping::Learned { groups: GENRES, seed },
        &EntityModelOptions::default(),
    );
    let truth_groups: Vec<usize> = (0..ROWS).map(|i| i % GENRES).collect();
    println!(
        "learned genre partition vs planted genres: ARI = {:.3} ({} familiarity multipliers fitted)",
        adjusted_rand_index(model.groups(), &truth_groups),
        model.fitted_pairs(),
    );

    // ---- 2. Structure-aware vs entity-aware at equal budget.
    let mut structure = StructureAwarePolicy::default();
    let sa = run(&mut structure, None, seed);
    let mut entity = EntityAwarePolicy::new(RowGrouping::Known(truth_groups.clone()));
    let ea = run(&mut entity, None, seed);
    println!("\nat a budget of 5 answers/task on {ROWS}×6 ({GENRES} genres):");
    println!(
        "  structure-aware  error rate {:.4}  MNAD {:.4}",
        sa.final_report.error_rate.unwrap(),
        sa.final_report.mnad.unwrap()
    );
    println!(
        "  entity-aware     error rate {:.4}  MNAD {:.4}",
        ea.final_report.error_rate.unwrap(),
        ea.final_report.mnad.unwrap()
    );

    // ---- 3. Adaptive stopping: how much budget does confidence save?
    let mut entity2 = EntityAwarePolicy::new(RowGrouping::Known(truth_groups));
    let adaptive = run(&mut entity2, Some(StoppingRule::default()), seed);
    let cells = (ROWS * 6) as f64;
    println!(
        "\nadaptive stopping: {:.2} answers/task instead of {:.2} ({} of {} cells settled early)",
        adaptive.total_answers as f64 / cells,
        sa.total_answers as f64 / cells,
        adaptive.terminated_cells,
        ROWS * 6,
    );
    println!(
        "  quality after early stop: error rate {:.4}, MNAD {:.4}",
        adaptive.final_report.error_rate.unwrap(),
        adaptive.final_report.mnad.unwrap()
    );
    let _ = dataset;
}
