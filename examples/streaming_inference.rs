//! Streaming truth inference: keep estimates fresh while answers arrive one
//! at a time, re-fitting the full EM model only periodically (the §5.1
//! incremental acceleration wrapped as `OnlineTCrowd`).
//!
//! ```text
//! cargo run --release --example streaming_inference
//! ```

use tcrowd::prelude::*;
use tcrowd::tabular::evaluate_with_answers;

fn main() {
    // A ground-truth table and a shuffled stream of crowd answers.
    let data = generate_dataset(
        &GeneratorConfig {
            rows: 40,
            columns: 5,
            answers_per_task: 5,
            num_workers: 25,
            ..Default::default()
        },
        31,
    );

    let mut online = OnlineTCrowd::empty(TCrowd::default_full(), data.schema.clone(), data.rows());
    online.refit_every = 100;

    println!("answers    staleness    error rate    MNAD");
    for (i, &answer) in data.answers.all().iter().enumerate() {
        let refit = online.add_answer(answer);
        if refit || (i + 1) % 250 == 0 {
            let report = evaluate_with_answers(
                &data.schema,
                &data.truth,
                &online.estimates(),
                online.answers(),
            );
            println!(
                "{:>7}    {:>9}    {:>10.4}    {:.4}{}",
                i + 1,
                online.staleness(),
                report.error_rate.unwrap(),
                report.mnad.unwrap(),
                if refit { "   <- full EM re-fit" } else { "" }
            );
        }
    }

    // Wrap up with one final exact fit.
    online.refit();
    let final_report =
        evaluate_with_answers(&data.schema, &data.truth, &online.estimates(), online.answers());
    println!(
        "\nfinal: error rate {:.4}, MNAD {:.4} after {} answers",
        final_report.error_rate.unwrap(),
        final_report.mnad.unwrap(),
        online.answers().len()
    );
    println!("The estimates stay usable between re-fits at O(1) cost per answer.");
}
