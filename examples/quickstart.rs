//! Quickstart: generate a small mixed-type table, collect simulated answers,
//! run T-Crowd truth inference, and inspect what the model learned.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tcrowd::prelude::*;

fn main() {
    // A 30-entity table with 6 attributes (half categorical, half
    // continuous), answered 4 times per task by a 20-worker crowd whose
    // quality is long-tailed — the paper's §6.5 setup in miniature.
    let config = GeneratorConfig {
        rows: 30,
        columns: 6,
        categorical_ratio: 0.5,
        answers_per_task: 4,
        num_workers: 20,
        ..Default::default()
    };
    let dataset = generate_dataset(&config, 42);
    println!("dataset: {:#?}", dataset.statistics());

    // Run unified truth inference (paper §4).
    let model = TCrowd::default_full();
    let result = model.infer(&dataset.schema, &dataset.answers);
    println!(
        "\nEM converged = {} after {} iterations (ε = {:.3})",
        result.converged, result.iterations, result.epsilon
    );

    // How close are the estimates to the ground truth?
    let report = evaluate(&dataset.schema, &dataset.truth, &result.estimates());
    println!("error rate = {:.4}, MNAD = {:.4}", report.error_rate.unwrap(), report.mnad.unwrap());

    // Worker quality: the unified q_u = erf(ε/√(2φ_u)) per worker, compared
    // to the simulator's ground truth φ.
    println!("\nworker   fitted φ   unified q   true φ");
    let mut workers: Vec<_> = result.workers.clone();
    workers.sort();
    for w in workers.into_iter().take(8) {
        println!(
            "{:>6}   {:>8.3}   {:>9.3}   {:>6.3}",
            w.to_string(),
            result.phi_of(w).unwrap(),
            result.quality_of(w).unwrap(),
            dataset.worker_truth[&w].phi,
        );
    }

    // Row/column difficulties (α_i, β_j) — geometric mean 1 by construction.
    let hardest_row = (0..result.alpha.len())
        .max_by(|&a, &b| result.alpha[a].partial_cmp(&result.alpha[b]).unwrap())
        .unwrap();
    let hardest_col = (0..result.beta.len())
        .max_by(|&a, &b| result.beta[a].partial_cmp(&result.beta[b]).unwrap())
        .unwrap();
    println!(
        "\nhardest row: #{hardest_row} (α = {:.2});  hardest column: {} (β = {:.2})",
        result.alpha[hardest_row],
        dataset.schema.columns[hardest_col].name,
        result.beta[hardest_col]
    );

    // Peek at one cell's full posterior rather than just the point estimate.
    let cell = CellId::new(0, 0);
    println!(
        "\ncell (0,0): truth = {}, estimate = {}, posterior = {:?}",
        dataset.truth_of(cell),
        result.estimate(cell),
        result.truth(cell)
    );
}
