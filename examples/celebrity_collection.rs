//! End-to-end crowdsourcing of a celebrity-information table (the paper's
//! running example): budget-constrained task assignment with the
//! structure-aware information gain, compared against random assignment at
//! the same budget.
//!
//! ```text
//! cargo run --release --example celebrity_collection
//! ```

use tcrowd::baselines::RandomPolicy;
use tcrowd::core::{StructureAwarePolicy, TCrowd};
use tcrowd::sim::{ExperimentConfig, InferenceBackend, Runner, WorkerPool, WorkerPoolConfig};
use tcrowd::tabular::real_sim;

fn main() {
    // Ground truth table with the Celebrity shape (174 pictures × 7
    // attributes); the recorded answers are ignored — we collect our own
    // through the simulated crowd.
    let dataset = real_sim::celebrity(7);
    println!(
        "collecting {} cells over {} columns with a budget of 3.5 answers/task\n",
        dataset.rows() * dataset.cols(),
        dataset.cols()
    );

    let runner = Runner::new(ExperimentConfig {
        budget_avg_answers: 3.5,
        checkpoint_step: 0.5,
        ..Default::default()
    });

    let mut results = Vec::new();
    for label in ["T-Crowd (structure-aware)", "random assignment"] {
        let mut pool = WorkerPool::new(
            &dataset.schema,
            &dataset.truth,
            WorkerPoolConfig { num_workers: 109, ..Default::default() },
            11,
        );
        let backend = InferenceBackend::TCrowd(TCrowd::default_full());
        let result = match label {
            "T-Crowd (structure-aware)" => {
                let mut policy = StructureAwarePolicy::default();
                runner.run(label, &mut pool, &mut policy, &backend)
            }
            _ => {
                let mut policy = RandomPolicy::seeded(3);
                runner.run(label, &mut pool, &mut policy, &backend)
            }
        };
        results.push(result);
    }

    println!("answers/task    T-Crowd err   T-Crowd MNAD    random err   random MNAD");
    let (tc, rnd) = (&results[0], &results[1]);
    for (a, b) in tc.points.iter().zip(&rnd.points) {
        println!(
            "{:>12.2}    {:>11.4}   {:>12.4}    {:>10.4}   {:>11.4}",
            a.avg_answers,
            a.error_rate.unwrap_or(f64::NAN),
            a.mnad.unwrap_or(f64::NAN),
            b.error_rate.unwrap_or(f64::NAN),
            b.mnad.unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nfinal: T-Crowd err={:.4} MNAD={:.4} | random err={:.4} MNAD={:.4}",
        tc.final_report.error_rate.unwrap(),
        tc.final_report.mnad.unwrap(),
        rnd.final_report.error_rate.unwrap(),
        rnd.final_report.mnad.unwrap(),
    );
    println!("Informed assignment should reach the same quality with fewer answers —");
    println!("the paper reports roughly half the budget on its datasets.");
}
