//! The structure-aware machinery on its own: learn the inter-attribute error
//! correlations of the Restaurant dataset (paper §6.4.3) and use them to
//! predict a worker's error on one attribute from their error on another.
//!
//! ```text
//! cargo run --release --example restaurant_structure_aware
//! ```

use tcrowd::core::{CorrelationModel, ErrorObservation, PredictedError, TCrowd};
use tcrowd::tabular::real_sim;

fn main() {
    let dataset = real_sim::restaurant(5);
    let inference = TCrowd::default_full().infer(&dataset.schema, &dataset.answers);
    let model = CorrelationModel::fit(&dataset.schema, &dataset.answers, &inference);

    // The pairwise correlation coefficients W_jk (paper Eq. 8).
    println!("W_jk (error correlation between attributes):\n");
    print!("{:>12}", "");
    for c in &dataset.schema.columns {
        print!("{:>13}", c.name);
    }
    println!();
    for (j, cj) in dataset.schema.columns.iter().enumerate() {
        print!("{:>12}", cj.name);
        for k in 0..dataset.schema.num_columns() {
            if j == k {
                print!("{:>13}", "-");
            } else {
                print!("{:>13.3}", model.wjk(j, k));
            }
        }
        println!();
    }

    // Predict the EndTarget error distribution from an observed StartTarget
    // error (the paper's Fig. 6 narrative).
    println!("\npredicting EndTarget (col 4) error from StartTarget (col 3) error:");
    for e_start in [0.0, 1.0, 2.0] {
        match model.conditional_error(4, &[(3, ErrorObservation::Continuous(e_start))]) {
            Some(p @ PredictedError::ContinuousMixture(_)) => {
                let (mean, var) = p.mixture_moments().unwrap();
                println!("  e_start = {e_start:>4.1}  ->  e_end ~ N({mean:>6.3}, {var:.3})");
            }
            other => println!("  e_start = {e_start:>4.1}  ->  {other:?}"),
        }
    }

    // Predict the Sentiment error probability from an Aspect mistake.
    println!("\npredicting Sentiment (col 2) from Aspect (col 0):");
    for (desc, wrong) in [("Aspect answered correctly", false), ("Aspect answered wrongly", true)] {
        match model.conditional_error(2, &[(0, ErrorObservation::Categorical(wrong))]) {
            Some(PredictedError::Categorical(p)) => {
                println!("  {desc}: P(Sentiment wrong) = {p:.3}");
            }
            other => println!("  {desc}: {other:?}"),
        }
    }
    println!("\nThe paper's observation: a mistake on one attribute of a row predicts");
    println!("mistakes on its other attributes — which is why the structure-aware");
    println!("information gain avoids wasting that worker on the same row.");
}
