//! Unknown-entity collection (paper §7, second future-work direction): the
//! rows of the table are not known up front — the crowd first *enumerates*
//! the entities, then fills in their attributes.
//!
//! Pipeline demonstrated:
//! 1. Workers propose entities; support counting suppresses spurious
//!    proposals and a Good–Turing estimate of the unseen mass decides when
//!    to stop paying for enumeration (`tcrowd_sim::discovery`).
//! 2. The accepted entity set becomes the row set of an ordinary T-Crowd
//!    table; attributes are then crowdsourced and inferred as usual.
//!
//! ```text
//! cargo run --release --example unknown_entities
//! ```

use tcrowd::prelude::*;
use tcrowd::sim::discovery::{run_discovery, EntityUniverse, ProposalOracle};
use tcrowd::sim::InferenceBackend;

fn main() {
    // ---- Phase 1: entity enumeration.
    let universe = EntityUniverse {
        num_entities: 60,
        popularity_skew: 0.8,
        p_spurious: 0.15, // 15 % of proposals are junk
        spurious_space: 10_000,
    };
    let mut oracle = ProposalOracle::new(universe, 7);
    // The Good–Turing unseen mass floors at the spurious rate (junk is always
    // a first sighting), so the stopping threshold sits just above 15 %.
    let state = run_discovery(&mut oracle, 25, 0.17, 100_000);
    let rows = state.accepted(2); // require two independent proposers
    let (precision, recall) = state.score(2, 60);
    println!(
        "enumeration: {} proposals → {} accepted entities (precision {:.3}, recall {:.3})",
        state.proposals(),
        rows.len(),
        precision,
        recall,
    );
    println!(
        "Good–Turing unseen mass at stop: {:.4} (threshold 0.17)",
        state.estimated_unseen_mass()
    );

    // ---- Phase 2: attribute collection over the discovered rows.
    let config = GeneratorConfig {
        rows: rows.len(),
        columns: 5,
        categorical_ratio: 0.4,
        num_workers: 25,
        answers_per_task: 1,
        ..Default::default()
    };
    let dataset = generate_dataset(&config, 11);
    let mut pool = WorkerPool::new(
        &dataset.schema,
        &dataset.truth,
        WorkerPoolConfig { num_workers: 25, ..Default::default() },
        13,
    );
    let runner = Runner::new(ExperimentConfig {
        budget_avg_answers: 4.0,
        checkpoint_step: 1.0,
        stopping: Some(StoppingRule::default()),
        ..Default::default()
    });
    let mut policy = StructureAwarePolicy::default();
    let backend = InferenceBackend::TCrowd(TCrowd::default_full());
    let result = runner.run("fill", &mut pool, &mut policy, &backend);
    println!(
        "\nattribute collection over {} discovered rows: {} answers, error rate {:.4}, MNAD {:.4}",
        rows.len(),
        result.total_answers,
        result.final_report.error_rate.unwrap(),
        result.final_report.mnad.unwrap(),
    );
    println!(
        "({} of {} cells settled early by the stopping rule)",
        result.terminated_cells,
        rows.len() * 5,
    );
}
