//! Budget planning: how many answers per task does each assignment strategy
//! need to reach a target quality? Sweeps the budget and reports the first
//! checkpoint at which each strategy crosses the target — the cost-saving
//! argument of the paper's abstract ("about half of the answers").
//!
//! ```text
//! cargo run --release --example budget_planner
//! ```

use tcrowd::baselines::{EntropyPolicy, RandomPolicy};
use tcrowd::core::{AssignmentPolicy, StructureAwarePolicy, TCrowd};
use tcrowd::sim::{ExperimentConfig, InferenceBackend, Runner, WorkerPool, WorkerPoolConfig};
use tcrowd::tabular::{generate_dataset, GeneratorConfig, RowFamiliarity};

fn main() {
    let target_error = 0.10;
    println!("target: categorical error rate <= {target_error}\n");

    let data = generate_dataset(
        &GeneratorConfig {
            rows: 60,
            columns: 6,
            num_workers: 40,
            answers_per_task: 1,
            row_familiarity: Some(RowFamiliarity::default()),
            ..Default::default()
        },
        19,
    );
    let runner = Runner::new(ExperimentConfig {
        budget_avg_answers: 6.0,
        checkpoint_step: 0.25,
        ..Default::default()
    });

    println!("{:<28} {:>22}", "strategy", "answers/task to target");
    for label in ["structure-aware gain", "entropy (AskIt!)", "random"] {
        let mut pool = WorkerPool::new(
            &data.schema,
            &data.truth,
            WorkerPoolConfig { num_workers: 40, ..Default::default() },
            23,
        );
        let backend = InferenceBackend::TCrowd(TCrowd::default_full());
        let mut sa = StructureAwarePolicy::default();
        let mut entropy = EntropyPolicy;
        let mut random = RandomPolicy::seeded(5);
        let policy: &mut dyn AssignmentPolicy = match label {
            "structure-aware gain" => &mut sa,
            "entropy (AskIt!)" => &mut entropy,
            _ => &mut random,
        };
        let result = runner.run(label, &mut pool, policy, &backend);
        let reached = result
            .points
            .iter()
            .find(|p| p.error_rate.map(|e| e <= target_error).unwrap_or(false))
            .map(|p| format!("{:.2}", p.avg_answers))
            .unwrap_or_else(|| "not reached at 6.0".to_string());
        println!("{label:<28} {reached:>22}");
    }
    println!("\nLower is cheaper: every saved answer is a saved HIT payment.");
}
