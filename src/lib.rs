//! # T-Crowd
//!
//! A Rust implementation of **T-Crowd: Effective Crowdsourcing for Tabular
//! Data** (Shan, Mamoulis, Li, Cheng, Huang, Zheng — ICDE 2018).
//!
//! T-Crowd crowdsources a *table* whose columns mix categorical and
//! continuous attributes. It contributes:
//!
//! 1. **Unified truth inference** — one EM model that learns a single quality
//!    per worker across both datatypes plus per-row/per-column difficulties.
//! 2. **Information-gain task assignment** — a datatype-comparable
//!    entropy-delta utility, extended with learned inter-attribute error
//!    correlations ("structure-aware" gain).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`stat`] — statistics substrate (erf, Gaussians, entropy, optimizers,
//!   k-means clustering, bootstrap significance tests).
//! * [`tabular`] — schemas, answers, datasets, generators, metrics.
//! * [`core`] — the T-Crowd EM inference and assignment policies, plus the
//!   §7 entity-correlation extension (`core::entity`).
//! * [`baselines`] — comparator inference methods and assignment policies
//!   (including Minimax-Entropy, Accu/AccuSim and a QASCA-style policy).
//! * [`sim`] — the crowdsourcing-platform simulator and experiment runner,
//!   with confidence-based adaptive stopping (`sim::stopping`) and crowd
//!   entity enumeration (`sim::discovery`).
//! * [`store`] — the durability layer: per-table CRC-framed write-ahead
//!   logs, snapshot files carrying warm-startable fit parameters, and
//!   crash recovery that tolerates torn tails (`tcrowd serve --data-dir`,
//!   `tcrowd store {inspect,verify,compact}`).
//! * [`service`] — the multi-table HTTP service layer: a std-only JSON API
//!   plus a background refresher per table driving the incremental
//!   delta-merge + warm-refit pipeline (`tcrowd serve`), with WAL-before-ack
//!   ingest and snapshot-after-publish on durable tables.
//!
//! ## Quickstart
//!
//! ```
//! use tcrowd::prelude::*;
//!
//! // Generate a small mixed-type synthetic dataset (§6.5 of the paper).
//! let config = GeneratorConfig { rows: 20, columns: 4, ..Default::default() };
//! let dataset = generate_dataset(&config, 7);
//!
//! // Run T-Crowd truth inference on its answer set.
//! let model = TCrowd::new(TCrowdOptions::default());
//! let result = model.infer(&dataset.schema, &dataset.answers);
//!
//! // Compare the estimates to the ground truth.
//! let quality = evaluate(&dataset.schema, &dataset.truth, &result.estimates());
//! assert!(quality.error_rate.unwrap() <= 0.5);
//! ```

pub use tcrowd_baselines as baselines;
pub use tcrowd_core as core;
pub use tcrowd_service as service;
pub use tcrowd_sim as sim;
pub use tcrowd_stat as stat;
pub use tcrowd_store as store;
pub use tcrowd_tabular as tabular;

/// Convenience re-exports covering the common workflow: generate or load a
/// dataset, infer truths, assign tasks, evaluate.
pub mod prelude {
    pub use tcrowd_core::{
        AssignmentPolicy, CorrelationModel, EmOptions, EntityAwarePolicy, EntityModel,
        GainEstimator, InferenceResult, InherentGainPolicy, OnlineTCrowd, RowGrouping,
        StructureAwarePolicy, TCrowd, TCrowdOptions,
    };
    pub use tcrowd_sim::{
        ExperimentConfig, Runner, StoppingRule, TerminationState, WorkerPool, WorkerPoolConfig,
    };
    pub use tcrowd_tabular::{
        evaluate, generate_dataset, AnswerLog, CellId, ColumnType, Dataset, GeneratorConfig,
        Schema, Value, WorkerId,
    };
}
